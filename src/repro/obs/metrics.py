"""Monotonic counters and fixed-bucket histograms.

The registry is deliberately Prometheus-shaped (cumulative bucket
counts, ``+Inf`` implicit last bucket, monotonic counters) so a real
deployment could scrape it, but carries no third-party dependency and
no locks — the engine is single-threaded per run.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets: log-ish spacing covering sub-millisecond
#: timings up to minutes, and small-to-large cardinalities alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0, 5000.0, 10000.0, 100000.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative-style observation counts.

    ``buckets`` are upper bounds (inclusive); an implicit overflow bucket
    catches everything above the last bound.  ``counts[i]`` is the number
    of observations ``<= buckets[i]`` minus those in earlier buckets
    (i.e. per-bucket, not cumulative — the exporter cumulates).
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        # Linear scan beats bisect for the short default bucket list and
        # small values (the common case: sub-millisecond timings).
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the q-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        threshold = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= threshold:
                return self.buckets[i] if i < len(self.buckets) else self.max
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Name-addressed counters and histograms, created on first use."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, buckets or DEFAULT_BUCKETS)
            self._histograms[name] = histogram
        return histogram

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data view of every metric (JSON-serializable)."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for name, h in self.histograms().items()
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()
