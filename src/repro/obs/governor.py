"""Resource governance for chase runs.

The engine's own ``max_iterations`` / ``max_nulls`` are *correctness*
guards: tripping one means the program is likely outside the
terminating fragment, so the run aborts with a
:class:`~repro.errors.ResourceLimitError`.  A :class:`ResourceGovernor`
is an *operational* budget: callers in production want "give me what
you can derive in 2 seconds / within 100k facts" — and want to know
that the answer was truncated.  In graceful mode (the default) the
engine stops cleanly at the first violated budget and returns the
partial database with ``status == "budget_exceeded"`` plus the
:class:`BudgetExceeded` record; in strict mode the violation raises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Engine run statuses (mirrored on EvaluationResult.status).
STATUS_FIXPOINT = "fixpoint"
STATUS_BUDGET_EXCEEDED = "budget_exceeded"


@dataclass(frozen=True)
class BudgetExceeded:
    """One violated budget: which resource, the cap, and the usage seen."""

    resource: str  # "time" | "facts" | "nulls" | "iterations"
    limit: float
    used: float
    scope: str = ""  # e.g. "stratum 2" for iteration caps

    def __str__(self) -> str:
        where = f" in {self.scope}" if self.scope else ""
        return (
            f"{self.resource} budget exceeded{where}: "
            f"used {self.used:g} of {self.limit:g}"
        )


class ResourceGovernor:
    """Budgets for one engine run; all limits optional.

    Parameters
    ----------
    budget_seconds:
        Wall-clock budget measured from :meth:`begin`.
    max_facts:
        Cap on facts derived (not counting the input facts).
    max_nulls:
        Cap on labeled nulls invented by the chase.
    max_stratum_iterations:
        Cap on fixpoint iterations within any single stratum.
    max_resident_facts:
        Soft cap on facts held in memory.  Unlike the hard budgets above
        this never truncates the run: when a columnar database exceeds
        it at a stratum boundary, the engine spills cold relations to
        the sqlite3-backed column-page store and keeps going (a no-op on
        tuple-backend databases).
    graceful:
        True (default): the engine returns partial results tagged with
        the violation.  False: the violation raises a
        :class:`~repro.errors.ResourceLimitError`.
    clock:
        Injectable time source (tests use a fake clock).
    """

    def __init__(
        self,
        budget_seconds: Optional[float] = None,
        max_facts: Optional[int] = None,
        max_nulls: Optional[int] = None,
        max_stratum_iterations: Optional[int] = None,
        max_resident_facts: Optional[int] = None,
        graceful: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        for name, value in (
            ("max_facts", max_facts),
            ("max_nulls", max_nulls),
            ("max_stratum_iterations", max_stratum_iterations),
            ("max_resident_facts", max_resident_facts),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.budget_seconds = budget_seconds
        self.max_facts = max_facts
        self.max_nulls = max_nulls
        self.max_stratum_iterations = max_stratum_iterations
        self.max_resident_facts = max_resident_facts
        self.graceful = graceful
        self._clock = clock
        self._start: Optional[float] = None

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start (or restart) the wall clock; called by ``Engine.run``."""
        self._start = self._clock()

    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return self._clock() - self._start

    # ------------------------------------------------------------------
    def check_time(self) -> Optional[BudgetExceeded]:
        if self.budget_seconds is None or self._start is None:
            return None
        elapsed = self._clock() - self._start
        if elapsed > self.budget_seconds:
            return BudgetExceeded("time", self.budget_seconds, elapsed)
        return None

    def check_facts(self, derived: int) -> Optional[BudgetExceeded]:
        if self.max_facts is not None and derived > self.max_facts:
            return BudgetExceeded("facts", self.max_facts, derived)
        return None

    def check_nulls(self, created: int) -> Optional[BudgetExceeded]:
        if self.max_nulls is not None and created > self.max_nulls:
            return BudgetExceeded("nulls", self.max_nulls, created)
        return None

    def check_iterations(
        self, iterations: int, scope: str = ""
    ) -> Optional[BudgetExceeded]:
        if (
            self.max_stratum_iterations is not None
            and iterations > self.max_stratum_iterations
        ):
            return BudgetExceeded(
                "iterations", self.max_stratum_iterations, iterations, scope
            )
        return None

    def check(self, stats) -> Optional[BudgetExceeded]:
        """First violated budget given the run's EvaluationStats, if any."""
        return (
            self.check_time()
            or self.check_facts(stats.facts_derived)
            or self.check_nulls(stats.nulls_created)
        )

    def __repr__(self) -> str:
        parts = []
        if self.budget_seconds is not None:
            parts.append(f"seconds={self.budget_seconds}")
        if self.max_facts is not None:
            parts.append(f"facts={self.max_facts}")
        if self.max_nulls is not None:
            parts.append(f"nulls={self.max_nulls}")
        if self.max_stratum_iterations is not None:
            parts.append(f"stratum_iterations={self.max_stratum_iterations}")
        mode = "graceful" if self.graceful else "strict"
        return f"ResourceGovernor({', '.join(parts) or 'unlimited'}, {mode})"
