"""Span/counter/event tracing primitives.

A :class:`Span` is a named, timed region of work.  Spans nest: the
recording tracer keeps a stack, so a span opened while another is active
becomes its child (``parent_id``).  Attributes may be attached at open
time or later via :meth:`Span.set` — the engine uses this to stamp a
rule span with its firing count once the rule has run.

Two implementations share the interface:

- :class:`NullTracer` still *times* spans (callers like the SSST
  materializer read ``span.duration`` to fill their reports) but records
  nothing and drops counters/events;
- :class:`RecordingTracer` keeps finished spans and events in memory and
  funnels counters/histograms into a :class:`~repro.obs.metrics.MetricsRegistry`,
  ready for :func:`repro.obs.export.write_trace`.

Hot paths (the engine's inner loops) guard on ``tracer is None`` rather
than calling into a null object, so tracing disabled costs nothing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.obs.metrics import MetricsRegistry

Clock = Callable[[], float]


class Span:
    """One timed region; usable as a context manager."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "_tracer")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["_SpanSink"] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.2f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, {state})"


class _SpanSink(Protocol):
    def _finish(self, span: Span) -> None: ...


@runtime_checkable
class Tracer(Protocol):
    """The tracing interface the execution stack is written against."""

    enabled: bool

    def span(self, name: str, **attrs: Any) -> Span: ...

    def event(self, name: str, **attrs: Any) -> None: ...

    def count(self, name: str, value: int = 1) -> None: ...

    def observe(self, name: str, value: float) -> None: ...


class NullTracer:
    """Times spans (so phase reports stay populated) but records nothing."""

    enabled = False

    def __init__(self, clock: Clock = time.perf_counter):
        self._clock = clock

    def span(self, name: str, **attrs: Any) -> Span:
        span = Span(name, 0, None, self._clock(), attrs or None, tracer=self)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._clock()

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def count(self, name: str, value: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


class RecordingTracer:
    """In-memory tracer: nested spans, events, and a metrics registry."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock: Clock = time.perf_counter,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []          # finished spans, finish order
        self.events: List[Dict[str, Any]] = []
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name, self._next_id, parent, self._clock(), attrs or None, tracer=self
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate out-of-order exits (e.g. a generator finalized late):
        # pop up to and including the span if present, else just record.
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
        self.spans.append(span)

    def event(self, name: str, **attrs: Any) -> None:
        record: Dict[str, Any] = {"name": name, "time": self._clock()}
        if self._stack:
            record["span_id"] = self._stack[-1].span_id
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def count(self, name: str, value: int = 1) -> None:
        self.metrics.counter(name).inc(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # ------------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        """Spans entered but not yet exited (innermost last)."""
        return list(self._stack)

    def find_spans(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self.metrics.clear()
