"""JSONL trace export and schema validation.

One trace file = one run.  Line 1 is a ``meta`` record; every following
line is one record of type ``span``, ``event``, ``counter``, or
``histogram``.  The schema (version 1):

.. code-block:: none

    meta      {type, version, producer}
    span      {type, id, parent, name, start, end, duration, attrs?}
    event     {type, name, time, span_id?, attrs?}
    counter   {type, name, value}
    histogram {type, name, buckets, counts, count, sum, min?, max?}

``start``/``end``/``time`` are seconds on the producing clock (a
monotonic origin, not wall-clock epoch); durations are end - start.
Spans are exported in start order so a consumer can rebuild the tree by
``parent`` without sorting.  :func:`validate_trace_record` and
:func:`validate_trace_file` enforce exactly this schema — the CI bench
smoke job runs the latter over a freshly produced profile.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterator, List, Union

from repro.obs.tracer import RecordingTracer

TRACE_SCHEMA_VERSION = 1

_RECORD_TYPES = {"meta", "span", "event", "counter", "histogram"}

_REQUIRED_FIELDS = {
    "meta": ("version", "producer"),
    "span": ("id", "name", "start", "end", "duration"),
    "event": ("name", "time"),
    "counter": ("name", "value"),
    "histogram": ("name", "buckets", "counts", "count", "sum"),
}


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-friendly types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return str(value)


def trace_records(tracer: RecordingTracer) -> Iterator[Dict[str, Any]]:
    """All records of one trace, meta first, spans in start order."""
    yield {
        "type": "meta",
        "version": TRACE_SCHEMA_VERSION,
        "producer": "repro.obs",
    }
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        record: Dict[str, Any] = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end if span.end is not None else span.start,
            "duration": span.duration,
        }
        if span.attrs:
            record["attrs"] = _jsonable(span.attrs)
        yield record
    for event in tracer.events:
        record = {"type": "event", "name": event["name"], "time": event["time"]}
        if "span_id" in event:
            record["span_id"] = event["span_id"]
        if "attrs" in event:
            record["attrs"] = _jsonable(event["attrs"])
        yield record
    for name, value in tracer.metrics.counters().items():
        yield {"type": "counter", "name": name, "value": value}
    for name, histogram in tracer.metrics.histograms().items():
        record = {
            "type": "histogram",
            "name": name,
            "buckets": list(histogram.buckets),
            "counts": list(histogram.counts),
            "count": histogram.count,
            "sum": histogram.total,
        }
        if histogram.count:
            record["min"] = histogram.min
            record["max"] = histogram.max
        yield record


def write_trace(
    tracer: RecordingTracer, destination: Union[str, io.TextIOBase]
) -> int:
    """Write the trace as JSONL to a path or text stream; returns #records."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_trace(tracer, handle)
    written = 0
    for record in trace_records(tracer):
        destination.write(json.dumps(record, separators=(",", ":")) + "\n")
        written += 1
    return written


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_trace_record(record: Any) -> List[str]:
    """Problems with one decoded record; empty list = valid."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    kind = record.get("type")
    if kind not in _RECORD_TYPES:
        return [f"unknown record type: {kind!r}"]
    for field in _REQUIRED_FIELDS[kind]:
        if field not in record:
            problems.append(f"{kind} record missing field {field!r}")
    if problems:
        return problems
    if kind == "meta":
        if record["version"] != TRACE_SCHEMA_VERSION:
            problems.append(f"unsupported schema version {record['version']!r}")
    elif kind == "span":
        if not isinstance(record["name"], str) or not record["name"]:
            problems.append("span name must be a non-empty string")
        if not isinstance(record["id"], int):
            problems.append("span id must be an integer")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, int):
            problems.append("span parent must be an integer or null")
        for field in ("start", "end", "duration"):
            if not isinstance(record[field], (int, float)):
                problems.append(f"span {field} must be a number")
        if isinstance(record["duration"], (int, float)) and record["duration"] < 0:
            problems.append("span duration must be non-negative")
    elif kind == "event":
        if not isinstance(record["name"], str) or not record["name"]:
            problems.append("event name must be a non-empty string")
        if not isinstance(record["time"], (int, float)):
            problems.append("event time must be a number")
    elif kind == "counter":
        if not isinstance(record["name"], str) or not record["name"]:
            problems.append("counter name must be a non-empty string")
        if not isinstance(record["value"], int) or record["value"] < 0:
            problems.append("counter value must be a non-negative integer")
    elif kind == "histogram":
        buckets = record["buckets"]
        counts = record["counts"]
        if not isinstance(buckets, list) or not all(
            isinstance(b, (int, float)) for b in buckets
        ):
            problems.append("histogram buckets must be a list of numbers")
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and c >= 0 for c in counts
        ):
            problems.append("histogram counts must be non-negative integers")
        if (
            isinstance(buckets, list)
            and isinstance(counts, list)
            and len(counts) != len(buckets) + 1
        ):
            problems.append("histogram needs len(buckets)+1 counts")
        if isinstance(counts, list) and all(isinstance(c, int) for c in counts):
            if isinstance(record["count"], int) and sum(counts) != record["count"]:
                problems.append("histogram counts do not sum to count")
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Problems with a JSONL trace file; empty list = schema-valid."""
    problems: List[str] = []
    span_ids: set = set()
    parent_refs: List[tuple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {number}: invalid JSON: {exc}")
                continue
            if number == 1 and record.get("type") != "meta":
                problems.append("line 1: first record must be meta")
            for problem in validate_trace_record(record):
                problems.append(f"line {number}: {problem}")
            if record.get("type") == "span" and isinstance(record.get("id"), int):
                span_ids.add(record["id"])
                if record.get("parent") is not None:
                    parent_refs.append((number, record["parent"]))
    for number, parent in parent_refs:
        if parent not in span_ids:
            problems.append(f"line {number}: span parent {parent} not in trace")
    if not span_ids and not problems:
        problems.append("trace contains no spans")
    return problems


# ---------------------------------------------------------------------------
# Human-readable profile
# ---------------------------------------------------------------------------


def profile_summary(tracer: RecordingTracer) -> str:
    """Aggregate spans by name: count, total/mean/max duration; plus counters."""
    totals: Dict[str, List[float]] = {}
    for span in tracer.spans:
        bucket = totals.setdefault(span.name, [0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration
        bucket[2] = max(bucket[2], span.duration)
    lines = [f"{'span':<28}{'count':>8}{'total':>12}{'mean':>12}{'max':>12}"]
    for name, (count, total, worst) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        lines.append(
            f"{name:<28}{count:>8}{total:>11.4f}s{total / count:>11.4f}s"
            f"{worst:>11.4f}s"
        )
    counters = tracer.metrics.counters()
    if counters:
        lines.append("")
        lines.append(f"{'counter':<44}{'value':>16}")
        for name, value in counters.items():
            lines.append(f"{name:<44}{value:>16}")
    return "\n".join(lines)
