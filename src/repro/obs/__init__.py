"""Observability for the reasoning stack: tracing, metrics, governance.

The paper's industrial setting (Section 6) runs MetaLog programs through
the chase over central-bank-scale financial graphs.  Wardedness bounds
the asymptotic cost, but a production deployment still needs to *see*
what the engine does (which stratum, which rule, how many derivations,
how selective each join probe is) and to *bound* what a single run may
consume.  This package provides both, with no third-party dependencies:

- :mod:`repro.obs.tracer` — a :class:`Tracer` protocol with span /
  counter / event APIs, a zero-cost :class:`NullTracer`, and an
  in-memory :class:`RecordingTracer`;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of monotonic
  counters and fixed-bucket histograms;
- :mod:`repro.obs.export` — a JSON/JSONL exporter for traces plus a
  schema validator (used by the CI bench smoke job);
- :mod:`repro.obs.governor` — a :class:`ResourceGovernor` enforcing
  wall-clock, fact-count, null, and per-stratum iteration budgets, with
  a graceful-degradation mode that lets the engine return partial
  results tagged ``budget_exceeded`` instead of raising.

The tracer is threaded through :class:`repro.vadalog.engine.Engine`,
:func:`repro.metalog.mtv.run_on_graph`, the SSST materializer, and the
deployment backends; see README "Observability & resource governance".
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    profile_summary,
    trace_records,
    validate_trace_file,
    validate_trace_record,
    write_trace,
)
from repro.obs.governor import BudgetExceeded, ResourceGovernor
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracer import NullTracer, RecordingTracer, Span, Tracer

__all__ = [
    "BudgetExceeded",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "ResourceGovernor",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "profile_summary",
    "trace_records",
    "validate_trace_file",
    "validate_trace_record",
    "write_trace",
]
