"""The durable streaming pipeline: feed -> log -> coalesce -> sink.

One :class:`DeltaStream` pulls change records from a feed source,
makes each record durable *before* applying it (append to the
CRC-framed :class:`~repro.stream.log.DeltaLog`, fsync), coalesces a
batch window of records into net operations, applies them through a
sink, and only then acknowledges the batch.  A
:class:`~repro.stream.log.StreamCheckpoint` persists the sink state
together with the acknowledged log offset, so after a crash —
mid-batch, mid-fsync, anywhere — ``run(resume=True)`` restores the
checkpointed state and replays exactly the unacknowledged log suffix:

    crash-consistency invariant
        checkpoint state == result of applying log[.. acked_offset];
        every logged-but-unacked record is replayed, every acked record
        is never replayed.

Backpressure: when a :class:`~repro.obs.governor.ResourceGovernor`
reports the apply path over its time budget, a graceful governor widens
the batch window (bigger batches coalesce harder and amortize flush
cost); a strict one raises :class:`~repro.errors.ResourceLimitError`.
Fast batches decay the window back toward its configured base.

Malformed records, duplicate sequence numbers, validation failures, and
constraint-violating batches are quarantined into a
:class:`~repro.deploy.resilience.QuarantineReport` — the stream never
stalls on bad input, and never silently drops it either.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.deploy.resilience import QuarantineReport
from repro.errors import ResourceLimitError, SchemaError, StreamError
from repro.obs.governor import ResourceGovernor
from repro.obs.tracer import NullTracer, Tracer
from repro.stream.coalesce import DeltaCoalescer
from repro.stream.feed import FeedRecord, parse_record
from repro.stream.log import DeltaLog, StreamCheckpoint
from repro.stream.sinks import ApplyResult

__all__ = ["DeltaStream", "StreamReport"]


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class StreamReport:
    """Live counters for one stream run (exposed under ``/stats``)."""

    records_seen: int = 0
    records_quarantined: int = 0
    duplicates_skipped: int = 0
    replayed_records: int = 0
    batches_applied: int = 0
    operations_applied: int = 0
    operations_dropped: int = 0
    records_cancelled: int = 0  # coalesced away inside a window
    facts_added: int = 0
    facts_removed: int = 0
    flush_changes: int = 0
    backpressure_widenings: int = 0
    apply_seconds: float = 0.0
    acked_offset: int = -1
    epoch: Optional[int] = None
    window: int = 0
    #: Per-record end-to-end staleness (arrival -> acknowledged), capped.
    staleness_samples: List[float] = field(default_factory=list)
    staleness_dropped: int = 0

    def staleness_p50(self) -> float:
        return _percentile(self.staleness_samples, 0.50)

    def staleness_p99(self) -> float:
        return _percentile(self.staleness_samples, 0.99)

    def coalesce_ratio(self) -> float:
        consumed = self.operations_applied + self.operations_dropped
        produced = consumed + self.records_cancelled
        if produced == 0:
            return 1.0
        return consumed / produced

    def to_json(self) -> Dict[str, Any]:
        return {
            "records_seen": self.records_seen,
            "records_quarantined": self.records_quarantined,
            "duplicates_skipped": self.duplicates_skipped,
            "replayed_records": self.replayed_records,
            "batches_applied": self.batches_applied,
            "operations_applied": self.operations_applied,
            "operations_dropped": self.operations_dropped,
            "records_cancelled": self.records_cancelled,
            "coalesce_ratio": round(self.coalesce_ratio(), 4),
            "facts_added": self.facts_added,
            "facts_removed": self.facts_removed,
            "flush_changes": self.flush_changes,
            "backpressure_widenings": self.backpressure_widenings,
            "apply_seconds": round(self.apply_seconds, 6),
            "acked_offset": self.acked_offset,
            "epoch": self.epoch,
            "window": self.window,
            "staleness_p50_seconds": round(self.staleness_p50(), 6),
            "staleness_p99_seconds": round(self.staleness_p99(), 6),
            "staleness_samples": len(self.staleness_samples)
            + self.staleness_dropped,
        }


class DeltaStream:
    """Durable change-feed consumption with coalescing and backpressure.

    Parameters
    ----------
    source:
        A feed (:class:`~repro.stream.feed.JsonlFeed`,
        :class:`~repro.stream.feed.GeneratorFeed`, or a
        :class:`~repro.stream.feed.FeedFaultInjector` wrapping one).
    sink:
        A :class:`~repro.stream.sinks.MaterializerSink` or
        :class:`~repro.stream.sinks.ServeStateSink`.
    log_dir:
        Directory for the delta log segments and the checkpoint; a
        non-empty directory requires ``run(resume=True)``.
    governor:
        Optional apply-path budget; see the module docstring.
    batch_window:
        Base records-per-batch.  Backpressure can widen the live window
        up to ``max_window``; it decays back when pressure clears.
    checkpoint_every / compact_every:
        Checkpoint the sink state every N applied batches; drop fully
        acknowledged log segments every N applied batches.
    follow:
        Keep polling at ``poll_interval`` after the feed drains
        (daemon mode).  ``stop()`` ends a following stream.
    max_batches:
        Apply at most this many batches, then return (chaos tests use
        this to stop a stream mid-feed).
    """

    def __init__(
        self,
        source: Any,
        sink: Any,
        log_dir: str,
        *,
        governor: Optional[ResourceGovernor] = None,
        batch_window: int = 64,
        max_window: int = 4096,
        checkpoint_every: int = 8,
        compact_every: int = 16,
        follow: bool = False,
        poll_interval: float = 0.05,
        max_batches: Optional[int] = None,
        quarantine: Optional[QuarantineReport] = None,
        segment_records: int = 1024,
        fsync: bool = True,
        seq_window: int = 4096,
        staleness_cap: int = 100_000,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        if max_window < batch_window:
            raise ValueError("max_window must be >= batch_window")
        self.source = source
        self.sink = sink
        self.log = DeltaLog(
            log_dir, segment_records=segment_records, fsync=fsync,
            tracer=tracer,
        )
        self.checkpoint = StreamCheckpoint(log_dir)
        self.governor = governor
        self.batch_window = batch_window
        self.max_window = max_window
        self.checkpoint_every = checkpoint_every
        self.compact_every = compact_every
        self.follow = follow
        self.poll_interval = poll_interval
        self.max_batches = max_batches
        self.quarantine = quarantine if quarantine is not None else QuarantineReport()
        self.seq_window = seq_window
        self.staleness_cap = staleness_cap
        self.tracer = tracer or NullTracer()
        self._clock = clock
        self._sleep = sleep

        self.report = StreamReport(window=batch_window)
        self._window: float = float(batch_window)
        #: (log offset, parsed record, arrival time)
        self._pending: Deque[Tuple[int, FeedRecord, float]] = deque()
        self._recent_seqs: Deque[int] = deque(maxlen=seq_window)
        self._recent_set: set = set()
        self._acked_offset = -1
        self._durable_offset = -1  # highest offset covered by a checkpoint
        self._last_position = 0
        self._max_seq = -1
        self._batches_since_checkpoint = 0
        self._batches_since_compact = 0
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Binds log + checkpoint to the sink's immutable inputs."""
        material = self.sink.fingerprint_material()
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def stop(self) -> None:
        """Ask a following stream to exit after the current batch."""
        self._stopped = True

    def stats_summary(self) -> Dict[str, Any]:
        summary = self.report.to_json()
        summary["pending_records"] = len(self._pending)
        summary["quarantined_total"] = len(self.quarantine.rejections)
        summary["source"] = getattr(self.source, "name", "feed")
        summary["source_position"] = self._last_position
        summary["log_next_offset"] = self.log.next_offset
        return summary

    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> StreamReport:
        """Consume the feed to completion (or until stopped).

        ``resume=False`` requires a pristine log directory and
        bootstraps the sink from its configured inputs;
        ``resume=True`` restores the checkpointed state and replays the
        unacknowledged log suffix before touching the feed.
        """
        if resume:
            self._resume()
        else:
            if self.log.next_offset > 0 or self.checkpoint.exists():
                raise StreamError(
                    f"log directory {self.log.directory!r} already holds a "
                    "stream; pass resume=True to continue it"
                )
            self.sink.bootstrap()
            # Checkpoint the pristine state before anything applies, so
            # a crash in the very first batch still has a resume point.
            self._save_checkpoint()
        completed = False
        try:
            self._loop()
            completed = True
        finally:
            self._finalize(completed)
        return self.report

    # ------------------------------------------------------------------
    def _resume(self) -> None:
        payload = self.checkpoint.load(self.fingerprint)
        self.sink.restore(payload["state"])
        self.sink.bootstrap()
        acked = payload["acked_offset"]
        self._acked_offset = acked
        self._durable_offset = acked
        self._last_position = payload["source_position"]
        self._max_seq = payload["last_seq"]
        self.report.batches_applied = payload["batches_applied"]
        self.report.acked_offset = acked
        with self.tracer.span("stream.replay", after=acked):
            for entry in self.log.replay(after=acked):
                record = parse_record(entry.text)
                self._note_seq(record.seq)
                self._pending.append((entry.offset, record, self._clock()))
                self.report.replayed_records += 1
        self.tracer.count("stream.replayed", self.report.replayed_records)
        # The log also covers records the checkpoint predates.
        self.source.seek(max(self._last_position, self.log.last_position))
        self._last_position = max(self._last_position, self.log.last_position)

    def _loop(self) -> None:
        while not self._stopped:
            pumped = self._pump()
            while len(self._pending) >= int(self._window):
                self._apply_window()
                if self._done():
                    return
            if self._done():
                return
            if pumped == 0:
                if self._pending:
                    # Idle feed: flush the partial window rather than
                    # hold records hostage to the batch size.
                    self._apply_window()
                    continue
                if not self.follow:
                    return
                self._sleep(self.poll_interval)

    def _done(self) -> bool:
        if self._stopped:
            return True
        return (
            self.max_batches is not None
            and self.report.batches_applied >= self.max_batches
        )

    def _finalize(self, completed: bool) -> None:
        # After a crash the sink may hold a half-applied (or applied but
        # unacknowledged) batch; checkpointing it would break the
        # invariant that checkpoint state == log[.. acked_offset].  Only
        # a cleanly completed run saves its final progress — a crashed
        # one resumes from the last good checkpoint and replays.
        if completed and self._acked_offset > self._durable_offset:
            self._save_checkpoint()
        self.log.compact(self._durable_offset)
        self.log.close()

    # ------------------------------------------------------------------
    def _note_seq(self, seq: Optional[int]) -> None:
        if seq is None:
            return  # seq-less records opt out of duplicate suppression
        if len(self._recent_seqs) == self._recent_seqs.maxlen:
            self._recent_set.discard(self._recent_seqs[0])
        self._recent_seqs.append(seq)
        self._recent_set.add(seq)
        if self._max_seq is None or seq > self._max_seq:
            self._max_seq = seq

    def _pump(self) -> int:
        raws = self.source.poll()
        for raw in raws:
            self.report.records_seen += 1
            self._last_position = raw.position
            try:
                record = parse_record(raw.text)
            except StreamError as exc:
                self._reject("feed", raw.text, str(exc))
                continue
            if record.seq is not None and record.seq in self._recent_set:
                self.report.duplicates_skipped += 1
                self.tracer.count("stream.feed_duplicates")
                continue
            self._note_seq(record.seq)
            reason = self.sink.validate(record)
            if reason is not None:
                self._reject(record.key[0], record.payload, reason)
                continue
            entry = self.log.append(raw.position, raw.text)
            self._pending.append((entry.offset, record, self._clock()))
        if raws:
            self.tracer.observe("stream.feed_lag_records", len(self._pending))
        return len(raws)

    def _reject(self, kind: str, record: Any, reason: str) -> None:
        self.quarantine.reject(kind, record, reason)
        self.report.records_quarantined += 1
        self.tracer.count("stream.quarantined")

    # ------------------------------------------------------------------
    def _apply_window(self) -> None:
        count = min(int(self._window), len(self._pending))
        window = [self._pending.popleft() for _ in range(count)]
        coalescer = DeltaCoalescer(
            self.sink.exists, strict=self.sink.mode == "registry"
        )
        for _, record, _ in window:
            coalescer.push(record)
        batch = coalescer.drain()
        for record, reason in batch.rejections:
            self._reject(record.key[0], record.payload, reason)
        self.report.records_cancelled += batch.stats.cancelled
        self.tracer.observe("stream.coalesce_ratio", batch.stats.ratio)
        self.tracer.observe("stream.batch_records", count)

        started = self._clock()
        with self.tracer.span(
            "stream.batch", records=count, operations=len(batch.operations)
        ):
            if self.governor is not None:
                self.governor.begin()
            try:
                result = self.sink.apply(batch, self.quarantine)
            except SchemaError as exc:
                # The sink validates before mutating, so a rejected
                # batch leaves no partial state: quarantine it whole
                # and acknowledge, the stream must not wedge on it.
                for _net, key, payload in batch.operations:
                    self._reject(key[0], payload, f"batch rejected: {exc}")
                result = ApplyResult(dropped=len(batch.operations))
        elapsed = self._clock() - started
        self.report.apply_seconds += elapsed
        self.tracer.observe("stream.apply_seconds", elapsed)

        self._acknowledge(window, result)
        self._backpressure()

    def _acknowledge(
        self, window: List[Tuple[int, FeedRecord, float]], result: ApplyResult
    ) -> None:
        self._acked_offset = window[-1][0]
        report = self.report
        report.acked_offset = self._acked_offset
        report.batches_applied += 1
        report.operations_applied += result.operations
        report.operations_dropped += result.dropped
        report.facts_added += result.facts_added
        report.facts_removed += result.facts_removed
        report.flush_changes += result.flush_changes
        if result.epoch is not None:
            report.epoch = result.epoch
        now = self._clock()
        for _, _, arrived in window:
            staleness = max(0.0, now - arrived)
            self.tracer.observe("stream.staleness_seconds", staleness)
            if len(report.staleness_samples) < self.staleness_cap:
                report.staleness_samples.append(staleness)
            else:
                report.staleness_dropped += 1

        self._batches_since_checkpoint += 1
        self._batches_since_compact += 1
        if self._batches_since_checkpoint >= self.checkpoint_every:
            self._save_checkpoint()
        if self._batches_since_compact >= self.compact_every:
            self.log.compact(self._durable_offset)
            self._batches_since_compact = 0

    def _save_checkpoint(self) -> None:
        self.checkpoint.save(
            fingerprint=self.fingerprint,
            acked_offset=self._acked_offset,
            source_position=self._last_position,
            last_seq=self._max_seq,
            batches_applied=self.report.batches_applied,
            state=self.sink.state_payload(),
        )
        self._durable_offset = self._acked_offset
        self._batches_since_checkpoint = 0
        self.tracer.count("stream.checkpoints")

    def _backpressure(self) -> None:
        if self.governor is None:
            violation = None
        else:
            violation = self.governor.check_time()
        if violation is not None:
            self.tracer.count("stream.backpressure")
            if not self.governor.graceful:
                raise ResourceLimitError(
                    f"stream apply exceeded its budget: {violation}",
                    resource=violation.resource,
                    limit=violation.limit,
                )
            widened = min(float(self.max_window), self._window * 2)
            if int(widened) > int(self._window):
                self.report.backpressure_widenings += 1
                self.tracer.count("stream.backpressure_widen")
            self._window = widened
        else:
            self._window = max(float(self.batch_window), self._window * 0.75)
        self.report.window = int(self._window)
