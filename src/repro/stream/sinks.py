"""Sinks: where coalesced delta batches land.

Two levels, matching the two feed-record shapes:

- :class:`MaterializerSink` — the SSST path.  Registry-level changes
  (nodes/edges of the plain data graph) drive
  :meth:`~repro.ssst.materializer.IntensionalMaterializer.update` over a
  retained materialization, and the resulting
  :class:`~repro.deploy.delta.FlushDelta` is pushed to any attached
  deployment targets (graph store, triple store, relational engine)
  through a :class:`~repro.deploy.resilience.RetryPolicy`.
- :class:`ServeStateSink` — the serve path.  Fact-level changes
  (extensional Vadalog facts) drive
  :meth:`~repro.serve.state.ServeState.apply_delta`; every applied
  batch publishes a new snapshot epoch.

Both expose the same protocol to :class:`~repro.stream.pipeline.DeltaStream`:

``mode``
    ``"registry"`` or ``"fact"`` — selects strict vs tolerant
    coalescing.
``fingerprint_material()``
    A stable string binding the sink to its *inputs* (schema, program,
    instance OID — never the mutable data), hashed into the stream
    checkpoint fingerprint.
``validate(record)``
    Per-record admission check; a non-None reason quarantines the
    record before it reaches the coalescer.
``exists(key)``
    Membership oracle for the coalescer's base state.
``apply(batch, quarantine)``
    Apply one coalesced batch; per-operation constraint violations are
    quarantined, sink-level failures raise.
``state_payload()`` / ``restore(payload)`` / ``bootstrap()``
    Crash-safe resume: the payload captures the durable inputs (the
    registry graph / the extensional facts) with the
    :mod:`repro.ssst.checkpoint` codec; ``restore`` swaps them in
    before ``bootstrap`` rebuilds the derived state from scratch.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.deploy.loaders import load_graph_store, load_triple_store
from repro.deploy.resilience import QuarantineReport, RetryPolicy, no_retry
from repro.errors import SchemaError, StreamError
from repro.graph.property_graph import PropertyGraph
from repro.obs.tracer import NullTracer, Tracer
from repro.ssst.checkpoint import (
    decode_value,
    encode_value,
    graph_payload,
    restore_graph,
)
from repro.ssst.incremental import RegistryDelta
from repro.ssst.inverse import collect_relational_rows
from repro.ssst.materializer import IntensionalMaterializer
from repro.stream.coalesce import CoalescedBatch
from repro.stream.feed import FACT_OPS, REGISTRY_OPS, FeedRecord
from repro.vadalog.terms import fact_sort_key

__all__ = [
    "ApplyResult",
    "MaterializerSink",
    "ServeStateSink",
    "GraphStoreTarget",
    "TripleStoreTarget",
    "RelationalEngineTarget",
]


@dataclass
class ApplyResult:
    """What one batch did to the sink."""

    operations: int = 0  # net operations applied
    dropped: int = 0  # operations quarantined at apply time
    engine_seconds: float = 0.0
    facts_added: int = 0
    facts_removed: int = 0
    #: Serve sink: the snapshot epoch the batch published.
    epoch: Optional[int] = None
    #: Registry sink: plain-graph changes pushed to deployed targets.
    flush_changes: int = 0


# ----------------------------------------------------------------------
# Deployment targets for the registry sink
# ----------------------------------------------------------------------
class GraphStoreTarget:
    """A deployed property-graph store kept current per batch."""

    def __init__(self, store: Any, schema: Any):
        self.store = store
        self.schema = schema

    @property
    def name(self) -> str:
        return getattr(self.store, "name", "graph-store")

    def load_full(self, enriched: PropertyGraph) -> None:
        load_graph_store(self.schema, enriched, self.store)

    def apply(self, update: Any) -> None:
        if update.flush_delta is not None and update.flush_delta.changed():
            self.store.apply_flush_delta(update.flush_delta, schema=self.schema)


class TripleStoreTarget:
    """A deployed RDF triple store kept current per batch."""

    def __init__(self, store: Any, schema: Any):
        self.store = store
        self.schema = schema

    @property
    def name(self) -> str:
        return getattr(self.store, "name", "triple-store")

    def load_full(self, enriched: PropertyGraph) -> None:
        load_triple_store(self.schema, enriched, self.store)

    def apply(self, update: Any) -> None:
        if update.flush_delta is not None and update.flush_delta.changed():
            self.store.apply_flush_delta(update.flush_delta, schema=self.schema)


class RelationalEngineTarget:
    """A deployed relational engine maintained by row-image diffing.

    The relational layout is *not* element-local — one graph node fans
    out to one row per hierarchy member, edge FKs merge into entity
    rows, M:N edges become bridge rows — so a :class:`FlushDelta` cannot
    be applied record-by-record.  Instead the target caches the full row
    image of the enriched instance (as per-table row multisets) and per
    batch diffs it against the next image; the delta applies through one
    ``apply_flush_delta`` call under a savepoint, so transient faults
    and retries see all-or-nothing batches.

    Two relational-only wrinkles the diff resolves:

    - ``delete`` removes *every* matching row, so a multiset count
      change ``n -> m`` with ``m > 0`` becomes one delete plus ``m``
      re-inserts;
    - per-delete FK RESTRICT checks mean a referenced row cannot be
      replaced while its referencing rows exist, so removals cascade to
      the (unchanged, re-inserted) referencing rows, tables are deleted
      referencing-first, and the inserts run under deferred constraints.
    """

    def __init__(self, engine: Any, schema: Any):
        self.engine = engine
        self.schema = schema
        #: table -> Counter of canonical row keys (the current image).
        self._image: Dict[str, Counter] = {}
        #: (table, key) -> full row dict (every column, None default).
        self._row_of: Dict[Tuple[str, Tuple[Any, ...]], Dict[str, Any]] = {}

    @property
    def name(self) -> str:
        return getattr(self.engine, "name", "rdbms")

    # -- row canonicalization ------------------------------------------
    def _columns(self, table: str) -> List[str]:
        return [c.name for c in self.engine.table_schema(table).columns]

    def _compute_image(self, enriched: PropertyGraph):
        rows = collect_relational_rows(self.schema, enriched)
        image: Dict[str, Counter] = {}
        row_of: Dict[Tuple[str, Tuple[Any, ...]], Dict[str, Any]] = {}
        for table, table_rows in rows.items():
            columns = self._columns(table)
            counter = image.setdefault(table, Counter())
            for row in table_rows:
                full = {name: row.get(name) for name in columns}
                key = tuple(full[name] for name in columns)
                counter[key] += 1
                row_of[(table, key)] = full
        return image, row_of

    def _delete_order(self) -> List[str]:
        """Tables ordered so FK sources come before their targets."""
        tables = self.engine.tables()
        dependents: Dict[str, set] = {t: set() for t in tables}
        indegree: Dict[str, int] = {t: 0 for t in tables}
        for fk in self.engine.foreign_keys():
            if fk.source_table == fk.target_table:
                continue
            if fk.target_table not in dependents[fk.source_table]:
                dependents[fk.source_table].add(fk.target_table)
                indegree[fk.target_table] += 1
        order: List[str] = []
        ready = sorted(t for t in tables if indegree[t] == 0)
        while ready:
            table = ready.pop(0)
            order.append(table)
            for downstream in sorted(dependents[table]):
                indegree[downstream] -= 1
                if indegree[downstream] == 0:
                    ready.append(downstream)
            ready.sort()
        for table in tables:  # FK cycles: fall back to name order
            if table not in order:
                order.append(table)
        return order

    # -- protocol ------------------------------------------------------
    def load_full(self, enriched: PropertyGraph) -> None:
        image, row_of = self._compute_image(enriched)
        with self.engine.deferred():
            for table in sorted(image):
                counter = image[table]
                batch = []
                for key, count in counter.items():
                    batch.extend([dict(row_of[(table, key)])] * count)
                if batch:
                    self.engine.insert_many(table, batch)
        self._image, self._row_of = image, row_of

    def apply(self, update: Any) -> None:
        new_image, new_row_of = self._compute_image(update.instance.data)

        # Keys whose multiset count changed: delete once (removes every
        # copy), re-insert the surviving count.
        removed_keys: set = set()
        inserts: Counter = Counter()  # (table, key) -> copies to insert
        tables = set(self._image) | set(new_image)
        for table in tables:
            old = self._image.get(table, Counter())
            new = new_image.get(table, Counter())
            for key in set(old) | set(new):
                before, after = old.get(key, 0), new.get(key, 0)
                if before == after:
                    continue
                if before:
                    removed_keys.add((table, key))
                if after:
                    inserts[(table, key)] = after

        # Cascade: existing rows whose FK references a removed row must
        # be removed (and re-inserted unchanged) too, or the per-delete
        # RESTRICT check rejects the replace.
        foreign_keys = self.engine.foreign_keys()
        changed = True
        while changed:
            changed = False
            for fk in foreign_keys:
                gone = {
                    tuple(
                        self._row_of[(t, k)].get(c) for c in fk.target_columns
                    )
                    for (t, k) in removed_keys
                    if t == fk.target_table
                }
                gone.discard(tuple([None] * len(fk.target_columns)))
                if not gone:
                    continue
                source_table = fk.source_table
                for key, count in self._image.get(
                    source_table, Counter()
                ).items():
                    entry = (source_table, key)
                    if entry in removed_keys:
                        continue
                    row = self._row_of[entry]
                    values = tuple(row.get(c) for c in fk.source_columns)
                    if values in gone:
                        removed_keys.add(entry)
                        survivors = new_image.get(source_table, Counter()).get(
                            key, 0
                        )
                        if survivors:
                            inserts[entry] = survivors
                        changed = True

        if not removed_keys and not inserts:
            self._image, self._row_of = new_image, new_row_of
            return

        removed: Dict[str, List[Dict[str, Any]]] = {}
        for table in self._delete_order():
            batch = [
                dict(self._row_of[(t, k)])
                for (t, k) in sorted(removed_keys, key=fact_sort_key)
                if t == table
            ]
            if batch:
                removed[table] = batch
        added: Dict[str, List[Dict[str, Any]]] = {}
        for (table, key), count in sorted(
            inserts.items(), key=fact_sort_key
        ):
            row_source = new_row_of if (table, key) in new_row_of else self._row_of
            added.setdefault(table, []).extend(
                dict(row_source[(table, key)]) for _ in range(count)
            )

        savepoint = self.engine.savepoint()
        try:
            with self.engine.deferred():
                self.engine.apply_flush_delta(added=added, removed=removed)
        except Exception:
            self.engine.rollback_to(savepoint)
            raise
        finally:
            self.engine.release(savepoint)
        self._image, self._row_of = new_image, new_row_of


# ----------------------------------------------------------------------
# Registry sink
# ----------------------------------------------------------------------
class MaterializerSink:
    """Registry-level changes maintained through the incremental chase.

    ``data`` is the live registry graph (mutated in place by updates);
    ``bootstrap()`` materializes it with ``retain=True`` and fully loads
    every attached target from the enriched instance.  Per batch,
    :meth:`apply` builds a :class:`~repro.ssst.incremental.RegistryDelta`
    (quarantining operations that would violate referential integrity),
    runs ``materializer.update``, and pushes the flush delta to each
    target through the retry policy.  The chase update itself is never
    retried — it either applies atomically or raises before mutating.
    """

    mode = "registry"

    def __init__(
        self,
        schema: Any,
        sigma: Any,
        data: PropertyGraph,
        *,
        instance_oid: Any = 1,
        materializer: Optional[IntensionalMaterializer] = None,
        retry: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.schema = schema
        self.sigma = sigma
        self.data = data
        self.instance_oid = instance_oid
        self.materializer = materializer or IntensionalMaterializer()
        self.retry = retry or no_retry()
        self.tracer = tracer or NullTracer()
        self.targets: List[Any] = []
        self.batches_applied = 0

    # -- targets -------------------------------------------------------
    def attach_graph_store(self, store: Any) -> GraphStoreTarget:
        target = GraphStoreTarget(store, self.schema)
        self.targets.append(target)
        return target

    def attach_triple_store(self, store: Any) -> TripleStoreTarget:
        target = TripleStoreTarget(store, self.schema)
        self.targets.append(target)
        return target

    def attach_relational_engine(self, engine: Any) -> RelationalEngineTarget:
        target = RelationalEngineTarget(engine, self.schema)
        self.targets.append(target)
        return target

    # -- lifecycle -----------------------------------------------------
    def fingerprint_material(self) -> str:
        schema_graph = self.schema.to_dictionary(PropertyGraph("fingerprint"))
        return json.dumps(
            {
                "mode": self.mode,
                "schema": graph_payload(schema_graph),
                "sigma": repr(self.sigma),
                "instance_oid": repr(self.instance_oid),
            },
            sort_keys=True,
        )

    def state_payload(self) -> Dict[str, Any]:
        return {"registry": graph_payload(self.data)}

    def restore(self, payload: Dict[str, Any]) -> None:
        try:
            self.data = restore_graph(payload["registry"])
        except (KeyError, TypeError) as exc:
            raise StreamError(
                f"stream checkpoint state is not a registry payload: {exc}"
            ) from exc

    def bootstrap(self) -> None:
        """Materialize the registry and fully load every target."""
        report = self.materializer.materialize(
            self.schema,
            self.data,
            self.sigma,
            instance_oid=self.instance_oid,
            retain=True,
        )
        if report.truncated or self.materializer.retained is None:
            raise StreamError(
                "base materialization was truncated by a resource budget; "
                "a stream cannot maintain partial state"
            )
        for target in self.targets:
            self.retry.call(
                lambda target=target: target.load_full(report.instance.data),
                tracer=self.tracer,
            )

    # -- coalescer oracle ----------------------------------------------
    def exists(self, key: Tuple[Any, ...]) -> bool:
        kind = key[0]
        if kind == "node":
            return self.data.has_node(key[1])
        if kind == "edge":
            return self.data.has_edge(key[1])
        return False

    def validate(self, record: FeedRecord) -> Optional[str]:
        if record.op not in REGISTRY_OPS:
            return f"op {record.op!r} is not a registry operation"
        if record.op == "add_node":
            type_name = record.payload.get("type")
            if not self.schema.has_node(type_name):
                return f"unknown node type {type_name!r}"
        elif record.op == "add_edge":
            type_name = record.payload.get("type")
            if not self.schema.has_edge(type_name):
                return f"unknown edge type {type_name!r}"
        return None

    # -- batch application ---------------------------------------------
    def _registry_delta(
        self, batch: CoalescedBatch, quarantine: QuarantineReport
    ) -> Tuple[RegistryDelta, int]:
        delta = RegistryDelta()
        dropped = 0
        added_node_ids: set = set()
        gone_node_ids: set = set()
        edge_operations = []
        for net, key, payload in batch.operations:
            if key[0] == "edge":
                edge_operations.append((net, key, payload))
                continue
            node_id = key[1]
            if net in ("remove", "replace"):
                delta.remove_nodes.append(node_id)
            if net in ("add", "replace"):
                added_node_ids.add(node_id)
                delta.add_nodes.append(
                    (
                        node_id,
                        payload["type"],
                        dict(payload.get("properties", {})),
                    )
                )
            else:
                gone_node_ids.add(node_id)
        for net, key, payload in edge_operations:
            edge_id = key[1]
            if net in ("remove", "replace"):
                delta.remove_edges.append(edge_id)
            if net not in ("add", "replace"):
                continue
            source, target = payload["source"], payload["target"]
            missing = None
            for endpoint in (source, target):
                present = endpoint in added_node_ids or (
                    self.data.has_node(endpoint)
                    and endpoint not in gone_node_ids
                )
                if not present:
                    missing = endpoint
                    break
            if missing is not None:
                # A rejected replace degrades to the removal alone.
                quarantine.reject(
                    "edge", payload, f"references missing node {missing!r}"
                )
                dropped += 1
                continue
            delta.add_edges.append(
                (
                    edge_id,
                    source,
                    target,
                    payload["type"],
                    dict(payload.get("properties", {})),
                )
            )
        return delta, dropped

    def apply(
        self, batch: CoalescedBatch, quarantine: QuarantineReport
    ) -> ApplyResult:
        delta, dropped = self._registry_delta(batch, quarantine)
        result = ApplyResult(
            operations=len(batch.operations) - dropped, dropped=dropped
        )
        if delta.is_empty():
            return result
        update = self.materializer.update(delta)
        result.engine_seconds = update.engine_seconds
        for report in (update.delta_load, update.delta_reason, update.delta_flush):
            if report is None:
                continue
            result.facts_added += sum(len(v) for v in report.added.values())
            result.facts_removed += sum(len(v) for v in report.removed.values())
        if update.flush_delta is not None:
            result.flush_changes = update.flush_delta.total_changes
        for target in self.targets:
            self.retry.call(
                lambda target=target: target.apply(update),
                tracer=self.tracer,
            )
        self.batches_applied += 1
        return result


# ----------------------------------------------------------------------
# Serve sink
# ----------------------------------------------------------------------
class ServeStateSink:
    """Fact-level changes applied to a serving snapshot state.

    Either wraps an already-running :class:`~repro.serve.state.ServeState`
    (the ``kgmodel serve --feed`` path) or builds one at bootstrap from
    ``program``/``inputs`` (the ``kgmodel stream`` serve mode).  Every
    applied batch advances the snapshot epoch by exactly one.
    """

    mode = "fact"

    def __init__(
        self,
        state: Any = None,
        *,
        program: Any = None,
        inputs: Optional[Dict[str, Any]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if state is None and program is None:
            raise ValueError("ServeStateSink needs a state or a program")
        self.state = state
        if program is None:
            program = state.program
        elif isinstance(program, str):
            # Parse up front so the checkpoint fingerprint binds to the
            # canonical program text, not to incidental formatting — a
            # restart that passes the same rules with different
            # whitespace must still resume.
            from repro.vadalog.parser import parse_program

            program = parse_program(program)
        self._program = program
        self._inputs = inputs
        self.tracer = tracer or NullTracer()
        self.batches_applied = 0
        self._edb_cache_epoch: Optional[int] = None
        self._edb_cache: set = set()
        self._idb: Optional[set] = None

    # -- lifecycle -----------------------------------------------------
    def fingerprint_material(self) -> str:
        return json.dumps(
            {"mode": self.mode, "program": str(self._program)}, sort_keys=True
        )

    def state_payload(self) -> Dict[str, Any]:
        snapshot = self.state.snapshot
        return {
            "edb": {
                predicate: [
                    [encode_value(term) for term in fact]
                    for fact in sorted(bucket, key=fact_sort_key)
                ]
                for predicate, bucket in snapshot.edb.items()
            }
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        try:
            inputs = {
                predicate: [
                    tuple(decode_value(term) for term in fact)
                    for fact in bucket
                ]
                for predicate, bucket in payload["edb"].items()
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise StreamError(
                f"stream checkpoint state is not an edb payload: {exc}"
            ) from exc
        if self.state is None:
            self._inputs = inputs
            return
        # A live server already handed its ServeState to the HTTP
        # handlers; reconcile the extensional facts in place (one delta)
        # instead of rebuilding, so those references stay valid.
        snapshot = self.state.snapshot
        current = {
            (predicate, fact)
            for predicate, bucket in snapshot.edb.items()
            for fact in bucket
        }
        target = {
            (predicate, fact)
            for predicate, facts in inputs.items()
            for fact in facts
        }
        added: Dict[str, List[Tuple[Any, ...]]] = {}
        removed: Dict[str, List[Tuple[Any, ...]]] = {}
        for predicate, fact in target - current:
            added.setdefault(predicate, []).append(fact)
        for predicate, fact in current - target:
            removed.setdefault(predicate, []).append(fact)
        if added or removed:
            self.state.apply_delta(added=added or None, removed=removed or None)

    def bootstrap(self) -> None:
        if self.state is None:
            from repro.serve.state import ServeState

            self.state = ServeState(self._program, inputs=self._inputs)

    # -- coalescer oracle ----------------------------------------------
    def _edb_index(self) -> set:
        snapshot = self.state.snapshot
        if self._edb_cache_epoch != snapshot.epoch:
            self._edb_cache = {
                (predicate, fact)
                for predicate, bucket in snapshot.edb.items()
                for fact in bucket
            }
            self._edb_cache_epoch = snapshot.epoch
        return self._edb_cache

    def exists(self, key: Tuple[Any, ...]) -> bool:
        return (key[1], tuple(key[2])) in self._edb_index()

    def validate(self, record: FeedRecord) -> Optional[str]:
        if record.op not in FACT_OPS:
            return f"op {record.op!r} is not a fact operation"
        predicate = record.payload["predicate"]
        if self._idb is None:
            self._idb = set(self.state.program.idb_predicates())
        if predicate in self._idb:
            return f"{predicate!r} is derived; only extensional facts stream"
        arity = self.state.snapshot.arity(predicate)
        if arity is not None and len(record.payload["fact"]) != arity:
            return (
                f"arity mismatch for {predicate!r}: expected {arity}, "
                f"got {len(record.payload['fact'])}"
            )
        return None

    # -- batch application ---------------------------------------------
    def apply(
        self, batch: CoalescedBatch, quarantine: QuarantineReport
    ) -> ApplyResult:
        added: Dict[str, List[Tuple[Any, ...]]] = {}
        removed: Dict[str, List[Tuple[Any, ...]]] = {}
        applied = 0
        for net, key, _payload in batch.operations:
            predicate, fact = key[1], tuple(key[2])
            if net == "add":
                added.setdefault(predicate, []).append(fact)
            elif net == "remove":
                removed.setdefault(predicate, []).append(fact)
            else:
                # remove + re-add of the same fact: nets to "still
                # present" — nothing for the engine to do.
                continue
            applied += 1
        result = ApplyResult(operations=applied)
        if not added and not removed:
            return result
        delta = self.state.apply_delta(added=added or None, removed=removed or None)
        result.engine_seconds = getattr(delta, "elapsed_seconds", 0.0)
        result.facts_added = sum(len(v) for v in delta.added.values())
        result.facts_removed = sum(len(v) for v in delta.removed.values())
        result.epoch = self.state.snapshot.epoch
        self.batches_applied += 1
        return result
