"""Durable delta log and stream checkpoint for crash-safe ingestion.

The pipeline's durability contract is *log before apply, checkpoint
after ack*:

1. Every raw feed record is appended to the :class:`DeltaLog` —
   CRC32-framed JSON lines in segment files, flushed and ``fsync``'d
   before the pipeline considers the record received.
2. Batches are applied to the sink; only then is their highest log
   offset *acknowledged*.
3. The :class:`StreamCheckpoint` periodically persists the acked
   offset, the feed cursor, and the sink's state payload (encoded with
   the :mod:`repro.ssst.checkpoint` codec).

After a crash, resume restores the checkpointed sink state, replays the
log suffix ``offset > acked`` through the normal batch path, and seeks
the feed past everything already logged.  Because the log holds the
exact bytes that arrived, replay re-parses the same input — a record
quarantined before the crash is quarantined identically after it, and
the final state is bit-identical to a clean run over the same feed.

Torn tails are expected: a crash can interrupt an append after the
write but before the fsync completes.  Opening the log validates every
record (CRC + JSON + monotone offsets) and truncates a torn tail *of
the last segment only*; corruption anywhere else means lost
acknowledged history and raises :class:`~repro.errors.StreamError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterator, List, Optional

from repro.errors import StreamError
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["LogRecord", "DeltaLog", "StreamCheckpoint"]

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".log"
_CHECKPOINT_FILE = "checkpoint.json"
_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class LogRecord:
    """One durable feed record.

    ``offset`` is the log's own dense sequence (0, 1, 2, ...);
    ``position`` is the feed cursor after the record (used to seek the
    source past logged input on resume); ``text`` is the raw feed line,
    byte-for-byte as delivered.
    """

    offset: int
    position: int
    text: str


def _frame(record: LogRecord) -> str:
    body = {"o": record.offset, "p": record.position, "r": record.text}
    body["c"] = zlib.crc32(
        json.dumps(
            [record.offset, record.position, record.text],
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
    )
    return json.dumps(body, separators=(",", ":"), sort_keys=True)


def _unframe(line: str) -> LogRecord:
    try:
        body = json.loads(line)
    except (ValueError, TypeError) as exc:
        raise StreamError(f"unreadable log frame: {exc}") from exc
    if not isinstance(body, dict):
        raise StreamError("log frame is not an object")
    try:
        offset = body["o"]
        position = body["p"]
        text = body["r"]
        crc = body["c"]
    except KeyError as exc:
        raise StreamError(f"log frame missing field {exc}") from exc
    expected = zlib.crc32(
        json.dumps(
            [offset, position, text], separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    )
    if crc != expected:
        raise StreamError(
            f"log frame checksum mismatch at offset {offset}: "
            f"{crc} != {expected}"
        )
    return LogRecord(offset=offset, position=position, text=text)


class DeltaLog:
    """Append-only, segment-structured, fsync'd record log.

    Layout: ``<directory>/segment-<first_offset:012d>.log``, one JSON
    frame per line.  A new segment starts every ``segment_records``
    appends, which bounds both torn-tail rescan cost and the unit of
    :meth:`compact`: a segment whose records are all acknowledged can
    be deleted wholesale without rewriting anything.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_records: int = 1024,
        fsync: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.directory = str(directory)
        self.segment_records = segment_records
        self.fsync = fsync
        self.tracer = tracer or NullTracer()
        os.makedirs(self.directory, exist_ok=True)
        self._handle: Optional[IO[str]] = None
        self._segment_path: Optional[str] = None
        self._segment_count = 0
        self.next_offset = 0
        self.last_position = 0
        self._recover()

    # -- recovery ------------------------------------------------------
    def _segments(self) -> List[str]:
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
        ]
        return sorted(names)

    def _recover(self) -> None:
        """Validate all segments; truncate a torn tail of the last one.

        Offsets must be dense from the *first remaining* segment's named
        offset — compaction deletes fully acknowledged prefixes, so a
        reopened log legitimately starts past zero.
        """
        segments = self._segments()
        expected = 0
        if segments:
            expected = int(
                segments[0][len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
        for index, name in enumerate(segments):
            path = os.path.join(self.directory, name)
            last = index == len(segments) - 1
            good_bytes = 0
            records_in_segment = 0
            with open(path, "rb") as handle:
                while True:
                    line = handle.readline()
                    if not line:
                        break
                    torn = not line.endswith(b"\n")
                    if not torn:
                        try:
                            record = _unframe(
                                line.decode("utf-8", errors="strict").rstrip("\n")
                            )
                            if record.offset != expected:
                                raise StreamError(
                                    f"log offset gap in {name}: expected "
                                    f"{expected}, found {record.offset}"
                                )
                        except (StreamError, UnicodeDecodeError) as exc:
                            if not last:
                                raise StreamError(
                                    f"corrupt delta log segment {name}: {exc}"
                                ) from exc
                            torn = True
                    if torn:
                        if not last:
                            raise StreamError(
                                f"corrupt delta log segment {name}: "
                                "torn record before the final segment"
                            )
                        remaining = handle.read()
                        if remaining.strip():
                            raise StreamError(
                                f"corrupt delta log segment {name}: data "
                                "after a torn record"
                            )
                        break
                    expected = record.offset + 1
                    self.last_position = max(self.last_position, record.position)
                    good_bytes = handle.tell()
                    records_in_segment += 1
            size = os.path.getsize(path)
            if good_bytes < size:
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.tracer.count("stream.log_torn_tail", 1)
            if last:
                self._segment_path = path
                self._segment_count = records_in_segment
        self.next_offset = expected

    # -- append --------------------------------------------------------
    def _open_segment(self) -> IO[str]:
        if (
            self._handle is None
            or self._segment_path is None
            or self._segment_count >= self.segment_records
        ):
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if (
                self._segment_path is None
                or self._segment_count >= self.segment_records
            ):
                name = f"{_SEGMENT_PREFIX}{self.next_offset:012d}{_SEGMENT_SUFFIX}"
                self._segment_path = os.path.join(self.directory, name)
                self._segment_count = 0
            self._handle = open(self._segment_path, "a", encoding="utf-8")
        return self._handle

    def append(self, position: int, text: str) -> LogRecord:
        """Durably persist one raw feed record; returns its log record."""
        record = LogRecord(
            offset=self.next_offset, position=position, text=text
        )
        handle = self._open_segment()
        handle.write(_frame(record) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.next_offset += 1
        self.last_position = max(self.last_position, position)
        self._segment_count += 1
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay --------------------------------------------------------
    def replay(self, after: int = -1) -> Iterator[LogRecord]:
        """Yield every record with ``offset > after``, in order."""
        self.close()
        segments = self._segments()
        for index, name in enumerate(segments):
            path = os.path.join(self.directory, name)
            if index + 1 < len(segments):
                next_first = int(
                    segments[index + 1][
                        len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)
                    ]
                )
                if next_first - 1 <= after:
                    # Every offset in this segment is < next_first <= after+1.
                    continue
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    record = _unframe(line.rstrip("\n"))
                    if record.offset > after:
                        yield record

    # -- compaction ----------------------------------------------------
    def compact(self, acked: int) -> int:
        """Delete whole segments fully covered by ``offset <= acked``.

        The current (last) segment is never removed.  Returns the number
        of segments dropped.
        """
        segments = self._segments()
        dropped = 0
        for index, name in enumerate(segments):
            if index == len(segments) - 1:
                break
            next_first = int(
                segments[index + 1][len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
            if next_first - 1 <= acked:
                os.remove(os.path.join(self.directory, name))
                dropped += 1
            else:
                break
        if dropped:
            self.tracer.count("stream.log_segments_compacted", dropped)
        return dropped

    def __repr__(self) -> str:
        return (
            f"DeltaLog({self.directory!r}, next_offset={self.next_offset}, "
            f"last_position={self.last_position})"
        )


class StreamCheckpoint:
    """Atomic JSON checkpoint of the stream's durable progress.

    The payload binds to the pipeline's inputs through ``fingerprint``
    (schema + program + instance OID for registry streams, program +
    inputs for serve streams): resuming against different inputs raises
    rather than splicing incompatible state.  ``state`` is opaque to
    the checkpoint — the sink produces and consumes it via the
    :mod:`repro.ssst.checkpoint` value codec.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT_FILE)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(
        self,
        *,
        fingerprint: str,
        acked_offset: int,
        source_position: int,
        last_seq: Optional[int],
        batches_applied: int,
        state: Dict[str, Any],
    ) -> None:
        payload = {
            "version": _CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "acked_offset": acked_offset,
            "source_position": source_position,
            "last_seq": last_seq,
            "batches_applied": batches_applied,
            "state": state,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self, fingerprint: str) -> Dict[str, Any]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise StreamError(
                f"no stream checkpoint in {self.directory!r}"
            ) from None
        except (OSError, ValueError) as exc:
            raise StreamError(f"unreadable stream checkpoint: {exc}") from exc
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise StreamError(
                f"stream checkpoint version {payload.get('version')!r} "
                f"is not supported"
            )
        if payload.get("fingerprint") != fingerprint:
            raise StreamError(
                "stream checkpoint was written for different inputs "
                "(fingerprint mismatch); refusing to resume"
            )
        return payload

    def __repr__(self) -> str:
        return f"StreamCheckpoint({self.directory!r}, exists={self.exists()})"
