"""Change-feed sources for the streaming ingestion pipeline.

A feed is a sequence of JSON-encoded change records.  Two shapes are
understood, matching the two sink levels of :mod:`repro.stream.sinks`:

Registry-level (the SSST path — plain-graph elements)::

    {"seq": 1, "op": "add_node", "id": "C9", "type": "Business",
     "properties": {"fiscalCode": "FC-C9"}}
    {"seq": 2, "op": "add_edge", "id": "s9", "source": "P1",
     "target": "C9", "type": "OWNS", "properties": {"percentage": 0.4}}
    {"seq": 3, "op": "remove_edge", "id": "s9"}
    {"seq": 4, "op": "remove_node", "id": "C9"}

Fact-level (the serve path — extensional Vadalog facts)::

    {"seq": 5, "op": "assert", "predicate": "own",
     "fact": ["P1", "C2", 0.3]}
    {"seq": 6, "op": "retract", "predicate": "own",
     "fact": ["P1", "C2", 0.3]}

``seq`` is an optional, monotonically increasing producer sequence
number used for duplicate suppression; records without one are applied
as-is.

Sources deliver *raw text* (one record per line), not parsed objects:
the durable :class:`~repro.stream.log.DeltaLog` persists the exact
bytes that arrived, so crash replay re-parses the same input and a torn
record is quarantined identically on first sight and on replay.  Every
source keeps a resumable ``position`` cursor (byte offset for files,
record count for generators).

:class:`FeedFaultInjector` is the feed-level sibling of
:class:`repro.deploy.resilience.FaultInjector`: seeded torn, duplicated
and reordered records for the chaos battery — deterministic chaos, no
flaky I/O races.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import StreamError
from repro.obs.tracer import Tracer

__all__ = [
    "RawRecord",
    "FeedRecord",
    "parse_record",
    "GeneratorFeed",
    "JsonlFeed",
    "FeedFaultInjector",
    "REGISTRY_OPS",
    "FACT_OPS",
]

#: Registry-level operations (plain-graph elements).
REGISTRY_OPS = frozenset({"add_node", "add_edge", "remove_node", "remove_edge"})
#: Fact-level operations (extensional Vadalog facts).
FACT_OPS = frozenset({"assert", "retract"})

_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class RawRecord:
    """One line as read from a source.

    ``position`` is the source cursor *after* this record — seeking a
    fresh source to it skips everything up to and including the record.
    """

    text: str
    position: int


@dataclass(frozen=True)
class FeedRecord:
    """A validated change record.

    ``key`` identifies the entity the record touches — the coalescer
    folds all records sharing a key into one net operation:
    ``("node", id)`` / ``("edge", id)`` for registry records,
    ``("fact", predicate, fact)`` for fact records.
    """

    op: str
    key: Tuple[Any, ...]
    seq: Optional[int]
    payload: Dict[str, Any]
    raw: str

    @property
    def is_addition(self) -> bool:
        return self.op in ("add_node", "add_edge", "assert")


def _require_scalar(value: Any, what: str) -> Any:
    if value is None or isinstance(value, _SCALARS):
        return value
    raise StreamError(f"{what} must be a scalar, got {type(value).__name__}")


def _require_properties(payload: Dict[str, Any]) -> Dict[str, Any]:
    properties = payload.get("properties", {})
    if not isinstance(properties, dict):
        raise StreamError("properties must be an object")
    for name, value in properties.items():
        if not isinstance(name, str):
            raise StreamError("property names must be strings")
        _require_scalar(value, f"property {name!r}")
    return properties


def parse_record(text: str) -> FeedRecord:
    """Parse and validate one feed line.

    Raises :class:`~repro.errors.StreamError` for anything malformed —
    the pipeline quarantines such records instead of wedging.
    """
    try:
        payload = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise StreamError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise StreamError("record must be a JSON object")
    op = payload.get("op")
    if op not in REGISTRY_OPS and op not in FACT_OPS:
        raise StreamError(
            f"unknown op {op!r} (expected one of "
            f"{sorted(REGISTRY_OPS | FACT_OPS)})"
        )
    seq = payload.get("seq")
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
        raise StreamError("seq must be an integer")

    if op in FACT_OPS:
        predicate = payload.get("predicate")
        if not isinstance(predicate, str) or not predicate:
            raise StreamError("fact records need a non-empty predicate")
        fact = payload.get("fact")
        if not isinstance(fact, list) or not fact:
            raise StreamError("fact records need a non-empty fact array")
        for value in fact:
            _require_scalar(value, "fact value")
        key = ("fact", predicate, tuple(fact))
        return FeedRecord(op=op, key=key, seq=seq, payload=payload, raw=text)

    element_id = payload.get("id")
    if element_id is None:
        raise StreamError(f"{op} records need an id")
    _require_scalar(element_id, "id")
    kind = "node" if op.endswith("_node") else "edge"
    if op in ("add_node", "add_edge"):
        type_name = payload.get("type")
        if not isinstance(type_name, str) or not type_name:
            raise StreamError(f"{op} records need a non-empty type")
        _require_properties(payload)
        if op == "add_edge":
            for endpoint in ("source", "target"):
                if payload.get(endpoint) is None:
                    raise StreamError(f"add_edge records need a {endpoint}")
                _require_scalar(payload[endpoint], endpoint)
    return FeedRecord(
        op=op, key=(kind, element_id), seq=seq, payload=payload, raw=text
    )


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class GeneratorFeed:
    """A feed over an in-memory sequence (dicts or pre-encoded lines).

    Dicts are serialized with sorted keys so the same sequence always
    produces the same bytes (the delta-log replay identity depends on
    it).  ``position`` counts records consumed; sources built from a
    list support absolute :meth:`seek`, iterator-backed ones only
    forward seeks.
    """

    def __init__(self, records: Iterable[Any], name: str = "generator"):
        self.name = name
        if isinstance(records, (list, tuple)):
            self._records: Optional[List[Any]] = list(records)
            self._iter = None
        else:
            self._records = None
            self._iter = iter(records)
        self._position = 0
        self._eof = False

    @staticmethod
    def _encode(record: Any) -> str:
        if isinstance(record, str):
            return record
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @property
    def position(self) -> int:
        return self._position

    @property
    def eof(self) -> bool:
        return self._eof

    def seek(self, position: int) -> None:
        if position == self._position:
            return
        if self._records is not None:
            if position < 0 or position > len(self._records):
                raise StreamError(
                    f"cannot seek to {position}: feed has "
                    f"{len(self._records)} records"
                )
            self._position = position
            self._eof = False
            return
        if position < self._position:
            raise StreamError(
                "iterator-backed feeds only seek forward "
                f"({self._position} -> {position})"
            )
        while self._position < position:
            try:
                next(self._iter)
            except StopIteration:
                raise StreamError(
                    f"cannot seek to {position}: feed exhausted at "
                    f"{self._position}"
                ) from None
            self._position += 1

    def poll(self, max_records: int = 256) -> List[RawRecord]:
        out: List[RawRecord] = []
        while len(out) < max_records:
            if self._records is not None:
                if self._position >= len(self._records):
                    self._eof = True
                    break
                record = self._records[self._position]
            else:
                try:
                    record = next(self._iter)
                except StopIteration:
                    self._eof = True
                    break
            self._position += 1
            out.append(RawRecord(self._encode(record), self._position))
        return out


class JsonlFeed:
    """Tail a JSONL file by byte position.

    Only *complete* lines (newline-terminated) are consumed; a trailing
    partial line — a producer writing, or a torn write — stays in the
    file until its newline arrives.  A missing file is an empty feed
    (the producer has not started yet), not an error.  Decoding is
    lenient: undecodable bytes are replaced so the record fails JSON
    parsing and gets quarantined instead of killing the poll loop.
    """

    def __init__(self, path: str, name: Optional[str] = None):
        self.path = str(path)
        self.name = name or os.path.basename(self.path)
        self._position = 0
        self._eof = False

    @property
    def position(self) -> int:
        return self._position

    @property
    def eof(self) -> bool:
        return self._eof

    def seek(self, position: int) -> None:
        if position < 0:
            raise StreamError(f"cannot seek to negative offset {position}")
        self._position = position
        self._eof = False

    def poll(self, max_records: int = 256) -> List[RawRecord]:
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            self._eof = True
            return []
        out: List[RawRecord] = []
        with handle:
            handle.seek(self._position)
            while len(out) < max_records:
                start = handle.tell()
                line = handle.readline()
                if not line.endswith(b"\n"):
                    # Partial tail (or EOF): leave it for the next poll.
                    handle.seek(start)
                    break
                self._position = handle.tell()
                text = line[:-1].decode("utf-8", errors="replace").rstrip("\r")
                if not text.strip():
                    continue  # blank separator lines are not records
                out.append(RawRecord(text, self._position))
            self._eof = handle.readline() == b""
        return out


# ----------------------------------------------------------------------
# Feed-level fault injection
# ----------------------------------------------------------------------
class FeedFaultInjector:
    """Wraps a source and injects seeded feed corruption.

    Three independent per-record fault streams, mirroring what lossy
    transports do to CDC feeds:

    - ``torn_rate``: the record's bytes are truncated mid-way (a torn
      write) — it will fail parsing and be quarantined;
    - ``duplicate_rate``: the record is delivered twice (at-least-once
      transport) — suppressed downstream by ``seq`` dedup;
    - ``reorder_rate``: the record swaps places with its predecessor in
      the same poll (out-of-order delivery).

    Faults apply to *delivery*, not to the source cursor: a duplicate
    shares its original's position, so resume semantics are unchanged.
    The same seed replays the same fault pattern — the chaos battery
    computes its expected final state by replaying the survivor set.
    """

    def __init__(
        self,
        source: Any,
        *,
        seed: int = 0,
        torn_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        tracer: Optional[Tracer] = None,
    ):
        for name, rate in (
            ("torn_rate", torn_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        self.source = source
        self.torn_rate = torn_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.tracer = tracer
        self._rng = random.Random(seed)
        self.torn = 0
        self.duplicated = 0
        self.reordered = 0

    @property
    def name(self) -> str:
        return getattr(self.source, "name", "feed")

    @property
    def position(self) -> int:
        return self.source.position

    @property
    def eof(self) -> bool:
        return self.source.eof

    def seek(self, position: int) -> None:
        self.source.seek(position)

    def arm(self, seed: int) -> None:
        """Re-seed the fault stream (each chaos scenario gets its own)."""
        self._rng = random.Random(seed)

    def _count(self, what: str) -> None:
        if self.tracer is not None:
            self.tracer.count(f"stream.feed_faults.{what}", 1)

    def poll(self, max_records: int = 256) -> List[RawRecord]:
        out: List[RawRecord] = []
        for record in self.source.poll(max_records):
            if self.torn_rate and self._rng.random() < self.torn_rate:
                record = RawRecord(
                    record.text[: max(1, len(record.text) // 2)],
                    record.position,
                )
                self.torn += 1
                self._count("torn")
            out.append(record)
            if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
                out.append(record)
                self.duplicated += 1
                self._count("duplicated")
            if (
                self.reorder_rate
                and len(out) >= 2
                and self._rng.random() < self.reorder_rate
            ):
                out[-1], out[-2] = out[-2], out[-1]
                self.reordered += 1
                self._count("reordered")
        return out
