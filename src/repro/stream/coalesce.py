"""Per-window delta coalescing.

A CDC feed is chatty: a shareholding that changes five times inside one
batch window only needs its *final* value applied; an entity added and
removed in the same window needs nothing at all.  The coalescer folds
every record sharing a key into one net operation before the engine
sees it, so the expensive part of the pipeline — the incremental chase
— runs once per window per entity instead of once per record.

The state machine tracks, per key, whether the entity exists in the
*base* (the sink state before this window) and the *net* pending
operation::

    base_exists  net       add arrives        remove arrives
    -----------  -------   ----------------   ------------------
    no           None      -> ADD             reject/skip (unknown)
    no           ADD       reject/skip (dup)  -> cancelled (None)
    yes          None      reject/skip (dup)  -> REMOVE
    yes          REMOVE    -> REPLACE         reject/skip (dup)
    yes          REPLACE   reject/skip (dup)  -> REMOVE

Registry mode is *strict*: a rejected transition (adding an existing
node, removing an unknown edge) is a constraint violation and the
record is quarantined.  Fact mode is *tolerant*, matching the engine's
own delta semantics (duplicate adds and removals of absent facts are
skipped, not errors): rejected transitions are simply dropped and
counted.

Removing a node also cancels pending edge additions that reference it
(and degrades pending edge REPLACEs to REMOVEs), mirroring the
materializer's endpoint validation — otherwise a window containing
``add_edge(e, n, m); remove_node(n)`` would emit a dangling edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.stream.feed import FeedRecord

__all__ = ["DeltaCoalescer", "CoalescedBatch", "CoalesceStats"]

Key = Tuple[Any, ...]

_ADD = "add"
_REMOVE = "remove"
_REPLACE = "replace"


@dataclass
class _Slot:
    base_exists: bool
    net: Optional[str] = None  # None | "add" | "remove" | "replace"
    payload: Optional[Dict[str, Any]] = None  # latest add payload
    records: int = 0


@dataclass
class CoalesceStats:
    """Accounting for one window (summed into the stream report)."""

    records: int = 0
    operations: int = 0
    cancelled: int = 0
    duplicates: int = 0
    rejected: int = 0

    @property
    def ratio(self) -> float:
        """Net operations per input record (1.0 = nothing folded)."""
        if self.records == 0:
            return 1.0
        return self.operations / self.records


@dataclass
class CoalescedBatch:
    """The net effect of one window, ready for a sink.

    ``operations`` is ordered by first touch of each key, each entry
    ``(net, key, payload)`` where ``net`` is ``"add"``, ``"remove"``,
    or ``"replace"`` and ``payload`` is the latest add payload (None
    for removes).  ``rejections`` carries the quarantinable records of
    a strict-mode window as ``(record, reason)`` pairs.
    """

    operations: List[Tuple[str, Key, Optional[Dict[str, Any]]]]
    stats: CoalesceStats
    rejections: List[Tuple[FeedRecord, str]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.operations


class DeltaCoalescer:
    """Fold a window of feed records into net per-key operations.

    ``exists`` is the sink's membership oracle (does this key exist in
    the base state?); ``strict`` selects registry-mode rejection vs
    fact-mode tolerance.
    """

    def __init__(self, exists, *, strict: bool):
        self._exists = exists
        self.strict = strict
        self._slots: Dict[Key, _Slot] = {}
        self._order: List[Key] = []
        self._stats = CoalesceStats()
        self._rejections: List[Tuple[FeedRecord, str]] = []

    # -- helpers -------------------------------------------------------
    def _slot(self, key: Key) -> _Slot:
        slot = self._slots.get(key)
        if slot is None:
            slot = _Slot(base_exists=bool(self._exists(key)))
            self._slots[key] = slot
            self._order.append(key)
        return slot

    def pending_exists(self, key: Key) -> bool:
        """Will this key exist after the window applies?"""
        slot = self._slots.get(key)
        if slot is None:
            return bool(self._exists(key))
        if slot.net == _ADD or slot.net == _REPLACE:
            return True
        if slot.net == _REMOVE:
            return False
        return slot.base_exists

    def _reject(self, record: FeedRecord, reason: str) -> None:
        if self.strict:
            self._rejections.append((record, reason))
            self._stats.rejected += 1
        else:
            self._stats.duplicates += 1

    # -- ingestion -----------------------------------------------------
    def push(self, record: FeedRecord) -> None:
        key = record.key
        slot = self._slot(key)
        slot.records += 1
        self._stats.records += 1
        if record.is_addition:
            self._push_add(record, slot)
        else:
            self._push_remove(record, key, slot)

    def _push_add(self, record: FeedRecord, slot: _Slot) -> None:
        if slot.net == _ADD or slot.net == _REPLACE:
            self._reject(record, "duplicate addition in window")
            return
        if slot.net is None and slot.base_exists:
            self._reject(record, "already exists")
            return
        if slot.net == _REMOVE:
            slot.net = _REPLACE
        else:
            slot.net = _ADD
        slot.payload = record.payload

    def _push_remove(self, record: FeedRecord, key: Key, slot: _Slot) -> None:
        if slot.net == _REMOVE:
            self._reject(record, "duplicate removal in window")
            return
        if slot.net == _ADD:
            # Added and removed inside one window: net no-op.  The node
            # still ends the window absent, so pending edges referencing
            # it must cancel exactly as for a plain removal.
            slot.net = None
            slot.payload = None
            self._stats.cancelled += 2
            if key[0] == "node":
                self._cascade_node_removal(key[1])
            return
        if slot.net == _REPLACE:
            slot.net = _REMOVE
            slot.payload = None
            if key[0] == "node":
                self._cascade_node_removal(key[1])
            return
        if not slot.base_exists:
            self._reject(record, "does not exist")
            return
        slot.net = _REMOVE
        if key[0] == "node":
            self._cascade_node_removal(key[1])

    def _cascade_node_removal(self, node_id: Any) -> None:
        """Drop pending edge additions that reference a removed node."""
        for edge_key in self._order:
            if edge_key[0] != "edge":
                continue
            slot = self._slots[edge_key]
            if slot.payload is None:
                continue
            if node_id not in (
                slot.payload.get("source"),
                slot.payload.get("target"),
            ):
                continue
            if slot.net == _ADD:
                slot.net = None
                slot.payload = None
                self._stats.cancelled += 1
            elif slot.net == _REPLACE:
                slot.net = _REMOVE
                slot.payload = None

    # -- drain ---------------------------------------------------------
    def drain(self) -> CoalescedBatch:
        """Finalize the window and reset for the next one."""
        operations: List[Tuple[str, Key, Optional[Dict[str, Any]]]] = []
        for key in self._order:
            slot = self._slots[key]
            if slot.net is None:
                continue
            operations.append((slot.net, key, slot.payload))
        self._stats.operations = len(operations)
        batch = CoalescedBatch(
            operations=operations,
            stats=self._stats,
            rejections=self._rejections,
        )
        self._slots = {}
        self._order = []
        self._stats = CoalesceStats()
        self._rejections = []
        return batch
