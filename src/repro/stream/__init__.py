"""Crash-safe streaming ingestion (the CDC delta pipeline).

The knowledge graphs of the source paper are not loaded once — the
underlying registries change continuously, and the KGMS has to absorb
those changes without rebuilding the graph from scratch.  PR 5 added
the incremental chase (:mod:`repro.ssst.incremental`); this package
adds the *transport*: a durable change-data-capture pipeline that
consumes a feed of registry (or fact) deltas and drives the retained
materialization, the serving snapshots, and the deployed target
systems, surviving crashes at any point.

Layers, bottom up:

- :mod:`repro.stream.feed` — change-record parsing and feed sources
  (JSONL file tailing, in-memory generators) plus the feed-level
  fault injector (torn / duplicated / reordered records).
- :mod:`repro.stream.log` — the durable append-only delta log
  (CRC-framed, fsync'd, segment-rotated) and the stream checkpoint.
- :mod:`repro.stream.coalesce` — per-window net-effect coalescing
  (an add and a remove of the same element cancel).
- :mod:`repro.stream.sinks` — where batches land: the incremental
  materializer (with deployed graph/triple/relational targets) or a
  serving :class:`~repro.serve.state.ServeState`.
- :mod:`repro.stream.pipeline` — :class:`DeltaStream`, which ties the
  layers together with backpressure, quarantine, and crash-safe
  resume.
"""

from repro.stream.coalesce import CoalescedBatch, CoalesceStats, DeltaCoalescer
from repro.stream.feed import (
    FeedFaultInjector,
    FeedRecord,
    GeneratorFeed,
    JsonlFeed,
    RawRecord,
    parse_record,
)
from repro.stream.log import DeltaLog, LogRecord, StreamCheckpoint
from repro.stream.pipeline import DeltaStream, StreamReport
from repro.stream.sinks import (
    ApplyResult,
    GraphStoreTarget,
    MaterializerSink,
    RelationalEngineTarget,
    ServeStateSink,
    TripleStoreTarget,
)

__all__ = [
    "ApplyResult",
    "CoalescedBatch",
    "CoalesceStats",
    "DeltaCoalescer",
    "DeltaLog",
    "DeltaStream",
    "FeedFaultInjector",
    "FeedRecord",
    "GeneratorFeed",
    "GraphStoreTarget",
    "JsonlFeed",
    "LogRecord",
    "MaterializerSink",
    "parse_record",
    "RawRecord",
    "RelationalEngineTarget",
    "ServeStateSink",
    "StreamCheckpoint",
    "StreamReport",
    "TripleStoreTarget",
]
