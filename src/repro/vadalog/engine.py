"""Chase-based evaluation engine for the Vadalog substitute.

The engine implements the reasoning semantics of Section 4:

- **Existential rules / restricted chase.** "The chase alters D by adding
  new facts, possibly with fresh labeled nulls for existentially
  quantified variables, until Sigma(D) satisfies all the existential
  rules."  We implement the *restricted* chase: a rule with existential
  head variables fires for a body match only when no extension of the
  match already satisfies the head conjunction, which is what makes warded
  programs terminate in practice.
- **Linker Skolem functors.** Head terms ``#sk(x, y)`` produce interned
  :class:`~repro.vadalog.terms.SkolemValue` objects — injective,
  deterministic, range-disjoint, exactly the Section 4 requirements.
- **Stratified negation** and **aggregation** with monotonic in-stratum
  recomputation (see :mod:`repro.vadalog.aggregates`).
- **Semi-naive evaluation** for pure positive recursive rules, with naive
  recomputation for aggregate rules.

Typical use::

    engine = Engine()
    result = engine.run(program, inputs={"own": [(a, b, 0.6), ...]})
    result.facts("controls")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, VadalogError
from repro.vadalog.aggregates import CANONICAL, GroupAccumulator, is_monotonic
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    Atom,
    BinOp,
    Condition,
    Expression,
    FunctionCall,
    NegatedAtom,
    Program,
    Rule,
    SkolemTerm,
    TermExpr,
)
from repro.vadalog.database import Database, Fact
from repro.vadalog.stratify import Stratum, stratify
from repro.vadalog.terms import (
    NullFactory,
    SkolemFunctor,
    Variable,
    is_variable,
)
from repro.vadalog.warded import check_warded

Substitution = Dict[Variable, Any]

#: Builtin tuple-level functions available in expressions.
BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "upper": lambda s: str(s).upper(),
    "lower": lambda s: str(s).lower(),
    "strlen": lambda s: len(str(s)),
    "abs": abs,
    "round": lambda x, digits=0: round(x, int(digits)),
    "floor": lambda x: int(x) if x >= 0 or x == int(x) else int(x) - 1,
    "ceil": lambda x: int(x) if x == int(x) else (int(x) + 1 if x > 0 else int(x)),
    "mod": lambda a, b: a % b,
    "min2": lambda a, b: min(a, b),
    "max2": lambda a, b: max(a, b),
    "tostring": str,
    "tonumber": float,
}


@dataclass
class EvaluationStats:
    """Counters describing one engine run."""

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0
    nulls_created: int = 0
    elapsed_seconds: float = 0.0
    strata: int = 0


@dataclass
class EvaluationResult:
    """Outcome of :meth:`Engine.run`: the saturated database + statistics."""

    database: Database
    stats: EvaluationStats
    program: Program

    def facts(self, predicate: str) -> Set[Fact]:
        """All facts of ``predicate`` after the chase."""
        return self.database.facts(predicate)

    def outputs(self) -> Dict[str, Set[Fact]]:
        """Facts of each ``@output`` predicate."""
        return {p: self.database.facts(p) for p in self.program.output_predicates()}


class Engine:
    """The chase engine.

    Parameters
    ----------
    max_iterations:
        Fixpoint-iteration cap per stratum (termination guard).
    max_nulls:
        Cap on invented labeled nulls across the whole run.
    check_wardedness:
        When True (default) the program is statically analyzed and a
        :class:`~repro.errors.WardednessError` is raised for non-warded
        programs, mirroring the Vadalog System's admission control.
    """

    def __init__(
        self,
        max_iterations: int = 100_000,
        max_nulls: int = 1_000_000,
        check_wardedness: bool = True,
        semi_naive: bool = True,
    ):
        self.max_iterations = max_iterations
        self.max_nulls = max_nulls
        self.check_wardedness = check_wardedness
        self.semi_naive = semi_naive

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        database: Optional[Database] = None,
        inputs: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
    ) -> EvaluationResult:
        """Saturate ``database`` (copied) with ``program`` and return it."""
        start = time.perf_counter()
        self._validate(program)
        if self.check_wardedness:
            check_warded(program).raise_if_violated()

        db = database.copy() if database is not None else Database()
        if inputs:
            for predicate, facts in inputs.items():
                db.add_all(predicate, facts)

        stats = EvaluationStats()
        nulls = NullFactory()
        skolems: Dict[str, SkolemFunctor] = {}

        # Facts written as empty-body rules.
        rules: List[Rule] = []
        for rule in program.rules:
            if not rule.body:
                for atom in rule.head:
                    if atom.variables():
                        raise VadalogError(f"non-ground fact: {atom}")
                    db.add(atom.predicate, atom.terms)
            else:
                rules.append(rule)

        working = Program(rules=rules, annotations=list(program.annotations))
        strata = stratify(working)
        stats.strata = len(strata)

        for stratum in strata:
            self._evaluate_stratum(stratum, db, stats, nulls, skolems)

        stats.elapsed_seconds = time.perf_counter() - start
        return EvaluationResult(database=db, stats=stats, program=program)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, program: Program) -> None:
        for rule in program.rules:
            if not rule.head:
                raise VadalogError(f"rule with empty head: {rule}")
            if not rule.body:
                continue
            positive = rule.positive_variables()
            reachable = set(positive)
            for assignment in rule.assignments():
                reachable.add(assignment.target)
            for negated in rule.negated_atoms():
                unbound = {
                    v for v in negated.variables()
                    if v not in reachable and v.name != "_"
                }
                if unbound:
                    raise VadalogError(
                        f"unsafe negation in {rule}: variables "
                        f"{sorted(v.name for v in unbound)} not bound positively"
                    )
            aggregates = [a for a in rule.assignments() if a.is_aggregate]
            if len(aggregates) > 1:
                raise VadalogError(
                    f"at most one aggregate assignment per rule: {rule}"
                )

    # ------------------------------------------------------------------
    # Stratum evaluation
    # ------------------------------------------------------------------
    def _evaluate_stratum(
        self,
        stratum: Stratum,
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
    ) -> None:
        if not stratum.recursive:
            delta = self._fire_rules(stratum.rules, db, stats, nulls, skolems, None)
            # A non-recursive stratum still needs a second pass when a rule
            # both reads and writes predicates local to the stratum (this
            # cannot happen by construction, but the invariant is cheap to
            # keep if stratification ever coarsens).
            return

        # Recursive stratum: iterate to fixpoint.
        recursive_predicates = stratum.predicates
        delta: Optional[Dict[str, Set[Fact]]] = None
        for iteration in range(self.max_iterations):
            stats.iterations += 1
            new_delta = self._fire_rules(
                stratum.rules, db, stats, nulls, skolems,
                delta if (self.semi_naive and iteration > 0) else None,
                recursive_predicates=recursive_predicates,
            )
            if not any(new_delta.values()):
                return
            delta = new_delta
        raise EvaluationError(
            f"stratum over {sorted(stratum.predicates)} did not reach a "
            f"fixpoint within {self.max_iterations} iterations"
        )

    def _fire_rules(
        self,
        rules: List[Rule],
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
        delta: Optional[Dict[str, Set[Fact]]],
        recursive_predicates: Optional[Set[str]] = None,
    ) -> Dict[str, Set[Fact]]:
        """Fire every rule once; returns the per-predicate new facts."""
        new_facts: Dict[str, Set[Fact]] = {}
        pending: List[Tuple[str, Fact]] = []
        for rule in rules:
            if rule.has_aggregate():
                matches = self._aggregate_matches(rule, db)
            elif delta is not None and recursive_predicates:
                matches = self._semi_naive_matches(
                    rule, db, delta, recursive_predicates
                )
            else:
                matches = self._match_body(list(rule.body), db, {})
            for substitution in matches:
                stats.rule_firings += 1
                for predicate, fact in self._instantiate_head(
                    rule, substitution, db, stats, nulls, skolems
                ):
                    pending.append((predicate, fact))
        for predicate, fact in pending:
            if db.add(predicate, fact):
                stats.facts_derived += 1
                new_facts.setdefault(predicate, set()).add(fact)
        return new_facts

    def _semi_naive_matches(
        self,
        rule: Rule,
        db: Database,
        delta: Dict[str, Set[Fact]],
        recursive_predicates: Set[str],
    ) -> Iterator[Substitution]:
        """Require at least one recursive body atom to match a delta fact."""
        body = list(rule.body)
        recursive_atom_indexes = [
            i
            for i, literal in enumerate(body)
            if isinstance(literal, Atom) and literal.predicate in recursive_predicates
        ]
        if not recursive_atom_indexes:
            # The rule does not read the stratum's own predicates: firing it
            # once in the first round was enough; nothing new can match.
            return
        seen: Set[Tuple[Tuple[Variable, Any], ...]] = set()
        for delta_index in recursive_atom_indexes:
            atom = body[delta_index]
            delta_facts = delta.get(atom.predicate)
            if not delta_facts:
                continue
            for fact in delta_facts:
                base = self._unify_atom(atom, fact, {})
                if base is None:
                    continue
                rest = body[:delta_index] + body[delta_index + 1:]
                for substitution in self._match_body(rest, db, base):
                    key = tuple(sorted(
                        ((v, _hashable(substitution[v])) for v in substitution),
                        key=lambda item: item[0].name,
                    ))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield substitution

    # ------------------------------------------------------------------
    # Body matching
    # ------------------------------------------------------------------
    def _match_body(
        self,
        literals: List[Any],
        db: Database,
        substitution: Substitution,
    ) -> Iterator[Substitution]:
        """Yield all substitutions satisfying the body conjunction.

        Literals are scheduled greedily: ready assignments and conditions
        run as soon as their variables are bound; otherwise the atom with
        the most bound positions is joined next.
        """
        remaining = list(literals)
        return self._match_rec(remaining, db, dict(substitution))

    def _match_rec(
        self, remaining: List[Any], db: Database, substitution: Substitution
    ) -> Iterator[Substitution]:
        if not remaining:
            yield substitution
            return
        index = self._pick_next(remaining, substitution)
        literal = remaining[index]
        rest = remaining[:index] + remaining[index + 1:]

        if isinstance(literal, Atom):
            relation = db.relation(literal.predicate)
            bound: List[Tuple[int, Any]] = []
            for i, term in enumerate(literal.terms):
                if not is_variable(term):
                    bound.append((i, term))
                elif term.name != "_" and term in substitution:
                    bound.append((i, substitution[term]))
            for fact in list(relation.lookup(bound)):
                extended = self._unify_atom(literal, fact, substitution)
                if extended is not None:
                    yield from self._match_rec(rest, db, extended)
            return

        if isinstance(literal, NegatedAtom):
            if self._atom_has_match(literal.atom, db, substitution):
                return
            yield from self._match_rec(rest, db, substitution)
            return

        if isinstance(literal, Condition):
            if self._check_condition(literal, substitution):
                yield from self._match_rec(rest, db, substitution)
            return

        if isinstance(literal, Assignment):
            value = self._evaluate(literal.expression, substitution)
            current = substitution.get(literal.target)
            if literal.target in substitution:
                if _values_equal(current, value):
                    yield from self._match_rec(rest, db, substitution)
                return
            extended = dict(substitution)
            extended[literal.target] = value
            yield from self._match_rec(rest, db, extended)
            return

        raise EvaluationError(f"unsupported body literal: {literal!r}")

    def _pick_next(self, remaining: List[Any], substitution: Substitution) -> int:
        """Greedy scheduling: ready non-atoms first, then best-bound atom."""
        best_atom = None
        best_score = -1
        for i, literal in enumerate(remaining):
            if isinstance(literal, Assignment):
                needed = literal.expression.variables()
                if all(v in substitution for v in needed):
                    return i
            elif isinstance(literal, Condition):
                if all(v in substitution for v in literal.variables()):
                    return i
            elif isinstance(literal, NegatedAtom):
                if all(
                    v in substitution or v.name == "_"
                    for v in literal.variables()
                ):
                    return i
            elif isinstance(literal, Atom):
                score = sum(
                    1
                    for term in literal.terms
                    if not is_variable(term) or term in substitution
                )
                if score > best_score:
                    best_score = score
                    best_atom = i
        if best_atom is not None:
            return best_atom
        # Nothing ready: fall back to the first literal; matching will fail
        # with a clear error if variables stay unbound.
        return 0

    def _unify_atom(
        self, atom: Atom, fact: Fact, substitution: Substitution
    ) -> Optional[Substitution]:
        if len(fact) != len(atom.terms):
            return None
        extended = dict(substitution)
        for term, value in zip(atom.terms, fact):
            if is_variable(term):
                if term.name == "_":
                    continue
                current = extended.get(term, _UNBOUND)
                if current is _UNBOUND:
                    extended[term] = value
                elif not _values_equal(current, value):
                    return None
            elif not _values_equal(term, value):
                return None
        return extended

    def _atom_has_match(
        self, atom: Atom, db: Database, substitution: Substitution
    ) -> bool:
        relation = db.relation(atom.predicate)
        bound: List[Tuple[int, Any]] = []
        for i, term in enumerate(atom.terms):
            if not is_variable(term):
                bound.append((i, term))
            elif term.name != "_" and term in substitution:
                bound.append((i, substitution[term]))
        for fact in relation.lookup(bound):
            if self._unify_atom(atom, fact, substitution) is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _aggregate_matches(self, rule: Rule, db: Database) -> Iterator[Substitution]:
        aggregate_assignment = next(a for a in rule.assignments() if a.is_aggregate)
        call = _find_aggregate(aggregate_assignment.expression)
        target = aggregate_assignment.target

        pre: List[Any] = []
        post: List[Condition] = []
        for literal in rule.body:
            if literal is aggregate_assignment:
                continue
            if isinstance(literal, Condition) and target in literal.variables():
                post.append(literal)
            elif isinstance(literal, Assignment) and target in literal.expression.variables():
                raise EvaluationError(
                    f"assignment depending on aggregate target in {rule}"
                )
            else:
                pre.append(literal)

        group_vars = sorted(
            (v for v in rule.head_variables()
             if v != target and v.name != "_" and v not in rule.existential_variables()),
            key=lambda v: v.name,
        )
        accumulator = GroupAccumulator(call.function)
        # Remember one full substitution per group so non-head variables
        # used by Skolem terms keep a witness binding.
        witnesses: Dict[Tuple[Any, ...], Substitution] = {}
        for substitution in self._match_body(pre, db, {}):
            group = tuple(
                _hashable(substitution.get(v)) for v in group_vars
            )
            if call.contributors:
                contributor = tuple(
                    _hashable(substitution.get(v)) for v in call.contributors
                )
            else:
                contributor = tuple(
                    sorted(
                        ((v.name, _hashable(val)) for v, val in substitution.items()),
                        key=lambda item: item[0],
                    )
                )
            value = self._evaluate(call.value, substitution)
            accumulator.contribute(group, contributor, value)
            witnesses.setdefault(group, substitution)

        for group, value in accumulator.results():
            base = dict(witnesses[group])
            substitution = {v: base[v] for v in group_vars if v in base}
            # Evaluate the full assignment expression with the aggregate
            # replaced by its computed value (supports e.g. V = msum(W,<Z>)
            # wrapped in arithmetic).
            substitution[target] = self._evaluate(
                aggregate_assignment.expression, base, aggregate_value=value
            )
            if all(self._check_condition(c, substitution) for c in post):
                yield substitution

    # ------------------------------------------------------------------
    # Head instantiation (the chase step)
    # ------------------------------------------------------------------
    def _instantiate_head(
        self,
        rule: Rule,
        substitution: Substitution,
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
    ) -> Iterator[Tuple[str, Fact]]:
        existential = {
            v for v in rule.existential_variables() if v not in substitution
        }
        # Resolve Skolem terms first: they are deterministic, so they never
        # trigger the restricted-chase check.
        resolved_heads: List[Tuple[str, List[Any]]] = []
        for atom in rule.head:
            terms: List[Any] = []
            for term in atom.terms:
                if isinstance(term, SkolemTerm):
                    functor = skolems.get(term.functor)
                    if functor is None:
                        functor = SkolemFunctor(term.functor)
                        skolems[term.functor] = functor
                    arguments = []
                    for argument in term.arguments:
                        if is_variable(argument):
                            if argument not in substitution:
                                raise EvaluationError(
                                    f"Skolem argument {argument!r} unbound in {rule}"
                                )
                            arguments.append(substitution[argument])
                        else:
                            arguments.append(argument)
                    terms.append(functor(*arguments))
                elif is_variable(term):
                    if term in substitution:
                        terms.append(substitution[term])
                    else:
                        terms.append(term)  # existential, resolved below
                else:
                    terms.append(term)
            resolved_heads.append((atom.predicate, terms))

        remaining_existential = {
            term
            for _, terms in resolved_heads
            for term in terms
            if is_variable(term)
        }
        if remaining_existential:
            # Restricted chase: skip when the head conjunction is already
            # satisfied by some assignment of the existential variables.
            if self._head_satisfied(resolved_heads, db):
                return
            if stats.nulls_created + len(remaining_existential) > self.max_nulls:
                raise EvaluationError(
                    f"null budget exceeded ({self.max_nulls}); the program "
                    "likely falls outside the terminating fragment"
                )
            assignment = {
                variable: nulls.fresh(variable.name)
                for variable in remaining_existential
            }
            stats.nulls_created += len(assignment)
            for predicate, terms in resolved_heads:
                yield predicate, tuple(
                    assignment.get(t, t) if is_variable(t) else t for t in terms
                )
            return

        for predicate, terms in resolved_heads:
            yield predicate, tuple(terms)

    def _head_satisfied(
        self, resolved_heads: List[Tuple[str, List[Any]]], db: Database
    ) -> bool:
        """Conjunctive-match check used by the restricted chase."""
        atoms = [
            Atom(predicate, tuple(terms)) for predicate, terms in resolved_heads
        ]
        for _ in self._match_body(list(atoms), db, {}):
            return True
        return False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        expression: Expression,
        substitution: Substitution,
        aggregate_value: Any = None,
    ) -> Any:
        if isinstance(expression, AggregateCall):
            if aggregate_value is None:
                raise EvaluationError(
                    "aggregate call evaluated outside aggregate context"
                )
            return aggregate_value
        if isinstance(expression, TermExpr):
            term = expression.term
            if is_variable(term):
                if term not in substitution:
                    raise EvaluationError(f"unbound variable {term!r} in expression")
                return substitution[term]
            return term
        if isinstance(expression, BinOp):
            left = self._evaluate(expression.left, substitution, aggregate_value)
            right = self._evaluate(expression.right, substitution, aggregate_value)
            return _apply_binop(expression.op, left, right)
        if isinstance(expression, FunctionCall):
            function = BUILTIN_FUNCTIONS.get(expression.name)
            if function is None:
                raise EvaluationError(f"unknown function {expression.name!r}")
            arguments = [
                self._evaluate(a, substitution, aggregate_value)
                for a in expression.arguments
            ]
            return function(*arguments)
        raise EvaluationError(f"unsupported expression {expression!r}")

    def _check_condition(self, condition: Condition, substitution: Substitution) -> bool:
        left = self._evaluate(condition.left, substitution)
        right = self._evaluate(condition.right, substitution)
        op = condition.op
        if op == "==":
            return _values_equal(left, right)
        if op == "!=":
            return not _values_equal(left, right)
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise EvaluationError(f"unknown comparison operator {op!r}")


_UNBOUND = object()
_UNSET = object()


def _values_equal(a: Any, b: Any) -> bool:
    """Equality that never mixes bool with 0/1 and tolerates numeric types."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or (isinstance(a, bool) and isinstance(b, bool) and a == b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    return a == b


def _apply_binop(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return str(left) + str(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
    except (TypeError, ZeroDivisionError) as exc:
        raise EvaluationError(f"arithmetic error: {left!r} {op} {right!r}: {exc}")
    raise EvaluationError(f"unknown operator {op!r}")


def _hashable(value: Any) -> Any:
    """Make lists/dicts usable in group keys (rare, but defensive)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def _find_aggregate(expression: Expression) -> AggregateCall:
    if isinstance(expression, AggregateCall):
        return expression
    if isinstance(expression, BinOp):
        for side in (expression.left, expression.right):
            try:
                return _find_aggregate(side)
            except EvaluationError:
                continue
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            try:
                return _find_aggregate(argument)
            except EvaluationError:
                continue
    raise EvaluationError("no aggregate call found in expression")
