"""Chase-based evaluation engine for the Vadalog substitute.

The engine implements the reasoning semantics of Section 4:

- **Existential rules / restricted chase.** "The chase alters D by adding
  new facts, possibly with fresh labeled nulls for existentially
  quantified variables, until Sigma(D) satisfies all the existential
  rules."  We implement the *restricted* chase: a rule with existential
  head variables fires for a body match only when no extension of the
  match already satisfies the head conjunction, which is what makes warded
  programs terminate in practice.
- **Linker Skolem functors.** Head terms ``#sk(x, y)`` produce interned
  :class:`~repro.vadalog.terms.SkolemValue` objects — injective,
  deterministic, range-disjoint, exactly the Section 4 requirements.
- **Stratified negation** and **aggregation** with monotonic in-stratum
  recomputation (see :mod:`repro.vadalog.aggregates`).
- **Semi-naive evaluation** for pure positive recursive rules, with naive
  recomputation for aggregate rules.

Rule bodies are evaluated through compiled join plans
(:mod:`repro.vadalog.plan`): the join order, index probes, and binding
slots are computed once per rule and cached on the engine, and the
executor backtracks over one mutable substitution instead of copying
dicts per candidate.  ``Engine(use_plans=False)`` selects the original
interpreted matcher — kept as the differential-testing oracle and the
ablation baseline.

Typical use::

    engine = Engine()
    result = engine.run(program, inputs={"own": [(a, b, 0.6), ...]})
    result.facts("controls")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, ResourceLimitError, VadalogError
from repro.obs.governor import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_FIXPOINT,
    BudgetExceeded,
    ResourceGovernor,
)
from repro.obs.tracer import Tracer
from repro.vadalog.aggregates import CANONICAL, GroupAccumulator, is_monotonic
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    Atom,
    BinOp,
    Condition,
    Expression,
    FunctionCall,
    NegatedAtom,
    Program,
    Rule,
    SkolemTerm,
    TermExpr,
)
from repro.vadalog.database import Database, Fact
from repro.vadalog.plan import (
    BUILTIN_FUNCTIONS,
    RulePlans,
    apply_binop as _apply_binop,
    check_condition as _plan_check_condition,
    evaluate_expression as _plan_evaluate,
    execute_plan,
    execute_plan_batch,
    find_aggregate as _find_aggregate,
    vectorized_body_substitutions,
    vectorized_rule_matches,
    values_equal as _values_equal,
)
from repro.vadalog.stratify import Stratum, stratify
from repro.vadalog.terms import (
    NullFactory,
    SkolemFunctor,
    Variable,
    is_variable,
)
from repro.vadalog.warded import check_warded

Substitution = Dict[Variable, Any]


@dataclass
class EvaluationStats:
    """Counters describing one engine run."""

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0
    nulls_created: int = 0
    elapsed_seconds: float = 0.0
    strata: int = 0
    plans_compiled: int = 0


class _BudgetStop(Exception):
    """Internal: a graceful governor cutoff; never escapes ``Engine.run``."""

    def __init__(self, violation: BudgetExceeded):
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class EvaluationResult:
    """Outcome of :meth:`Engine.run`: the saturated database + statistics.

    ``status`` is :data:`~repro.obs.governor.STATUS_FIXPOINT` when the
    chase saturated, or :data:`~repro.obs.governor.STATUS_BUDGET_EXCEEDED`
    when a graceful :class:`~repro.obs.governor.ResourceGovernor` cut the
    run short — then ``violation`` says which budget tripped and the
    database holds every fact derived up to the cutoff.

    **Snapshot semantics.** :meth:`facts`, :meth:`outputs` and
    :meth:`per_stratum_facts` return snapshots that later engine activity
    cannot mutate.  ``database`` itself, by contrast, is a *live* view:
    when the result was produced with ``retain_state=True`` it is the very
    database that :meth:`Engine.apply_delta` updates in place.  Callers
    that need a stable copy of the whole database should call
    ``result.database.copy()`` (or use the snapshot methods).
    """

    database: Database
    stats: EvaluationStats
    program: Program
    status: str = STATUS_FIXPOINT
    violation: Optional[BudgetExceeded] = None
    #: Retained evaluation state (``run(retain_state=True)`` only); the
    #: handle :meth:`Engine.apply_delta` propagates incremental updates
    #: through.  ``None`` for ordinary runs and for truncated runs, whose
    #: partial per-stratum partitions would be unsound to update.
    state: Optional[Any] = None

    @property
    def truncated(self) -> bool:
        """True when the result is partial (a budget stopped the chase)."""
        return self.status == STATUS_BUDGET_EXCEEDED

    def facts(self, predicate: str) -> Set[Fact]:
        """A snapshot set of the facts of ``predicate`` after the chase."""
        return self.database.facts(predicate)

    def outputs(self) -> Dict[str, Set[Fact]]:
        """Facts of each ``@output`` predicate."""
        return {p: self.database.facts(p) for p in self.program.output_predicates()}

    def per_stratum_facts(self) -> Dict[int, Dict[str, FrozenSet[Fact]]]:
        """Stable per-stratum snapshot of the database.

        Returns ``{stratum index: {predicate: frozenset of facts}}`` where
        stratum indexes follow the stratification of ``program`` and the
        key ``-1`` collects predicates no stratum owns (extensional-only
        relations).  Every set is frozen at call time, so the snapshot is
        immune to later ``apply_delta`` activity — this is the supported
        way to observe the engine's stratum partition, replacing any need
        to reach into engine internals.
        """
        if self.state is not None:
            return self.state.per_stratum_snapshot()
        rules = [rule for rule in self.program.rules if rule.body]
        working = Program(rules=rules, annotations=list(self.program.annotations))
        snapshot: Dict[int, Dict[str, FrozenSet[Fact]]] = {}
        owned: Set[str] = set()
        for index, stratum in enumerate(stratify(working)):
            snapshot[index] = {
                predicate: frozenset(self.database.relation(predicate))
                for predicate in sorted(stratum.predicates)
            }
            owned |= stratum.predicates
        snapshot[-1] = {
            predicate: frozenset(self.database.relation(predicate))
            for predicate in self.database.predicates()
            if predicate not in owned
        }
        return snapshot


class Engine:
    """The chase engine.

    Parameters
    ----------
    max_iterations:
        Fixpoint-iteration cap per stratum (termination guard).
    max_nulls:
        Cap on invented labeled nulls across the whole run.
    check_wardedness:
        When True (default) the program is statically analyzed and a
        :class:`~repro.errors.WardednessError` is raised for non-warded
        programs, mirroring the Vadalog System's admission control.
    use_plans:
        When True (default) rule bodies run through compiled join plans
        (:mod:`repro.vadalog.plan`), cached across runs of this engine.
        When False the original interpreted matcher is used — the
        differential-testing oracle and ablation baseline.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When set, every run
        emits a root span, one span per stratum, one span per rule
        invocation (with firing counts and join-probe statistics), and
        derivation/dedup/null counters.  ``None`` (default) skips all
        instrumentation on the hot path.
    governor:
        Optional :class:`~repro.obs.governor.ResourceGovernor`.  In
        graceful mode a tripped budget ends the run early with a partial
        database and ``status == "budget_exceeded"``; in strict mode it
        raises :class:`~repro.errors.ResourceLimitError`.
    workers:
        Default worker count for :meth:`run`.  ``None`` or ``1`` keeps
        the serial chase; ``N > 1`` routes parallel-safe strata through
        :class:`~repro.vadalog.parallel.ParallelChase` (outputs stay
        bit-identical to the serial engine).  Requires ``use_plans``.
    parallel_backend:
        Force the parallel backend (``"process"``, ``"thread"`` or
        ``"serial"``); ``None`` auto-selects.
    """

    def __init__(
        self,
        max_iterations: int = 100_000,
        max_nulls: int = 1_000_000,
        check_wardedness: bool = True,
        semi_naive: bool = True,
        use_plans: bool = True,
        tracer: Optional[Tracer] = None,
        governor: Optional[ResourceGovernor] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        columnar: bool = True,
    ):
        self.max_iterations = max_iterations
        self.max_nulls = max_nulls
        self.check_wardedness = check_wardedness
        self.semi_naive = semi_naive
        self.use_plans = use_plans
        self.tracer = tracer
        self.governor = governor
        self.workers = workers
        self.parallel_backend = parallel_backend
        # Columnar (dictionary-encoded) fact storage with batch-at-a-time
        # plan execution; ``columnar=False`` keeps the original tuple-set
        # backend and tuple-at-a-time executor as a differential oracle.
        self.columnar = columnar
        # Rule -> RulePlans; rules are frozen dataclasses, so structurally
        # equal rules (across programs) share one compiled plan bundle.
        self._plan_cache: Dict[Any, RulePlans] = {}
        # Transient sinks, set only while a retaining run (or an
        # incremental boundary recompute) is in flight; None keeps the
        # default hot path branchless beyond one cheap comparison.
        self._retain_sink: Optional[Any] = None
        self._support_sink: Optional[Any] = None
        self._support_templates: Dict[Any, Optional[Tuple[Any, ...]]] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        database: Optional[Database] = None,
        inputs: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
        workers: Optional[int] = None,
        retain_state: bool = False,
        track_support: bool = False,
        copy_database: bool = True,
    ) -> EvaluationResult:
        """Saturate ``database`` (copied) with ``program`` and return it.

        ``copy_database=False`` evaluates in place, mutating the caller's
        ``database`` — for pipeline stages that own their staging database
        and would otherwise pay a full-extension copy per phase.  A
        backend mismatch still converts (the conversion is itself a fresh
        database).

        ``workers`` overrides the engine-level default for this run; any
        value above 1 evaluates parallel-safe strata with partitioned
        fan-out (see :mod:`repro.vadalog.parallel`).

        ``retain_state`` keeps the evaluation state — per-stratum fact
        partitions, the extensional snapshot, saturated aggregate
        accumulators, null/Skolem factories — on ``result.state`` so
        :meth:`apply_delta` can propagate later insertions and deletions
        without re-running the chase.  Retention forces the serial chase
        (parallel replicas do not share the retained accumulators).
        ``track_support`` additionally records bounded support sets per
        derived fact, letting the delete/re-derive pass walk recorded
        supports instead of re-joining; it implies ``retain_state``.
        """
        start = time.perf_counter()
        tracer = self.tracer
        governor = self.governor
        self._validate(program)
        if self.check_wardedness:
            check_warded(program).raise_if_violated()

        retain_state = retain_state or track_support
        if database is None:
            db = Database(columnar=self.columnar)
        elif database.columnar != self.columnar:
            db = database.to_backend(self.columnar)
        elif copy_database:
            db = database.copy()
        else:
            db = database
        if inputs:
            for predicate, facts in inputs.items():
                db.add_all(predicate, facts)

        stats = EvaluationStats()
        nulls = NullFactory()
        skolems: Dict[str, SkolemFunctor] = {}

        # Facts written as empty-body rules.
        rules: List[Rule] = []
        for rule in program.rules:
            if not rule.body:
                for atom in rule.head:
                    if atom.variables():
                        raise VadalogError(f"non-ground fact: {atom}")
                    db.add(atom.predicate, atom.terms)
            else:
                rules.append(rule)

        working = Program(rules=rules, annotations=list(program.annotations))
        strata = stratify(working)
        stats.strata = len(strata)

        state = None
        if retain_state:
            from repro.vadalog.incremental import MaterializedState, SupportIndex

            state = MaterializedState(
                program=program,
                working=working,
                strata=strata,
                database=db,
                nulls=nulls,
                skolems=skolems,
            )
            state.edb = {
                predicate: set(db.relation(predicate))
                for predicate in db.predicates()
            }
            if track_support:
                state.support = SupportIndex()

        effective_workers = self.workers if workers is None else workers
        if state is not None:
            effective_workers = None
        parallel = None
        if effective_workers is not None and effective_workers > 1 and self.use_plans:
            from repro.vadalog.parallel import ParallelChase

            parallel = ParallelChase(
                self, effective_workers, backend=self.parallel_backend
            )

        if governor is not None:
            governor.begin()
        status = STATUS_FIXPOINT
        violation: Optional[BudgetExceeded] = None
        root = (
            tracer.span(
                "engine.run",
                rules=len(program.rules),
                strata=len(strata),
                workers=effective_workers or 1,
            )
            if tracer is not None
            else None
        )
        try:
            if state is not None:
                self._retain_sink = state
                self._support_sink = state.support
            for index, stratum in enumerate(strata):
                if parallel is not None:
                    parallel.evaluate_stratum(stratum, index, db, stats, nulls, skolems)
                else:
                    self._evaluate_stratum(stratum, index, db, stats, nulls, skolems)
                if state is not None:
                    state.per_stratum.append({
                        predicate: frozenset(db.relation(predicate))
                        for predicate in sorted(stratum.predicates)
                    })
                if (
                    governor is not None
                    and governor.max_resident_facts is not None
                    and state is None
                    and db.columnar
                ):
                    # Stratum boundaries are safe points: no in-flight
                    # index iteration, so tombstones can be reclaimed and
                    # relations the remaining strata never read can move
                    # to cold column pages.
                    needed: Set[str] = set()
                    for later in strata[index + 1:]:
                        needed |= later.predicates
                        for later_rule in later.rules:
                            needed |= later_rule.body_predicates()
                    db.compact()
                    spilled = db.spill_over_budget(
                        governor.max_resident_facts, keep=needed
                    )
                    if spilled and tracer is not None:
                        tracer.event(
                            "engine.spilled",
                            relations=sorted(spilled),
                            resident=db.total_resident_facts(),
                        )
        except _BudgetStop as stop:
            status = STATUS_BUDGET_EXCEEDED
            violation = stop.violation
            # A truncated run retains nothing: the partial per-stratum
            # partitions would be unsound to update incrementally.
            state = None
            if tracer is not None:
                tracer.event(
                    "engine.budget_exceeded",
                    resource=stop.violation.resource,
                    detail=str(stop.violation),
                )
        finally:
            self._retain_sink = None
            self._support_sink = None
            if parallel is not None:
                parallel.close()
            stats.elapsed_seconds = time.perf_counter() - start
            if root is not None:
                root.set(
                    status=status,
                    iterations=stats.iterations,
                    rule_firings=stats.rule_firings,
                    facts_derived=stats.facts_derived,
                    nulls_created=stats.nulls_created,
                )
                root.__exit__(None, None, None)
        result = EvaluationResult(
            database=db,
            stats=stats,
            program=program,
            status=status,
            violation=violation,
            state=state,
        )
        if state is not None:
            state.engine = self
        return result

    # ------------------------------------------------------------------
    def apply_delta(
        self,
        result: Any,
        added: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
        removed: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
    ) -> "Any":
        """Propagate extensional insertions/deletions through a retained run.

        ``result`` is an :class:`EvaluationResult` produced with
        ``retain_state=True`` (or its ``.state`` directly).  Returns a
        :class:`~repro.vadalog.incremental.DeltaResult` describing every
        per-predicate change; the retained database is updated in place.
        See :mod:`repro.vadalog.incremental` for the maintenance strategy
        (semi-naive insertion deltas, DRed deletion, per-stratum safety
        fallbacks).
        """
        from repro.vadalog.incremental import apply_delta

        return apply_delta(self, result, added=added, removed=removed)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, program: Program) -> None:
        for rule in program.rules:
            if not rule.head:
                raise VadalogError(f"rule with empty head: {rule}")
            if not rule.body:
                continue
            positive = rule.positive_variables()
            reachable = set(positive)
            for assignment in rule.assignments():
                reachable.add(assignment.target)
            for negated in rule.negated_atoms():
                unbound = {
                    v for v in negated.variables()
                    if v not in reachable and v.name != "_"
                }
                if unbound:
                    raise VadalogError(
                        f"unsafe negation in {rule}: variables "
                        f"{sorted(v.name for v in unbound)} not bound positively"
                    )
            aggregates = [a for a in rule.assignments() if a.is_aggregate]
            if len(aggregates) > 1:
                raise VadalogError(
                    f"at most one aggregate assignment per rule: {rule}"
                )

    # ------------------------------------------------------------------
    # Stratum evaluation
    # ------------------------------------------------------------------
    def _evaluate_stratum(
        self,
        stratum: Stratum,
        index: int,
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
    ) -> None:
        tracer = self.tracer
        governor = self.governor
        span = (
            tracer.span(
                "engine.stratum",
                index=index,
                recursive=stratum.recursive,
                predicates=sorted(stratum.predicates),
            )
            if tracer is not None
            else None
        )
        iterations = 0
        try:
            if not stratum.recursive:
                self._fire_rules(stratum.rules, db, stats, nulls, skolems, None)
                # A non-recursive stratum still needs a second pass when a
                # rule both reads and writes predicates local to the stratum
                # (this cannot happen by construction, but the invariant is
                # cheap to keep if stratification ever coarsens).
                if governor is not None:
                    violation = governor.check(stats)
                    if violation is not None:
                        self._trip(violation, stats)
                return

            # Recursive stratum: iterate to fixpoint.
            recursive_predicates = stratum.predicates
            delta: Optional[Dict[str, Set[Fact]]] = None
            for iteration in range(self.max_iterations):
                stats.iterations += 1
                iterations = iteration + 1
                new_delta = self._fire_rules(
                    stratum.rules, db, stats, nulls, skolems,
                    delta if (self.semi_naive and iteration > 0) else None,
                    recursive_predicates=recursive_predicates,
                )
                if not any(new_delta.values()):
                    return
                delta = new_delta
                if governor is not None:
                    violation = governor.check(stats)
                    if violation is None and (
                        governor.max_stratum_iterations is not None
                        and iterations >= governor.max_stratum_iterations
                    ):
                        # More work remains but the next iteration would
                        # bust the cap: stop now, cleanly.
                        violation = BudgetExceeded(
                            "iterations",
                            governor.max_stratum_iterations,
                            iterations,
                            f"stratum {index}",
                        )
                    if violation is not None:
                        self._trip(violation, stats)
            raise ResourceLimitError(
                f"stratum over {sorted(stratum.predicates)} did not reach a "
                f"fixpoint within {self.max_iterations} iterations",
                resource="iterations",
                limit=self.max_iterations,
                stats=stats,
            )
        finally:
            if span is not None:
                span.set(iterations=iterations)
                span.__exit__(None, None, None)

    def _trip(self, violation: BudgetExceeded, stats: EvaluationStats) -> None:
        """Stop the run on a governor violation (graceful or strict)."""
        if self.governor is not None and self.governor.graceful:
            raise _BudgetStop(violation)
        raise ResourceLimitError(
            str(violation),
            resource=violation.resource,
            limit=violation.limit,
            stats=stats,
        )

    def _fire_rules(
        self,
        rules: List[Rule],
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
        delta: Optional[Dict[str, Set[Fact]]],
        recursive_predicates: Optional[Set[str]] = None,
    ) -> Dict[str, Set[Fact]]:
        """Fire every rule once; returns the per-predicate new facts."""
        tracer = self.tracer
        governor = self.governor
        new_facts: Dict[str, Set[Fact]] = {}
        pending: List[Tuple[str, Fact]] = []
        for rule_index, rule in enumerate(rules):
            span = None
            probe: Optional[Dict[Tuple[int, str], List[int]]] = None
            before_firings = stats.rule_firings
            before_pending = len(pending)
            before_nulls = stats.nulls_created
            if tracer is not None:
                span = tracer.span(
                    "engine.rule",
                    label=rule.label or f"r{rule_index}",
                    rule=str(rule),
                )
                probe = {}
            try:
                plans: Optional[RulePlans] = None
                if self.use_plans:
                    plans = self._plans_for(rule, stats)
                in_recursion = bool(
                    recursive_predicates
                    and rule.body_predicates() & recursive_predicates
                )
                recorder = (
                    self._support_template(rule)
                    if self._support_sink is not None
                    else None
                )
                if plans is not None:
                    if plans.is_aggregate:
                        matches = self._aggregate_matches_plan(
                            plans, db, probe, recursive=in_recursion
                        )
                    elif delta is not None and recursive_predicates:
                        matches = self._semi_naive_matches_plan(
                            plans, db, delta, recursive_predicates, probe
                        )
                    elif db.columnar:
                        # Full evaluation of a simple rule: try the
                        # whole-plan vectorized join first.  Probe
                        # recording and support tracking need per-match
                        # substitutions, so they stay on the batch path.
                        vectorized = None
                        if probe is None and recorder is None:
                            vectorized = vectorized_rule_matches(plans, db)
                        if vectorized is not None:
                            firings, head_facts = vectorized
                            stats.rule_firings += firings
                            pending.extend(head_facts)
                            matches = ()
                        else:
                            # Complex heads (Skolems, existentials) need
                            # per-match work, but the join itself can
                            # still run vectorized.
                            matches = None
                            if probe is None:
                                matches = vectorized_body_substitutions(
                                    plans.body_plan(), db
                                )
                            if matches is None:
                                matches = execute_plan_batch(
                                    plans.body_plan(), db, probe=probe
                                )
                    else:
                        matches = execute_plan(plans.body_plan(), db, probe=probe)
                    if recorder is None:
                        for substitution in matches:
                            stats.rule_firings += 1
                            for predicate, fact in plans.instantiate_head(
                                substitution, db, stats, nulls, skolems, self.max_nulls
                            ):
                                pending.append((predicate, fact))
                    else:
                        for substitution in matches:
                            stats.rule_firings += 1
                            start = len(pending)
                            for predicate, fact in plans.instantiate_head(
                                substitution, db, stats, nulls, skolems, self.max_nulls
                            ):
                                pending.append((predicate, fact))
                            self._record_supports(
                                recorder, substitution, pending, start
                            )
                else:
                    if rule.has_aggregate():
                        matches = self._aggregate_matches(
                            rule, db, recursive=in_recursion
                        )
                    elif delta is not None and recursive_predicates:
                        matches = self._semi_naive_matches(
                            rule, db, delta, recursive_predicates
                        )
                    else:
                        matches = self._match_body(list(rule.body), db, {})
                    if recorder is None:
                        for substitution in matches:
                            stats.rule_firings += 1
                            for predicate, fact in self._instantiate_head(
                                rule, substitution, db, stats, nulls, skolems
                            ):
                                pending.append((predicate, fact))
                    else:
                        for substitution in matches:
                            stats.rule_firings += 1
                            start = len(pending)
                            for predicate, fact in self._instantiate_head(
                                rule, substitution, db, stats, nulls, skolems
                            ):
                                pending.append((predicate, fact))
                            self._record_supports(
                                recorder, substitution, pending, start
                            )
            finally:
                if span is not None:
                    firings = stats.rule_firings - before_firings
                    produced = len(pending) - before_pending
                    invented = stats.nulls_created - before_nulls
                    span.set(firings=firings, produced=produced, nulls=invented)
                    if probe:
                        span.set(probe={
                            f"{predicate}@{position}": {
                                "candidates": counters[0],
                                "matches": counters[1],
                            }
                            for (position, predicate), counters in sorted(
                                probe.items()
                            )
                        })
                        tracer.count(
                            "plan.candidates_scanned",
                            sum(c[0] for c in probe.values()),
                        )
                        tracer.count(
                            "plan.facts_matched",
                            sum(c[1] for c in probe.values()),
                        )
                    tracer.count("engine.rule_firings", firings)
                    if invented:
                        tracer.count("engine.nulls_created", invented)
                    span.__exit__(None, None, None)
            if governor is not None:
                violation = governor.check_time() or governor.check_nulls(
                    stats.nulls_created
                )
                if violation is not None:
                    # Keep the work done so far: commit before stopping.
                    self._commit_pending(pending, db, stats, new_facts)
                    self._trip(violation, stats)
        self._commit_pending(pending, db, stats, new_facts)
        return new_facts

    def _commit_pending(
        self,
        pending: List[Tuple[str, Fact]],
        db: Database,
        stats: EvaluationStats,
        new_facts: Dict[str, Set[Fact]],
    ) -> None:
        """Deduplicating insert of the derived facts into the database."""
        added = 0
        if db.columnar and len(pending) >= 256:
            # Bulk path: group by predicate (facts of different
            # predicates dedup independently, so grouping preserves
            # sequential-add semantics) and insert each group in one
            # vectorized call.
            grouped: Dict[str, List[Fact]] = {}
            for predicate, fact in pending:
                bucket = grouped.get(predicate)
                if bucket is None:
                    grouped[predicate] = [fact]
                else:
                    bucket.append(fact)
            for predicate, facts in grouped.items():
                new = db.add_all_report(predicate, facts)
                if new:
                    added += len(new)
                    new_facts.setdefault(predicate, set()).update(new)
        else:
            for predicate, fact in pending:
                if db.add(predicate, fact):
                    added += 1
                    new_facts.setdefault(predicate, set()).add(fact)
        stats.facts_derived += added
        if self.tracer is not None and pending:
            self.tracer.count("engine.facts_derived", added)
            self.tracer.count("engine.dedup_hits", len(pending) - added)
        pending.clear()

    # ------------------------------------------------------------------
    # Support recording (track_support=True)
    # ------------------------------------------------------------------
    def _support_template(self, rule: Rule) -> Optional[Tuple[Any, ...]]:
        """Resolver for a rule's ground positive body atoms, or None.

        Supports are recordable only when the body atoms can be fully
        reconstructed from a match substitution: non-aggregate,
        non-existential rules with no anonymous variables in positive
        atoms.  Other rules fall back to join-based over-deletion (or a
        boundary recompute) at delete time.
        """
        cached = self._support_templates.get(rule, _UNSET)
        if cached is not _UNSET:
            return cached
        template: Optional[Tuple[Any, ...]] = None
        if not rule.has_aggregate() and not rule.existential_variables():
            atoms: List[Tuple[str, Tuple[Tuple[bool, Any], ...]]] = []
            ok = True
            for literal in rule.body:
                if not isinstance(literal, Atom):
                    continue
                ops: List[Tuple[bool, Any]] = []
                for term in literal.terms:
                    if is_variable(term):
                        if term.name == "_":
                            ok = False
                            break
                        ops.append((True, term))
                    else:
                        ops.append((False, term))
                if not ok:
                    break
                atoms.append((literal.predicate, tuple(ops)))
            if ok and atoms:
                template = tuple(atoms)
        self._support_templates[rule] = template
        return template

    def _record_supports(
        self,
        recorder: Tuple[Any, ...],
        substitution: Substitution,
        pending: List[Tuple[str, Fact]],
        start: int,
    ) -> None:
        """Record one support (the instantiated positive body) per head fact."""
        if len(pending) == start:
            return
        sink = self._support_sink
        body_key = tuple(
            (
                predicate,
                tuple(
                    substitution[payload] if is_var else payload
                    for is_var, payload in ops
                ),
            )
            for predicate, ops in recorder
        )
        for item in pending[start:]:
            sink.record(item, body_key)

    # ------------------------------------------------------------------
    # Compiled-plan evaluation paths
    # ------------------------------------------------------------------
    def _plans_for(self, rule: Rule, stats: EvaluationStats) -> RulePlans:
        plans = self._plan_cache.get(rule)
        if plans is None:
            plans = RulePlans(rule)
            self._plan_cache[rule] = plans
            stats.plans_compiled += 1
        return plans

    def _semi_naive_matches_plan(
        self,
        plans: RulePlans,
        db: Database,
        delta: Dict[str, Set[Fact]],
        recursive_predicates: Set[str],
        probe: Optional[Dict[Tuple[int, str], List[int]]] = None,
    ) -> Iterator[Substitution]:
        """Semi-naive matching via the old/delta/full occurrence partition.

        For the k-th recursive occurrence chosen as the delta atom, every
        earlier recursive occurrence is restricted to pre-delta ("old")
        facts and every later one sees the full relation — an exact
        partition of the new matches, with no dedup bookkeeping.
        """
        body = plans.rule.body
        recursive_indexes = [
            i
            for i, literal in enumerate(body)
            if isinstance(literal, Atom) and literal.predicate in recursive_predicates
        ]
        if not recursive_indexes:
            # The rule does not read the stratum's own predicates: firing it
            # once in the first round was enough; nothing new can match.
            return
        for k, index in enumerate(recursive_indexes):
            delta_facts = delta.get(body[index].predicate)
            if not delta_facts:
                continue
            binder = plans.delta_binder(index)
            rest_plan = plans.delta_plan(index)
            excludes: Dict[int, Set[Fact]] = {}
            for earlier in recursive_indexes[:k]:
                earlier_delta = delta.get(body[earlier].predicate)
                if earlier_delta:
                    excludes[earlier] = earlier_delta
            if db.columnar:
                # Batch-at-a-time: bind the whole delta partition up
                # front and run the rest plan once over all the bases.
                bases = [
                    base
                    for base in (binder.match(fact) for fact in delta_facts)
                    if base is not None
                ]
                if bases:
                    yield from execute_plan_batch(
                        rest_plan,
                        db,
                        bases=bases,
                        base_vars=tuple(var for _, var in binder.bind),
                        excludes=excludes if excludes else None,
                        probe=probe,
                    )
                continue
            for fact in delta_facts:
                base = binder.match(fact)
                if base is None:
                    continue
                yield from execute_plan(
                    rest_plan, db, base, excludes if excludes else None, probe
                )

    def _aggregate_matches_plan(
        self,
        plans: RulePlans,
        db: Database,
        probe: Optional[Dict[Tuple[int, str], List[int]]] = None,
        recursive: bool = False,
    ) -> Iterator[Substitution]:
        aggregate = plans.aggregate_plan()
        call = aggregate.call
        target = aggregate.target
        group_vars = aggregate.group_vars
        accumulator = GroupAccumulator(call.function, recursive=recursive)
        # Remember one full substitution per group so non-head variables
        # used by Skolem terms keep a witness binding.
        witnesses: Dict[Tuple[Any, ...], Substitution] = {}
        if db.columnar:
            pre_matches: Iterator[Substitution] = execute_plan_batch(
                aggregate.pre_plan, db, probe=probe
            )
        else:
            pre_matches = execute_plan(aggregate.pre_plan, db, probe=probe)
        for substitution in pre_matches:
            group = tuple(
                _hashable(substitution.get(v)) for v in group_vars
            )
            if call.contributors:
                contributor = tuple(
                    _hashable(substitution.get(v)) for v in call.contributors
                )
            else:
                contributor = tuple(
                    sorted(
                        ((v.name, _hashable(val)) for v, val in substitution.items()),
                        key=lambda item: item[0],
                    )
                )
            value = self._evaluate(call.value, substitution)
            accumulator.contribute(group, contributor, value)
            witnesses.setdefault(group, substitution)

        if self._retain_sink is not None:
            # Each fixpoint iteration overwrites the entry, so the final
            # (saturated) accumulator is what the retained state keeps —
            # captured for free from the naive in-stratum recomputation.
            self._retain_sink.store_aggregate(
                plans.rule, accumulator, witnesses, group_vars
            )

        for group, value in accumulator.results():
            base = witnesses[group]
            substitution = {v: base[v] for v in group_vars if v in base}
            substitution[target] = self._evaluate(
                aggregate.assignment.expression, base, aggregate_value=value
            )
            if all(self._check_condition(c, substitution) for c in aggregate.post):
                yield substitution

    def _semi_naive_matches(
        self,
        rule: Rule,
        db: Database,
        delta: Dict[str, Set[Fact]],
        recursive_predicates: Set[str],
    ) -> Iterator[Substitution]:
        """Require at least one recursive body atom to match a delta fact."""
        body = list(rule.body)
        recursive_atom_indexes = [
            i
            for i, literal in enumerate(body)
            if isinstance(literal, Atom) and literal.predicate in recursive_predicates
        ]
        if not recursive_atom_indexes:
            # The rule does not read the stratum's own predicates: firing it
            # once in the first round was enough; nothing new can match.
            return
        seen: Set[Tuple[Tuple[Variable, Any], ...]] = set()
        for delta_index in recursive_atom_indexes:
            atom = body[delta_index]
            delta_facts = delta.get(atom.predicate)
            if not delta_facts:
                continue
            for fact in delta_facts:
                base = self._unify_atom(atom, fact, {})
                if base is None:
                    continue
                rest = body[:delta_index] + body[delta_index + 1:]
                for substitution in self._match_body(rest, db, base):
                    key = tuple(sorted(
                        ((v, _hashable(substitution[v])) for v in substitution),
                        key=lambda item: item[0].name,
                    ))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield substitution

    # ------------------------------------------------------------------
    # Body matching
    # ------------------------------------------------------------------
    def _match_body(
        self,
        literals: List[Any],
        db: Database,
        substitution: Substitution,
    ) -> Iterator[Substitution]:
        """Yield all substitutions satisfying the body conjunction.

        Literals are scheduled greedily: ready assignments and conditions
        run as soon as their variables are bound; otherwise the atom with
        the most bound positions is joined next.
        """
        remaining = list(literals)
        return self._match_rec(remaining, db, dict(substitution))

    def _match_rec(
        self, remaining: List[Any], db: Database, substitution: Substitution
    ) -> Iterator[Substitution]:
        if not remaining:
            yield substitution
            return
        index = self._pick_next(remaining, substitution)
        literal = remaining[index]
        rest = remaining[:index] + remaining[index + 1:]

        if isinstance(literal, Atom):
            relation = db.relation(literal.predicate)
            bound: List[Tuple[int, Any]] = []
            for i, term in enumerate(literal.terms):
                if not is_variable(term):
                    bound.append((i, term))
                elif term.name != "_" and term in substitution:
                    bound.append((i, substitution[term]))
            for fact in list(relation.lookup(bound)):
                extended = self._unify_atom(literal, fact, substitution)
                if extended is not None:
                    yield from self._match_rec(rest, db, extended)
            return

        if isinstance(literal, NegatedAtom):
            if self._atom_has_match(literal.atom, db, substitution):
                return
            yield from self._match_rec(rest, db, substitution)
            return

        if isinstance(literal, Condition):
            if self._check_condition(literal, substitution):
                yield from self._match_rec(rest, db, substitution)
            return

        if isinstance(literal, Assignment):
            value = self._evaluate(literal.expression, substitution)
            current = substitution.get(literal.target)
            if literal.target in substitution:
                if _values_equal(current, value):
                    yield from self._match_rec(rest, db, substitution)
                return
            extended = dict(substitution)
            extended[literal.target] = value
            yield from self._match_rec(rest, db, extended)
            return

        raise EvaluationError(f"unsupported body literal: {literal!r}")

    def _pick_next(self, remaining: List[Any], substitution: Substitution) -> int:
        """Greedy scheduling: ready non-atoms first, then best-bound atom."""
        best_atom = None
        best_score = -1
        for i, literal in enumerate(remaining):
            if isinstance(literal, Assignment):
                needed = literal.expression.variables()
                if all(v in substitution for v in needed):
                    return i
            elif isinstance(literal, Condition):
                if all(v in substitution for v in literal.variables()):
                    return i
            elif isinstance(literal, NegatedAtom):
                if all(
                    v in substitution or v.name == "_"
                    for v in literal.variables()
                ):
                    return i
            elif isinstance(literal, Atom):
                score = sum(
                    1
                    for term in literal.terms
                    if not is_variable(term) or term in substitution
                )
                if score > best_score:
                    best_score = score
                    best_atom = i
        if best_atom is not None:
            return best_atom
        # Nothing ready: fall back to the first literal; matching will fail
        # with a clear error if variables stay unbound.
        return 0

    def _unify_atom(
        self, atom: Atom, fact: Fact, substitution: Substitution
    ) -> Optional[Substitution]:
        if len(fact) != len(atom.terms):
            return None
        extended = dict(substitution)
        for term, value in zip(atom.terms, fact):
            if is_variable(term):
                if term.name == "_":
                    continue
                current = extended.get(term, _UNBOUND)
                if current is _UNBOUND:
                    extended[term] = value
                elif not _values_equal(current, value):
                    return None
            elif not _values_equal(term, value):
                return None
        return extended

    def _atom_has_match(
        self, atom: Atom, db: Database, substitution: Substitution
    ) -> bool:
        relation = db.relation(atom.predicate)
        bound: List[Tuple[int, Any]] = []
        for i, term in enumerate(atom.terms):
            if not is_variable(term):
                bound.append((i, term))
            elif term.name != "_" and term in substitution:
                bound.append((i, substitution[term]))
        for fact in relation.lookup(bound):
            if self._unify_atom(atom, fact, substitution) is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _aggregate_matches(
        self, rule: Rule, db: Database, recursive: bool = False
    ) -> Iterator[Substitution]:
        aggregate_assignment = next(a for a in rule.assignments() if a.is_aggregate)
        call = _find_aggregate(aggregate_assignment.expression)
        target = aggregate_assignment.target

        pre: List[Any] = []
        post: List[Condition] = []
        for literal in rule.body:
            if literal is aggregate_assignment:
                continue
            if isinstance(literal, Condition) and target in literal.variables():
                post.append(literal)
            elif isinstance(literal, Assignment) and target in literal.expression.variables():
                raise EvaluationError(
                    f"assignment depending on aggregate target in {rule}"
                )
            else:
                pre.append(literal)

        group_vars = sorted(
            (v for v in rule.head_variables()
             if v != target and v.name != "_" and v not in rule.existential_variables()),
            key=lambda v: v.name,
        )
        accumulator = GroupAccumulator(call.function, recursive=recursive)
        # Remember one full substitution per group so non-head variables
        # used by Skolem terms keep a witness binding.
        witnesses: Dict[Tuple[Any, ...], Substitution] = {}
        for substitution in self._match_body(pre, db, {}):
            group = tuple(
                _hashable(substitution.get(v)) for v in group_vars
            )
            if call.contributors:
                contributor = tuple(
                    _hashable(substitution.get(v)) for v in call.contributors
                )
            else:
                contributor = tuple(
                    sorted(
                        ((v.name, _hashable(val)) for v, val in substitution.items()),
                        key=lambda item: item[0],
                    )
                )
            value = self._evaluate(call.value, substitution)
            accumulator.contribute(group, contributor, value)
            witnesses.setdefault(group, substitution)

        if self._retain_sink is not None:
            self._retain_sink.store_aggregate(
                rule, accumulator, witnesses, tuple(group_vars)
            )

        for group, value in accumulator.results():
            base = dict(witnesses[group])
            substitution = {v: base[v] for v in group_vars if v in base}
            # Evaluate the full assignment expression with the aggregate
            # replaced by its computed value (supports e.g. V = msum(W,<Z>)
            # wrapped in arithmetic).
            substitution[target] = self._evaluate(
                aggregate_assignment.expression, base, aggregate_value=value
            )
            if all(self._check_condition(c, substitution) for c in post):
                yield substitution

    # ------------------------------------------------------------------
    # Head instantiation (the chase step)
    # ------------------------------------------------------------------
    def _instantiate_head(
        self,
        rule: Rule,
        substitution: Substitution,
        db: Database,
        stats: EvaluationStats,
        nulls: NullFactory,
        skolems: Dict[str, SkolemFunctor],
    ) -> Iterator[Tuple[str, Fact]]:
        existential = {
            v for v in rule.existential_variables() if v not in substitution
        }
        # Resolve Skolem terms first: they are deterministic, so they never
        # trigger the restricted-chase check.
        resolved_heads: List[Tuple[str, List[Any]]] = []
        for atom in rule.head:
            terms: List[Any] = []
            for term in atom.terms:
                if isinstance(term, SkolemTerm):
                    functor = skolems.get(term.functor)
                    if functor is None:
                        functor = SkolemFunctor(term.functor)
                        skolems[term.functor] = functor
                    arguments = []
                    for argument in term.arguments:
                        if is_variable(argument):
                            if argument not in substitution:
                                raise EvaluationError(
                                    f"Skolem argument {argument!r} unbound in {rule}"
                                )
                            arguments.append(substitution[argument])
                        else:
                            arguments.append(argument)
                    terms.append(functor(*arguments))
                elif is_variable(term):
                    if term in substitution:
                        terms.append(substitution[term])
                    else:
                        terms.append(term)  # existential, resolved below
                else:
                    terms.append(term)
            resolved_heads.append((atom.predicate, terms))

        remaining_existential = {
            term
            for _, terms in resolved_heads
            for term in terms
            if is_variable(term)
        }
        if remaining_existential:
            # Restricted chase: skip when the head conjunction is already
            # satisfied by some assignment of the existential variables.
            if self._head_satisfied(resolved_heads, db):
                return
            if stats.nulls_created + len(remaining_existential) > self.max_nulls:
                raise ResourceLimitError(
                    f"null budget exceeded ({self.max_nulls}); the program "
                    "likely falls outside the terminating fragment",
                    resource="nulls",
                    limit=self.max_nulls,
                    stats=stats,
                )
            assignment = {
                variable: nulls.fresh(variable.name)
                for variable in remaining_existential
            }
            stats.nulls_created += len(assignment)
            for predicate, terms in resolved_heads:
                yield predicate, tuple(
                    assignment.get(t, t) if is_variable(t) else t for t in terms
                )
            return

        for predicate, terms in resolved_heads:
            yield predicate, tuple(terms)

    def _head_satisfied(
        self, resolved_heads: List[Tuple[str, List[Any]]], db: Database
    ) -> bool:
        """Conjunctive-match check used by the restricted chase."""
        atoms = [
            Atom(predicate, tuple(terms)) for predicate, terms in resolved_heads
        ]
        for _ in self._match_body(list(atoms), db, {}):
            return True
        return False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        expression: Expression,
        substitution: Substitution,
        aggregate_value: Any = None,
    ) -> Any:
        return _plan_evaluate(expression, substitution, aggregate_value)

    def _check_condition(self, condition: Condition, substitution: Substitution) -> bool:
        return _plan_check_condition(condition, substitution)


_UNBOUND = object()
_UNSET = object()


def _hashable(value: Any) -> Any:
    """Make lists/dicts usable in group keys (rare, but defensive)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value
