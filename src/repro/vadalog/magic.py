"""Magic sets: goal-directed (demand-driven) evaluation of point queries.

A point query such as ``controls(a, B)?`` binds some arguments of a
single predicate.  Evaluating it through :meth:`Engine.run` computes the
*whole* model and then filters — fine for batch materialization, hopeless
for a query service.  This module implements the classical magic-sets /
demand transformation (Bancilhon et al., Beeri & Ramakrishnan): the
stratified program is rewritten so that *magic predicates* carry the set
of demanded bindings and every rewritten rule is guarded by the demand
for its head, with bindings pushed sideways through rule bodies
(left-to-right SIPS).  The engine then derives only the slice of the
model relevant to the query, reusing the compiled-plan machinery of
:mod:`repro.vadalog.plan` unchanged — magic predicates are ordinary
predicates to the planner.

Soundness boundary
------------------

The rewrite is *not* applied to every predicate.  A predicate is
evaluated in full (its original rules kept verbatim, no demand
restriction) when restricting it to the demanded slice could change
answers:

- predicates appearing under ``not``: stratified negation needs the
  complete extension of the negated predicate;
- head predicates of rules with existential variables chased as labeled
  nulls: restricting their support can change which nulls are invented
  and how they propagate (witness dependencies);
- everything such a predicate transitively reads (its dependency cone),
  so that "full" predicates never depend on demand-restricted ones.

Aggregations are demand-safe only through their *group* variables: a
bound head position holding the aggregate result degrades to free during
adornment normalization, so a demanded group always sees its complete
contributor set.  Skolem-functor head terms likewise degrade to free
(a demanded Skolem value cannot be decomposed by a join).

Finally, the rewritten program is re-stratified before use; in the rare
case the magic predicates introduce a stratification conflict the
evaluator falls back to *cone evaluation* — the original rules of the
query predicate's reachable cone, still usually smaller than the whole
program.  The full chase remains available as the differential oracle
(:meth:`GoalDirectedEvaluator.full_answer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import KGModelError, VadalogError
from repro.vadalog.ast import (
    Assignment,
    Atom,
    Condition,
    NegatedAtom,
    Program,
    Rule,
    SkolemTerm,
)
from repro.vadalog.database import Database, Fact
from repro.vadalog.engine import Engine, EvaluationResult, EvaluationStats
from repro.vadalog.parser import parse_program
from repro.vadalog.stratify import stratify
from repro.vadalog.terms import (
    ANONYMOUS,
    Variable,
    fact_sort_key,
    is_variable,
    values_equal,
)

__all__ = [
    "Query",
    "parse_query",
    "MagicProgram",
    "magic_rewrite",
    "QueryAnswer",
    "GoalDirectedEvaluator",
]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """A point query: one predicate with constants at bound positions.

    ``terms`` mixes constants (bound) and :class:`Variable` (free).
    ``controls(a, B)?`` parses to ``Query("controls", ("a", ?B))`` with
    adornment ``"bf"``.
    """

    predicate: str
    terms: Tuple[Any, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def adornment(self) -> str:
        return "".join(
            "f" if is_variable(term) else "b" for term in self.terms
        )

    def bound_constants(self) -> Tuple[Any, ...]:
        return tuple(t for t in self.terms if not is_variable(t))

    def matches(self, fact: Fact) -> bool:
        """Does a fact of the query predicate satisfy the pattern?

        Bound positions must equal the query constant; repeated free
        variables must carry equal values.
        """
        if len(fact) != len(self.terms):
            return False
        seen: Dict[Variable, Any] = {}
        for term, value in zip(self.terms, fact):
            if not is_variable(term):
                if not values_equal(term, value):
                    return False
            elif term != ANONYMOUS:
                if term in seen:
                    if not values_equal(seen[term], value):
                        return False
                else:
                    seen[term] = value
        return True

    def __str__(self) -> str:
        parts = []
        for term in self.terms:
            if is_variable(term):
                parts.append(term.name)
            elif isinstance(term, str):
                parts.append(f'"{term}"')
            elif isinstance(term, bool):
                parts.append("true" if term else "false")
            else:
                parts.append(repr(term))
        return f"{self.predicate}({', '.join(parts)})?"


def parse_query(text: str) -> Query:
    """Parse ``pred(t1, ..., tn)?`` into a :class:`Query`.

    Uses the program parser's term syntax: leading-uppercase identifiers
    are free variables, anything else is a bound constant.
    """
    stripped = text.strip()
    if stripped.endswith("?"):
        stripped = stripped[:-1].rstrip()
    if stripped.endswith("."):
        raise VadalogError(f"not a query (trailing '.'): {text!r}")
    try:
        program = parse_program(stripped + ".")
    except KGModelError as exc:
        raise VadalogError(f"cannot parse query {text!r}: {exc}") from exc
    if len(program.rules) != 1 or program.rules[0].body:
        raise VadalogError(f"a query must be a single atom: {text!r}")
    head = program.rules[0].head
    if len(head) != 1:
        raise VadalogError(f"a query must be a single atom: {text!r}")
    atom = head[0]
    for term in atom.terms:
        if isinstance(term, SkolemTerm):
            raise VadalogError(f"Skolem terms not allowed in queries: {text!r}")
    return Query(atom.predicate, atom.terms)


# ---------------------------------------------------------------------------
# The rewrite
# ---------------------------------------------------------------------------


def _magic_name(predicate: str, adornment: str) -> str:
    return f"magic__{predicate}@{adornment}"


def _adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}@{adornment}"


@dataclass
class MagicProgram:
    """The output of :func:`magic_rewrite`.

    ``rules`` does *not* include the magic seed fact — the seed depends
    on the query constants while the rules depend only on the adornment,
    so rewrites are cached per ``(predicate, adornment)`` and the seed is
    appended per query (see :meth:`program_for`).
    """

    query: Query
    rules: List[Rule]
    answer_predicate: str
    seed_predicate: Optional[str]  # None => no demand restriction applies
    rewritten: bool
    full_predicates: FrozenSet[str] = frozenset()
    fallback_reasons: Tuple[str, ...] = ()
    #: Predicates whose original rules were kept verbatim (the full cone).
    cone_predicates: FrozenSet[str] = frozenset()
    #: The *normalized* adornment (bound positions may have degraded to
    #: free, e.g. aggregate results); the seed projects onto its ``b``s.
    seed_adornment: Optional[str] = None

    def seed_rule(self, query: Query) -> Optional[Rule]:
        """The magic seed fact for a concrete query's constants.

        Only constants at positions still bound after normalization are
        seeded — a degraded position's constant is enforced by the final
        :meth:`Query.matches` filter instead.
        """
        if self.seed_predicate is None:
            return None
        adornment = self.seed_adornment or ""
        terms = tuple(
            term
            for term, flag in zip(query.terms, adornment)
            if flag == "b"
        )
        return Rule(body=(), head=(Atom(self.seed_predicate, terms),))

    def program_for(self, query: Query) -> Program:
        """The evaluable program for a query sharing this adornment."""
        if query.predicate != self.query.predicate or (
            query.adornment() != self.query.adornment()
        ):
            raise VadalogError(
                f"rewrite for {self.query} cannot answer {query}"
            )
        rules = list(self.rules)
        seed = self.seed_rule(query)
        if seed is not None:
            rules.append(seed)
        return Program(rules=rules)


def _full_predicates(program: Program) -> Tuple[Set[str], List[str]]:
    """Predicates that must be computed without demand restriction.

    Returns the set plus human-readable reasons for the roots.
    """
    idb = program.idb_predicates()
    reasons: List[str] = []
    roots: Set[str] = set()
    for rule in program.rules:
        if rule.existential_variables():
            for pred in sorted(rule.head_predicates()):
                if pred not in roots:
                    roots.add(pred)
                    reasons.append(f"{pred}: existential head (labeled nulls)")
        for negated in rule.negated_atoms():
            pred = negated.atom.predicate
            if pred in idb and pred not in roots:
                roots.add(pred)
                reasons.append(f"{pred}: appears under negation")
    # Close under "everything a full predicate's rules read".
    defs: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        for pred in rule.head_predicates():
            defs.setdefault(pred, []).append(rule)
    full = set(roots)
    queue = list(roots)
    while queue:
        pred = queue.pop()
        for rule in defs.get(pred, ()):
            for read in rule.body_predicates() | rule.head_predicates():
                if read in idb and read not in full:
                    full.add(read)
                    queue.append(read)
    return full, reasons


def _split_heads(program: Program) -> List[Rule]:
    """One rule per head atom, for rules without existential variables.

    Multi-head existential rules stay whole (their head predicates are
    all in the full set anyway, and splitting them would invent one null
    per head instead of a shared one).
    """
    rules: List[Rule] = []
    for rule in program.rules:
        if len(rule.head) <= 1 or rule.existential_variables():
            rules.append(rule)
        else:
            for index, atom in enumerate(rule.head):
                label = f"{rule.label}#{index}" if rule.label else None
                rules.append(Rule(body=rule.body, head=(atom,), label=label))
    return rules


def _aggregate_targets(rule: Rule) -> Set[Variable]:
    return {a.target for a in rule.assignments() if a.is_aggregate}


class _Rewriter:
    """One magic rewrite: state for the adornment worklist."""

    def __init__(self, program: Program, query: Query):
        self.query = query
        rules = _split_heads(program)
        idb = {p for r in rules for p in r.head_predicates()}
        defs: Dict[str, List[Rule]] = {}
        for rule in rules:
            for pred in rule.head_predicates():
                defs.setdefault(pred, []).append(rule)
        # Restrict to the query predicate's reachable cone before the
        # soundness analysis: negation or existentials in rules the query
        # can never demand must not poison the rewrite.
        reachable: Set[str] = set()
        queue = [query.predicate]
        while queue:
            pred = queue.pop()
            if pred in reachable or pred not in idb:
                continue
            reachable.add(pred)
            for rule in defs[pred]:
                queue.extend(rule.body_predicates())
                # Multi-head existential rules are kept whole; their
                # other head predicates ride along.
                queue.extend(rule.head_predicates())
        kept: List[Rule] = []
        seen_ids: Set[int] = set()
        for pred in reachable:
            for rule in defs[pred]:
                if id(rule) not in seen_ids:
                    seen_ids.add(id(rule))
                    kept.append(rule)
        self.rules = kept
        self.idb = {p for r in kept for p in r.head_predicates()}
        self.defs = {}
        for rule in kept:
            for pred in rule.head_predicates():
                self.defs.setdefault(pred, []).append(rule)
        whole = Program(rules=self.rules)
        self.full, self.full_reasons = _full_predicates(whole)
        self.adorned: List[Rule] = []
        self.magic: List[Rule] = []
        self.cone: Set[str] = set()
        self._cone_rules: List[Rule] = []
        self._seen: Set[Tuple[str, str]] = set()
        self._queue: List[Tuple[str, str]] = []

    # -- adornment normalization ------------------------------------

    def normalize(self, predicate: str, adornment: str) -> str:
        """Degrade bound positions no defining rule can receive demand on.

        A position is demand-passable for a rule when the head term there
        is a constant or a plain universal variable that is not the
        target of an aggregate assignment.  Skolem terms and aggregate
        results degrade to free: the former cannot be decomposed by a
        join, the latter would constrain the aggregate's *result* before
        it is computed.
        """
        chars = list(adornment)
        for rule in self.defs.get(predicate, ()):
            head_atom = next(
                a for a in rule.head if a.predicate == predicate
            )
            targets = _aggregate_targets(rule)
            for index, char in enumerate(chars):
                if char != "b":
                    continue
                term = head_atom.terms[index]
                if isinstance(term, SkolemTerm):
                    chars[index] = "f"
                elif is_variable(term) and (
                    term == ANONYMOUS or term in targets
                ):
                    chars[index] = "f"
        return "".join(chars)

    # -- demand bookkeeping ------------------------------------------

    def demand(self, predicate: str, adornment: str) -> Optional[str]:
        """Register demand; returns the adorned name, or None when the
        predicate must keep its original name (EDB / full / no binding)."""
        if predicate not in self.idb:
            return None
        if predicate in self.full:
            self.ensure_cone(predicate)
            return None
        normalized = self.normalize(predicate, adornment)
        if "b" not in normalized:
            self.ensure_cone(predicate)
            return None
        key = (predicate, normalized)
        if key not in self._seen:
            self._seen.add(key)
            self._queue.append(key)
        return normalized

    def ensure_cone(self, predicate: str) -> None:
        """Include a predicate's original rules (and their IDB cone)."""
        if predicate in self.cone or predicate not in self.idb:
            return
        queue = [predicate]
        while queue:
            pred = queue.pop()
            if pred in self.cone:
                continue
            self.cone.add(pred)
            for rule in self.defs.get(pred, ()):
                self._cone_rules.append(rule)
                for read in rule.body_predicates():
                    if read in self.idb and read not in self.cone:
                        queue.append(read)
        # Rules can appear once per head predicate; dedup by identity.
        seen: Set[int] = set()
        unique: List[Rule] = []
        for rule in self._cone_rules:
            if id(rule) not in seen:
                seen.add(id(rule))
                unique.append(rule)
        self._cone_rules = unique

    # -- rule rewriting ----------------------------------------------

    def rewrite_rule(self, rule: Rule, predicate: str, adornment: str) -> None:
        head_atom = next(a for a in rule.head if a.predicate == predicate)
        magic_args = tuple(
            head_atom.terms[i]
            for i, char in enumerate(adornment)
            if char == "b"
        )
        magic_atom = Atom(_magic_name(predicate, adornment), magic_args)
        bound: Set[Variable] = {
            t for t in magic_args if is_variable(t) and t != ANONYMOUS
        }
        targets = _aggregate_targets(rule)

        new_body: List[Any] = [magic_atom]
        # The demand prefix: literals safe to place in a magic rule's
        # body.  Aggregate assignments (and anything referencing their
        # targets) are excluded — dropping a filter only widens demand,
        # which is sound.
        prefix: List[Any] = [magic_atom]

        for literal in rule.body:
            if isinstance(literal, Atom):
                raw = "".join(
                    "b"
                    if (
                        not is_variable(term)
                        and not isinstance(term, SkolemTerm)
                    )
                    or (
                        is_variable(term)
                        and term != ANONYMOUS
                        and term in bound
                    )
                    else "f"
                    for term in literal.terms
                )
                adorned = self.demand(literal.predicate, raw)
                if adorned is None:
                    new_body.append(literal)
                    prefix.append(literal)
                else:
                    occurrence = Atom(
                        _adorned_name(literal.predicate, adorned),
                        literal.terms,
                    )
                    magic_head = Atom(
                        _magic_name(literal.predicate, adorned),
                        tuple(
                            literal.terms[i]
                            for i, char in enumerate(adorned)
                            if char == "b"
                        ),
                    )
                    if not (
                        len(prefix) == 1 and prefix[0] == magic_head
                    ):  # skip tautological self-demand rules
                        self.magic.append(
                            Rule(body=tuple(prefix), head=(magic_head,))
                        )
                    new_body.append(occurrence)
                    prefix.append(occurrence)
                for term in literal.terms:
                    if is_variable(term) and term != ANONYMOUS:
                        bound.add(term)
            elif isinstance(literal, NegatedAtom):
                if literal.atom.predicate in self.idb:
                    self.ensure_cone(literal.atom.predicate)
                new_body.append(literal)
                # Negation filters demand soundly only when its variables
                # are already bound; it binds nothing either way.
                if all(
                    v in bound or v == ANONYMOUS
                    for v in literal.variables()
                ):
                    prefix.append(literal)
            elif isinstance(literal, Assignment):
                new_body.append(literal)
                if literal.is_aggregate:
                    continue  # targets never carry demand
                if literal.expression.variables() <= bound:
                    prefix.append(literal)
                    if literal.target != ANONYMOUS:
                        bound.add(literal.target)
            else:  # Condition
                new_body.append(literal)
                if not (literal.variables() & targets) and (
                    literal.variables() <= bound
                ):
                    prefix.append(literal)

        adorned_head = Atom(
            _adorned_name(predicate, adornment), head_atom.terms
        )
        label = f"{rule.label}@{adornment}" if rule.label else None
        self.adorned.append(
            Rule(body=tuple(new_body), head=(adorned_head,), label=label)
        )

    # -- driver -------------------------------------------------------

    def run(self) -> MagicProgram:
        query = self.query
        fallback_reasons = list(self.full_reasons)

        def cone_fallback(reason: Optional[str] = None) -> MagicProgram:
            reasons = list(fallback_reasons)
            if reason:
                reasons.append(reason)
            self.ensure_cone(query.predicate)
            return MagicProgram(
                query=query,
                rules=list(self._cone_rules),
                answer_predicate=query.predicate,
                seed_predicate=None,
                rewritten=False,
                full_predicates=frozenset(self.full),
                fallback_reasons=tuple(reasons),
                cone_predicates=frozenset(self.cone),
            )

        if query.predicate not in self.idb:
            # Extensional query: nothing to derive, filter the EDB.
            return MagicProgram(
                query=query,
                rules=[],
                answer_predicate=query.predicate,
                seed_predicate=None,
                rewritten=False,
                full_predicates=frozenset(self.full),
                fallback_reasons=(f"{query.predicate}: extensional",),
            )

        adorned = self.demand(query.predicate, query.adornment())
        if adorned is None:
            reason = (
                f"{query.predicate}: in the full set"
                if query.predicate in self.full
                else f"{query.predicate}: no demand-passable binding"
            )
            return cone_fallback(reason)

        while self._queue:
            predicate, adornment = self._queue.pop()
            for rule in self.defs.get(predicate, ()):
                self.rewrite_rule(rule, predicate, adornment)

        rules = self.adorned + self.magic + self._cone_rules
        seed_predicate = _magic_name(query.predicate, adorned)
        answer_predicate = _adorned_name(query.predicate, adorned)
        candidate = MagicProgram(
            query=query,
            rules=rules,
            answer_predicate=answer_predicate,
            seed_predicate=seed_predicate,
            rewritten=True,
            full_predicates=frozenset(self.full),
            fallback_reasons=tuple(fallback_reasons),
            cone_predicates=frozenset(self.cone),
            seed_adornment=adorned,
        )
        # Magic predicates can, in corner cases, entangle strata the
        # original program kept apart; re-stratify and fall back rather
        # than trust an unstratifiable rewrite.
        try:
            probe = candidate.program_for(query)
            probe = Program(rules=[r for r in probe.rules if r.body])
            stratify(probe)
        except VadalogError as exc:
            return cone_fallback(f"rewrite not stratifiable: {exc}")
        return candidate


def magic_rewrite(program: Program, query: Query) -> MagicProgram:
    """Rewrite ``program`` for goal-directed evaluation of ``query``."""
    if query.arity == 0:
        raise VadalogError(f"nullary queries are not supported: {query}")
    return _Rewriter(program, query).run()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class QueryAnswer:
    """Answers plus provenance of how they were computed."""

    query: Query
    facts: FrozenSet[Fact]
    mode: str  # "magic" | "cone" | "edb" | "full"
    status: str
    stats: EvaluationStats
    rewrite: Optional[MagicProgram] = None

    @property
    def truncated(self) -> bool:
        return self.status != "fixpoint"

    def bindings(self) -> List[Dict[str, Any]]:
        """One mapping per answer, free variable name -> value."""
        out: List[Dict[str, Any]] = []
        for fact in sorted(self.facts, key=fact_sort_key):
            row: Dict[str, Any] = {}
            for term, value in zip(self.query.terms, fact):
                if is_variable(term) and term != ANONYMOUS:
                    row[term.name] = value
            out.append(row)
        return out


class GoalDirectedEvaluator:
    """Answers point queries over a fixed program, caching rewrites.

    Rewrites are cached per ``(predicate, adornment)``; compiled rule
    plans are shared across requests through a common plan cache, so the
    steady-state cost of a query is just the demanded slice of the
    chase.  Instances are cheap; each :meth:`answer` call builds a fresh
    :class:`Engine` around the shared caches so per-request governors
    and tracers never race across threads.
    """

    def __init__(
        self,
        program: Program,
        *,
        columnar: bool = True,
        use_plans: bool = True,
        max_iterations: int = 10_000,
        max_nulls: int = 1_000_000,
    ):
        self.program = program
        self.columnar = columnar
        self.use_plans = use_plans
        self.max_iterations = max_iterations
        self.max_nulls = max_nulls
        self._rewrites: Dict[Tuple[str, str], MagicProgram] = {}
        self._plan_cache: Dict[Rule, Any] = {}

    # -- internals ----------------------------------------------------

    def _engine(self, governor=None, tracer=None, columnar=None) -> Engine:
        engine = Engine(
            max_iterations=self.max_iterations,
            max_nulls=self.max_nulls,
            check_wardedness=False,
            use_plans=self.use_plans,
            governor=governor,
            tracer=tracer,
            columnar=self.columnar if columnar is None else columnar,
        )
        # Share compiled plans across requests: dict get/set are atomic
        # under the GIL and plans for structurally-equal rules are
        # interchangeable, so the worst concurrent case is a duplicate
        # compile.
        engine._plan_cache = self._plan_cache
        return engine

    def rewrite(self, query: Query) -> MagicProgram:
        key = (query.predicate, query.adornment())
        cached = self._rewrites.get(key)
        if cached is None:
            cached = magic_rewrite(self.program, query)
            self._rewrites[key] = cached
        return cached

    @staticmethod
    def _coerce(query) -> Query:
        return parse_query(query) if isinstance(query, str) else query

    def _run(
        self,
        program: Program,
        *,
        database: Optional[Database],
        inputs: Optional[Mapping[str, Iterable[Fact]]],
        governor,
        tracer,
    ) -> EvaluationResult:
        engine = self._engine(governor=governor, tracer=tracer)
        return engine.run(
            program,
            database=database,
            inputs=dict(inputs) if inputs else None,
        )

    # -- public API ---------------------------------------------------

    def answer(
        self,
        query,
        *,
        database: Optional[Database] = None,
        inputs: Optional[Mapping[str, Iterable[Fact]]] = None,
        governor=None,
        tracer=None,
    ) -> QueryAnswer:
        """Goal-directed answers for ``query`` over an extensional DB.

        ``database``/``inputs`` must hold extensional facts only (the
        same contract as :meth:`Engine.run`); the database is never
        mutated.  Pass ``inputs`` (plain fact iterables) from concurrent
        callers — each run then builds a private database and shares no
        mutable storage.
        """
        query = self._coerce(query)
        rewrite = self.rewrite(query)

        if not rewrite.rules and rewrite.seed_predicate is None:
            # Pure EDB query: filter without running the engine.
            facts: Set[Fact] = set()
            if database is not None:
                facts |= set(database.facts(query.predicate))
            if inputs:
                facts |= {
                    tuple(f) for f in inputs.get(query.predicate, ())
                }
            return QueryAnswer(
                query=query,
                facts=frozenset(f for f in facts if query.matches(f)),
                mode="edb",
                status="fixpoint",
                stats=EvaluationStats(),
                rewrite=rewrite,
            )

        result = self._run(
            rewrite.program_for(query),
            database=database,
            inputs=inputs,
            governor=governor,
            tracer=tracer,
        )
        answers = frozenset(
            fact
            for fact in result.facts(rewrite.answer_predicate)
            if query.matches(fact)
        )
        return QueryAnswer(
            query=query,
            facts=answers,
            mode="magic" if rewrite.rewritten else "cone",
            status=result.status,
            stats=result.stats,
            rewrite=rewrite,
        )

    def full_answer(
        self,
        query,
        *,
        database: Optional[Database] = None,
        inputs: Optional[Mapping[str, Iterable[Fact]]] = None,
        governor=None,
        tracer=None,
    ) -> QueryAnswer:
        """The differential oracle: full chase, then filter."""
        query = self._coerce(query)
        result = self._run(
            self.program,
            database=database,
            inputs=inputs,
            governor=governor,
            tracer=tracer,
        )
        answers = frozenset(
            fact
            for fact in result.facts(query.predicate)
            if query.matches(fact)
        )
        return QueryAnswer(
            query=query,
            facts=answers,
            mode="full",
            status=result.status,
            stats=result.stats,
        )
