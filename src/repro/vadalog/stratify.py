"""Stratification and rule scheduling for the Vadalog substitute.

Negation follows the standard stratified semantics; aggregation follows
the stratified semantics of [39] across strata, while *monotonic*
aggregation (the ``sum``-in-recursion idiom of the company-control program,
Example 4.2) is additionally admitted inside a recursive stratum, where the
engine recomputes aggregates to fixpoint (values only ever grow, so derived
facts remain valid).

The module builds the predicate dependency graph, condenses it into
strongly connected components, and emits :class:`Stratum` objects in
topological order.  A negative edge inside an SCC is rejected
(:class:`~repro.errors.VadalogError`): the program is not stratifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import VadalogError
from repro.vadalog.ast import Program, Rule


@dataclass
class Stratum:
    """A maximal set of mutually recursive rules, evaluated to fixpoint."""

    index: int
    predicates: Set[str]
    rules: List[Rule] = field(default_factory=list)
    recursive: bool = False

    def __repr__(self) -> str:
        kind = "recursive" if self.recursive else "non-recursive"
        return f"Stratum({self.index}, {sorted(self.predicates)}, {kind})"


def dependency_edges(program: Program) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str]]]:
    """Return (positive, negative) predicate dependency edges body -> head.

    A dependency through a negated atom or through any aggregate-carrying
    rule is *negative* for stratification purposes — except that aggregate
    rules keep their positive-atom dependencies positive, because monotonic
    aggregation is allowed in recursion (see module docstring).
    """
    positive: Set[Tuple[str, str]] = set()
    negative: Set[Tuple[str, str]] = set()
    for rule in program.rules:
        heads = rule.head_predicates()
        for atom in rule.body_atoms():
            for head in heads:
                positive.add((atom.predicate, head))
        for negated in rule.negated_atoms():
            for head in heads:
                negative.add((negated.atom.predicate, head))
    return positive, negative


def _condense(nodes: Sequence[str], edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Tarjan SCC over a small explicit graph; returns reverse topo order."""
    adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
    for src, dst in edges:
        if src in adjacency and dst in adjacency:
            adjacency[src].append(dst)

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in index:
                    index[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(adjacency[target])))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in nodes:
        if node not in index:
            visit(node)
    return components


def stratify(program: Program) -> List[Stratum]:
    """Compute the evaluation strata of ``program`` in topological order.

    Raises :class:`VadalogError` when a negated dependency occurs inside a
    cycle (the program is not stratifiable).
    """
    predicates = sorted(program.predicates())
    positive, negative = dependency_edges(program)
    all_edges = positive | negative

    # Head predicates of a multi-head rule are produced together, so they
    # must share a stratum: otherwise the rule is attached to the latest
    # of them and a consumer of an *earlier* head predicate can be
    # scheduled before the rule ever fires.  Mutual pseudo-edges merge
    # their components; they are kept out of the recursion test below
    # (producing two predicates together is not a cycle).
    cohead: Set[Tuple[str, str]] = set()
    for rule in program.rules:
        heads = sorted(rule.head_predicates())
        if len(heads) > 1:
            first = heads[0]
            for other in heads[1:]:
                cohead.add((first, other))
                cohead.add((other, first))

    # Tarjan emits components in reverse topological order of the
    # condensation with respect to body -> head edges, i.e. the most
    # dependent components first; reverse to evaluate dependencies first.
    components = list(reversed(_condense(predicates, all_edges | cohead)))
    component_of: Dict[str, int] = {}
    for i, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = i

    # Reject negation within a component.
    for src, dst in negative:
        if component_of.get(src) == component_of.get(dst):
            raise VadalogError(
                f"program is not stratifiable: negated dependency "
                f"{src!r} -> {dst!r} occurs in a recursive component"
            )

    strata: List[Stratum] = []
    for i, component in enumerate(components):
        members = set(component)
        # Recursion is judged on the *real* body -> head edges only: a
        # component merged purely through co-head pseudo-edges needs no
        # fixpoint iteration.
        recursive = any(
            (p, q) in all_edges for p in component for q in component
        )
        strata.append(Stratum(index=i, predicates=members, recursive=recursive))

    # Attach each rule to the stratum of its head predicate(s).  A rule
    # whose head predicates span several strata is attached to the latest
    # of them (all of its dependencies are then available).
    stratum_by_predicate = {
        predicate: stratum for stratum in strata for predicate in stratum.predicates
    }
    for rule in program.rules:
        target = max(
            (stratum_by_predicate[p] for p in rule.head_predicates()),
            key=lambda s: s.index,
        )
        target.rules.append(rule)
        # Non-monotonic aggregates (min, avg, prod) cannot be recomputed
        # to fixpoint: their value may shrink or oscillate as contributions
        # arrive, but facts are never retracted.  Reject them inside
        # recursion.  The explicitly-monotonic spelling ``mprod`` is the
        # one conditional exception: it asserts non-decreasing use (every
        # contribution >= 1) and the engine validates that assertion at
        # runtime — the bare ``prod`` spelling makes no such promise and
        # stays rejected.
        if target.recursive and rule.has_aggregate():
            reads_own_stratum = bool(rule.body_predicates() & target.predicates)
            if reads_own_stratum:
                from repro.vadalog.aggregates import is_recursion_safe

                for assignment in rule.assignments():
                    call = _aggregate_of(assignment.expression)
                    if call is not None and not is_recursion_safe(call.function):
                        hint = (
                            "; spell it 'mprod' to assert validated "
                            "non-decreasing use (every factor >= 1)"
                            if call.function == "prod"
                            else ""
                        )
                        raise VadalogError(
                            f"non-monotonic aggregate {call.function!r} in a "
                            f"recursive rule: {rule}{hint}"
                        )

    return [stratum for stratum in strata if stratum.rules]


def _aggregate_of(expression):
    """The aggregate call inside an expression, if any."""
    from repro.vadalog.ast import AggregateCall, BinOp, FunctionCall

    if isinstance(expression, AggregateCall):
        return expression
    if isinstance(expression, BinOp):
        return _aggregate_of(expression.left) or _aggregate_of(expression.right)
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            found = _aggregate_of(argument)
            if found is not None:
                return found
    return None


def recursive_predicates(program: Program) -> Set[str]:
    """Predicates involved in a dependency cycle (used by wardedness)."""
    predicates = sorted(program.predicates())
    positive, negative = dependency_edges(program)
    edges = positive | negative
    components = _condense(predicates, edges)
    result: Set[str] = set()
    for component in components:
        if len(component) > 1:
            result |= set(component)
        elif (component[0], component[0]) in edges:
            result.add(component[0])
    return result
