"""Columnar fact storage: dictionary-encoded columns + row-id indexes.

The tuple backend in :mod:`repro.vadalog.database` stores every fact as a
Python tuple inside a set, with per-position/composite indexes holding
fact references.  At registry scale (Section 6 of the paper targets
national company registries) the per-tuple object overhead dominates:
each 2-ary fact costs a tuple header, two cell pointers, and a set slot,
and every index bucket duplicates the references.

This module keeps the same :class:`Relation` facade but stores facts
column-wise:

* a per-database :class:`ValueInterner` maps each constant to a small
  integer *code*; columns are ``array('i')`` buffers of codes, so a
  stored cell costs four bytes regardless of the value;
* row membership/dedup goes through a sorted-hash row table: two
  parallel ``array`` buffers (FNV-1a row hash, row id) ordered by hash,
  probed with ``bisect`` (~16 bytes/row), plus a small dict overlay for
  rows inserted since the last rebuild.  Rebuilds are amortized
  geometrically and vectorize over numpy when it is available;
* indexes map encoded keys to row-id lists, so buckets hold ints rather
  than fact references;
* deletion tombstones rows (probes skip dead rows) and compaction runs
  only at engine safe points, so in-flight index iterators stay valid;
* relations can spill their (compacted) column pages to a sqlite3 file
  and rehydrate transparently on next access.

Equality semantics — the subtle part
------------------------------------

Python hashes/equates ``1 == 1.0 == True`` while the chase's
``values_equal`` keeps ``True`` apart from ``1``/``1.0``.  The tuple
backend inherits Python semantics for storage-level dedup (a set keeps
only one of ``(1,)``/``(True,)``) and values_equal for join matching.
To stay bit-identical the interner issues *two-level* codes:

* the **exact code** identifies the constant up to ``values_equal``
  (bools get their own codes, ``1`` and ``1.0`` share one);
* the **eq code** identifies the Python ``==`` class (``True`` and ``1``
  share one).

Rows dedup and index-bucket on eq-code keys (set/dict semantics), while
join verification compares exact codes (values_equal semantics).  The
decoded value is the first-seen representative of its exact class, so
``1.0`` added after ``1`` decodes as ``1`` — indistinguishable under
values_equal, see DESIGN.md for the (benign) caveats.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from bisect import bisect_left
from array import array
from itertools import compress as _compress, islice as _islice
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError

try:  # vectorized bulk paths; every code path has a pure-Python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

Fact = Tuple[Any, ...]

#: Exact-code dictionary key tag for bools (so True never collides with 1).
_BOOL = ("__bool__",)

#: FNV-1a parameters for row hashing (deterministic, numpy-friendly).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = 0xFFFFFFFFFFFFFFFF

#: Overlay size that triggers a row-table rebuild (amortized with the
#: relative bound in :meth:`ColumnarRelation._maybe_rebuild`).
_OVERLAY_LIMIT = 1024

#: Typecode of the relation code columns: C ``int``, 4 bytes per code
#: instead of a list slot's 8-byte pointer plus a boxed int.  Interner
#: codes are dense indices into ``ValueInterner.values`` and stay far
#: below 2**31; ``array('i')`` raises ``OverflowError`` rather than
#: wrapping if that ever changes.
_CODE = "i"


def _code_col() -> array:
    """A fresh, empty code column."""
    return array(_CODE)


class ValueInterner:
    """Append-only two-level dictionary encoding for constants.

    Shared by every relation of a database (and by its copies), so codes
    are comparable across relations and snapshots.  Append-only: codes
    are never reused or renumbered, which makes sharing safe without
    locks — parallel workers only read, and the master interns on commit.
    """

    __slots__ = ("values", "eq", "_codes", "_eqcodes", "_eq_np", "nan_codes")

    def __init__(self) -> None:
        self.values: List[Any] = []  # code -> first-seen exact value
        # code -> ==-class representative code; an ``array('i')`` so a
        # million-code dictionary costs 4 MB, not a list of boxed ints.
        self.eq: array = _code_col()
        self._codes: Dict[Any, int] = {}  # exact key -> code
        # ==-class reps for the only cross-type family (bool vs 0/1).
        self._eqcodes: Dict[Any, int] = {}
        self._eq_np: Any = None  # cached numpy mirror of ``eq``
        # Codes of NaN values: never values_equal anything, including
        # themselves — vectorized joins mask these out explicitly.
        self.nan_codes: Set[int] = set()

    def __len__(self) -> int:
        return len(self.values)

    @staticmethod
    def _key(value: Any) -> Any:
        # Bools must not share a dict slot with 0/1; everything else uses
        # the raw value (1 and 1.0 intentionally share a code: they are
        # values_equal, and a dict keyed by == conflates them anyway).
        if value is True or value is False:
            return (_BOOL, value)
        return value

    def encode(self, value: Any) -> int:
        """Intern ``value``; returns its exact code."""
        key = self._key(value)
        code = self._codes.get(key)
        if code is not None:
            return code
        code = len(self.values)
        self._codes[key] = code
        self.values.append(value)
        if value != value:  # NaN
            self.nan_codes.add(code)
        if isinstance(value, (bool, int, float)) and value in (0, 1):
            # The 0/1 family spans types: True==1==1.0.  All members map
            # to one eq class anchored at the first member interned.
            rep = self._eqcodes.setdefault(bool(value), code)
            self.eq.append(rep)
        else:
            self.eq.append(code)
        return code

    def probe(self, value: Any) -> Optional[int]:
        """Exact code of ``value`` if interned, else None (no insert)."""
        return self._codes.get(self._key(value))

    def encode_fill(self, col_vals: List[Any], raw: List[Any]) -> List[Any]:
        """Fill the ``None`` slots of a bulk-probe result in place.

        ``raw[i] is None`` means ``col_vals[i]`` missed the code dict;
        this is :meth:`encode` unrolled over the misses (bulk loads
        intern millions of first-seen constants, and the per-call
        dispatch of ``encode`` dominates there).
        """
        codes = self._codes
        codes_get = codes.get
        values = self.values
        eq_append = self.eq.append
        eqcodes_setdefault = self._eqcodes.setdefault
        nan_add = self.nan_codes.add
        for i, code in enumerate(raw):
            if code is None:
                v = col_vals[i]
                key = (_BOOL, v) if v.__class__ is bool else v
                code = codes_get(key)
                if code is None:
                    code = len(values)
                    codes[key] = code
                    values.append(v)
                    if v.__class__ is str:  # dominant case: plain eq class
                        eq_append(code)
                    else:
                        if v != v:  # NaN
                            nan_add(code)
                        if isinstance(v, (bool, int, float)) and v in (0, 1):
                            eq_append(eqcodes_setdefault(bool(v), code))
                        else:
                            eq_append(code)
                raw[i] = code
        return raw

    def eq_array(self) -> Any:
        """Cached ``uint64`` numpy mirror of :attr:`eq` (refreshed lazily)."""
        arr = self._eq_np
        if arr is None or len(arr) != len(self.eq):
            arr = _np.asarray(self.eq, dtype=_np.int64).astype(_np.uint64)
            self._eq_np = arr
        return arr

    def probe_eq(self, value: Any) -> Optional[int]:
        """Eq-class code of ``value`` if its class is interned, else None."""
        code = self._codes.get(self._key(value))
        if code is not None:
            return self.eq[code]
        if isinstance(value, (bool, int, float)) and value in (0, 1):
            return self._eqcodes.get(bool(value))
        return None


def _fnv(codes: Iterable[int]) -> int:
    """FNV-1a over a row's eq codes — the row-table hash function.

    Deliberately *not* Python's ``hash``: the same arithmetic runs
    vectorized over uint64 numpy arrays during bulk loads and rebuilds,
    so scalar and vector paths agree bit-for-bit.
    """
    h = _FNV_OFFSET
    for code in codes:
        h = ((h ^ code) * _FNV_PRIME) & _U64
    return h


class ColumnarRelation:
    """Columnar extension of one predicate, behind the ``Relation`` API."""

    __slots__ = (
        "name",
        "_arity",
        "_interner",
        "_cols",
        "_nrows",
        "_live",
        "_ndead",
        "_ht_sorted",
        "_ht_sorted_rows",
        "_overlay",
        "_overlay_count",
        "_indexes",
        "_composite",
        "_store",
        "_spilled",
        "_version",
        "_npcache",
    )

    def __init__(
        self,
        name: str,
        arity: Optional[int] = None,
        interner: Optional[ValueInterner] = None,
    ):
        self.name = name
        self._interner = interner if interner is not None else ValueInterner()
        self._arity = arity
        self._cols: List[array] = (
            [_code_col() for _ in range(arity)] if arity is not None else []
        )
        self._nrows = 0
        self._live = bytearray()
        self._ndead = 0
        # Sorted-hash row table + overlay of rows since the last rebuild.
        self._ht_sorted = array("Q")
        self._ht_sorted_rows = array("q")
        self._overlay: Dict[int, List[int]] = {}
        self._overlay_count = 0
        # position -> eq code -> row-id list; positions -> eq key -> rows.
        self._indexes: Dict[int, Dict[int, List[int]]] = {}
        self._composite: Dict[Tuple[int, ...], Dict[Tuple[int, ...], List[int]]] = {}
        self._store: Optional["SpillStore"] = None
        self._spilled = False
        # Monotonic mutation counter + numpy mirror cache for the
        # vectorized join path (columns / sorted join keys per key shape).
        self._version = 0
        self._npcache: Optional[Dict[str, Any]] = None

    # -- arity is assigned post-construction by loaders ------------------
    @property
    def arity(self) -> Optional[int]:
        return self._arity

    @arity.setter
    def arity(self, value: Optional[int]) -> None:
        if value == self._arity:
            return
        if self._arity is not None and self._nrows:
            raise EvaluationError(
                f"cannot change arity of non-empty relation {self.name!r}"
            )
        self._arity = value
        if value is not None and not self._cols:
            self._cols = [_code_col() for _ in range(value)]

    # -- basic protocol --------------------------------------------------
    def __len__(self) -> int:
        return self._nrows - self._ndead

    def __iter__(self) -> Iterator[Fact]:
        self._ensure_resident()
        cols = self._cols
        nrows = self._nrows
        if not cols:  # arity-0 (propositional) extension
            live = self._live
            return iter([() for row in range(nrows) if live[row]])
        # Column-wise lazy decode: zip-of-maps runs the whole row
        # assembly in C.  ``islice`` pins the row count at call time so
        # concurrent appends stay invisible, like the old row loop.
        getitem = self._interner.values.__getitem__
        rows = _islice(
            zip(*[map(getitem, col) for col in cols]), nrows
        )
        if self._ndead:
            return _compress(rows, self._live)
        return rows

    def value_columns(self) -> Optional[List[List[Any]]]:
        """Decoded value columns of the live extension; None for arity-0.

        The column-wise twin of :meth:`__iter__`: each column is one
        C-speed ``map`` over the interner's value list, and no per-row
        tuple is ever built.  Write-back paths that filter on a single
        position (the flush intersects OIDs against the graph before
        touching anything else) read this instead of materializing the
        whole extension as tuples.
        """
        self._ensure_resident()
        cols = self._cols
        if not cols:
            return None
        nrows = self._nrows
        getitem = self._interner.values.__getitem__
        if self._ndead:
            live = self._live
            keep = [row for row in range(nrows) if live[row]]
            return [[getitem(col[row]) for row in keep] for col in cols]
        return [list(map(getitem, _islice(col, nrows))) for col in cols]

    def __contains__(self, fact: Fact) -> bool:
        self._ensure_resident()
        eqrow = self._probe_eqrow(fact)
        return eqrow is not None and self._find(_fnv(eqrow), eqrow) >= 0

    # -- encoding helpers ------------------------------------------------
    def _probe_eqrow(self, fact: Sequence[Any]) -> Optional[Tuple[int, ...]]:
        """Eq-code key of ``fact`` — None when any value is unseen."""
        if self._arity is None or len(fact) != self._arity:
            return None
        probe_eq = self._interner.probe_eq
        out: List[int] = []
        for value in fact:
            code = probe_eq(value)
            if code is None:
                return None
            out.append(code)
        return tuple(out)

    def _row_eq_key(self, row: int) -> Tuple[int, ...]:
        eq = self._interner.eq
        return tuple([eq[col[row]] for col in self._cols])

    def decode_row(self, row: int) -> Fact:
        values = self._interner.values
        return tuple([values[col[row]] for col in self._cols])

    # -- sorted-hash row table --------------------------------------------
    def _find(self, h: int, eqrow: Tuple[int, ...]) -> int:
        """Row id of the (==-level) matching live row, or -1."""
        eq = self._interner.eq
        cols = self._cols
        live = self._live
        sorted_h = self._ht_sorted
        i = bisect_left(sorted_h, h)
        n = len(sorted_h)
        sorted_rows = self._ht_sorted_rows
        while i < n and sorted_h[i] == h:
            row = sorted_rows[i]
            if live[row]:
                for j, col in enumerate(cols):
                    if eq[col[row]] != eqrow[j]:
                        break
                else:
                    return row
            i += 1
        bucket = self._overlay.get(h)
        if bucket is not None:
            for row in bucket:
                if live[row]:
                    for j, col in enumerate(cols):
                        if eq[col[row]] != eqrow[j]:
                            break
                    else:
                        return row
        return -1

    def _rebuild_table(self) -> None:
        """Re-sort all live rows by hash and drop the overlay.

        Vectorized over numpy when available; the pure-Python path keeps
        the backend importable without it.
        """
        self._overlay = {}
        self._overlay_count = 0
        n = self._nrows
        if not n or self._arity is None:
            self._ht_sorted = array("Q")
            self._ht_sorted_rows = array("q")
            return
        if _np is not None:
            hashes = self._row_hashes_np()
            if self._ndead:
                keep = _np.frombuffer(bytes(self._live), dtype=_np.uint8).nonzero()[0]
                hashes = hashes[keep]
            else:
                keep = _np.arange(n, dtype=_np.int64)
            order = _np.argsort(hashes, kind="stable")
            sorted_h = array("Q")
            sorted_h.frombytes(hashes[order].tobytes())
            sorted_rows = array("q")
            sorted_rows.frombytes(keep[order].astype(_np.int64).tobytes())
            self._ht_sorted = sorted_h
            self._ht_sorted_rows = sorted_rows
            return
        eq = self._interner.eq
        cols = self._cols
        live = self._live
        pairs = []
        for row in range(n):
            if live[row]:
                h = _FNV_OFFSET
                for col in cols:
                    h = ((h ^ eq[col[row]]) * _FNV_PRIME) & _U64
                pairs.append((h, row))
        pairs.sort()
        self._ht_sorted = array("Q", [h for h, _ in pairs])
        self._ht_sorted_rows = array("q", [row for _, row in pairs])

    def _row_hashes_np(self) -> Any:
        """uint64 FNV-1a hash per row (vectorized; requires numpy)."""
        eq_np = self._interner.eq_array()
        prime = _np.uint64(_FNV_PRIME)
        hashes = _np.full(self._nrows, _FNV_OFFSET, dtype=_np.uint64)
        for col in self._cols:
            codes = _np.asarray(col, dtype=_np.int64)
            hashes = (hashes ^ eq_np[codes]) * prime
        return hashes

    def _maybe_rebuild(self) -> None:
        if self._overlay_count >= _OVERLAY_LIMIT and (
            3 * self._overlay_count >= len(self._ht_sorted)
        ):
            self._rebuild_table()

    # -- mutation ---------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it is new (``==``-level).

        Value interning takes an inlined dict-hit fast path — only
        unseen values (and bools, whose dict key is tagged) go through
        :meth:`ValueInterner.encode`.  New rows land in the overlay dict;
        the sorted row table absorbs them at the next amortized rebuild.
        """
        if self._spilled:
            self._ensure_resident()
        fact = tuple(fact)
        if self._arity is None:
            self.arity = len(fact)
        elif len(fact) != self._arity:
            raise EvaluationError(
                f"arity mismatch for {self.name!r}: expected {self._arity}, "
                f"got {len(fact)}"
            )
        interner = self._interner
        codes_get = interner._codes.get
        encode = interner.encode
        eq = interner.eq
        codes = []
        h = _FNV_OFFSET
        for value in fact:
            # Bools must miss this fast path: True/1 share a dict slot.
            if value.__class__ is bool:
                code = encode(value)
            else:
                code = codes_get(value)
                if code is None:
                    code = encode(value)
            codes.append(code)
            h = ((h ^ eq[code]) * _FNV_PRIME) & _U64
        eqrow = tuple([eq[c] for c in codes])
        if self._find(h, eqrow) >= 0:
            return False
        row = self._nrows
        for col, code in zip(self._cols, codes):
            col.append(code)
        self._live.append(1)
        self._nrows = row + 1
        self._version += 1
        bucket = self._overlay.get(h)
        if bucket is None:
            self._overlay[h] = [row]
        else:
            bucket.append(row)
        self._overlay_count += 1
        self._maybe_rebuild()
        if self._indexes:
            for position, index in self._indexes.items():
                ibucket = index.get(eqrow[position])
                if ibucket is None:
                    index[eqrow[position]] = [row]
                else:
                    ibucket.append(row)
        if self._composite:
            for positions, index2 in self._composite.items():
                key = tuple([eqrow[p] for p in positions])
                cbucket = index2.get(key)
                if cbucket is None:
                    index2[key] = [row]
                else:
                    cbucket.append(row)
        return True

    def add_many(self, facts: Iterable[Iterable[Any]]) -> int:
        """Insert many facts; returns the number of new ones.

        Large batches take the vectorized bulk path (see
        :meth:`_bulk_insert`); small ones or numpy-free environments
        fall back to per-fact :meth:`add`.
        """
        if self._spilled:
            self._ensure_resident()
        fact_list = facts if isinstance(facts, list) else list(facts)
        keep = self._bulk_insert(fact_list)
        if keep is None:
            added = 0
            add = self.add
            for fact in fact_list:
                if add(fact):
                    added += 1
            return added
        return int(keep.sum())

    def add_many_report(self, facts: Iterable[Fact]) -> List[Fact]:
        """Bulk insert; returns the facts that were new, in batch order.

        Dedup is exactly sequential-:meth:`add` semantics: within the
        batch the first occurrence of an ``==``-level row wins.  Used by
        the engine's commit path, which needs the per-predicate delta
        (the new facts) and not just a count.
        """
        if self._spilled:
            self._ensure_resident()
        fact_list = facts if isinstance(facts, list) else list(facts)
        keep = self._bulk_insert(fact_list)
        if keep is None:
            add = self.add
            return [fact for fact in fact_list if add(fact)]
        keep_list = keep.tolist()
        return [fact for fact, kept in zip(fact_list, keep_list) if kept]

    def add_columns(self, cols: Sequence[Sequence[Any]]) -> int:
        """Insert facts given as parallel value columns; returns #new.

        The column-wise twin of :meth:`add_many`: callers that already
        hold their data as columns (the graph/dictionary extraction
        layer) skip the transpose entirely and feed the vectorized
        insert core directly.  Small batches and numpy-free environments
        fall back to the per-fact path.
        """
        if self._spilled:
            self._ensure_resident()
        col_list = [c if isinstance(c, list) else list(c) for c in cols]
        if self._arity is None:
            self.arity = len(col_list)
        elif len(col_list) != self._arity:
            raise EvaluationError(
                f"arity mismatch for {self.name!r}: expected {self._arity}, "
                f"got {len(col_list)} columns"
            )
        if not col_list:
            return 0
        count = len(col_list[0])
        for col in col_list[1:]:
            if len(col) != count:
                raise EvaluationError(
                    f"ragged columns for {self.name!r}: {len(col)} != {count}"
                )
        if not count:
            return 0
        if _np is not None and count >= 64:
            keep = self._bulk_insert_cols(col_list, count)
            if keep is not None:
                return int(keep.sum())
        added = 0
        add = self.add
        for fact in zip(*col_list):
            if add(fact):
                added += 1
        return added

    def _bulk_insert(self, fact_list: List[Any]) -> Optional[Any]:
        """Vectorized insert; returns the kept-row bool mask.

        Returns ``None`` when the batch is too small or numpy is
        unavailable — the caller falls back to per-fact :meth:`add`.
        """
        if _np is None or len(fact_list) < 64:
            return None
        arity = self._arity
        if arity is None:
            arity = len(fact_list[0])
            self.arity = arity
        for fact in fact_list:
            if len(fact) != arity:
                raise EvaluationError(
                    f"arity mismatch for {self.name!r}: expected {arity}, "
                    f"got {len(fact)}"
                )
        if not arity:
            return None  # propositional facts: per-fact path
        return self._bulk_insert_cols(list(zip(*fact_list)), len(fact_list))

    def _bulk_insert_cols(
        self, val_cols: Sequence[Sequence[Any]], nfacts: int
    ) -> Optional[Any]:
        """Vectorized insert core over value columns; kept-row bool mask.

        Encodes whole columns (one C-speed ``map`` over the interner
        dict per column), dedups on vectorized FNV-1a row hashes
        (suspect hashes are verified exactly, so collisions stay
        correct), extends the columns in one shot, and maintains the
        sorted row table, overlay, any built indexes, and — when it is
        current — the numpy mirror cache including its sorted join keys
        (see :meth:`_npcache_append`).
        """
        if not val_cols:
            return None
        arity = self._arity
        interner = self._interner
        codes_get = interner._codes.get
        encode = interner.encode
        # Column-wise encode, with a per-value fallback only for columns
        # that contain bools (tagged dict keys) or still-unseen values.
        code_cols: List[List[int]] = []
        for col_vals in val_cols:
            if any(v.__class__ is bool for v in col_vals):
                code_cols.append(
                    [
                        encode(v)
                        if v.__class__ is bool or codes_get(v) is None
                        else codes_get(v)
                        for v in col_vals
                    ]
                )
                continue
            raw = list(map(codes_get, col_vals))
            if None in raw:
                raw = interner.encode_fill(col_vals, raw)
            code_cols.append(raw)
        exact = _np.asarray(code_cols, dtype=_np.int32).T
        eq_np = interner.eq_array()
        prime = _np.uint64(_FNV_PRIME)
        hashes = _np.full(nfacts, _FNV_OFFSET, dtype=_np.uint64)
        for j in range(arity):
            hashes = (hashes ^ eq_np[exact[:, j]]) * prime
        # Candidate duplicates: repeated hash within the batch, or hash
        # present in the sorted table or the overlay.
        _, inverse, counts = _np.unique(
            hashes, return_inverse=True, return_counts=True
        )
        suspect_mask = counts[inverse] > 1
        if len(self._ht_sorted):
            table = _np.frombuffer(self._ht_sorted, dtype=_np.uint64)
            pos = _np.searchsorted(table, hashes)
            pos_c = _np.minimum(pos, len(table) - 1)
            suspect_mask |= table[pos_c] == hashes
        if self._overlay:
            overlay_keys = _np.fromiter(
                self._overlay.keys(), dtype=_np.uint64, count=len(self._overlay)
            )
            suspect_mask |= _np.isin(hashes, overlay_keys)
        suspect = suspect_mask.nonzero()[0]
        keep = _np.ones(nfacts, dtype=bool)
        if len(suspect):
            # Resolve the (rare) suspects exactly, in batch order.
            eq = interner.eq
            seen: Dict[Tuple[int, ...], None] = {}
            hashes_list = hashes.tolist()
            for i in suspect.tolist():
                eqrow = tuple([eq[c] for c in exact[i].tolist()])
                if eqrow in seen or self._find(hashes_list[i], eqrow) >= 0:
                    keep[i] = False
                else:
                    seen[eqrow] = None
        added = int(keep.sum())
        if not added:
            return keep
        first_row = self._nrows
        if added != nfacts:
            exact = exact[keep]
            hashes = hashes[keep]
            for j, col in enumerate(self._cols):
                col.extend(exact[:, j].tolist())
        else:
            # All rows kept: extend straight from the probed code lists
            # (skips an array->list round-trip per column).
            for j, col in enumerate(self._cols):
                col.extend(code_cols[j])
        self._live.extend(b"\x01" * added)
        self._nrows += added
        cache = self._npcache
        prev_version = self._version
        self._version += 1
        # Row-table maintenance: big batches re-sort once; small ones
        # land in the overlay like per-fact adds.
        if added >= _OVERLAY_LIMIT or 3 * (
            self._overlay_count + added
        ) >= len(self._ht_sorted):
            self._rebuild_table()
        else:
            overlay = self._overlay
            for offset, h in enumerate(hashes.tolist()):
                bucket = overlay.get(h)
                if bucket is None:
                    overlay[h] = [first_row + offset]
                else:
                    bucket.append(first_row + offset)
            self._overlay_count += added
        if self._indexes or self._composite:
            eq_cols = [eq_np[exact[:, j]].tolist() for j in range(arity)]
            for position, index in self._indexes.items():
                ibucket_get = index.get
                col_keys = eq_cols[position]
                for offset in range(added):
                    key = col_keys[offset]
                    ibucket = ibucket_get(key)
                    if ibucket is None:
                        index[key] = [first_row + offset]
                    else:
                        ibucket.append(first_row + offset)
            for positions, index2 in self._composite.items():
                key_cols = [eq_cols[p] for p in positions]
                cbucket_get = index2.get
                for offset in range(added):
                    key = tuple([kc[offset] for kc in key_cols])
                    cbucket = cbucket_get(key)
                    if cbucket is None:
                        index2[key] = [first_row + offset]
                    else:
                        cbucket.append(first_row + offset)
        self._npcache_append(cache, prev_version, exact, first_row, added)
        return keep

    def _npcache_append(
        self, cache: Optional[Dict[str, Any]], prev_version: int,
        exact: Any, first_row: int, added: int,
    ) -> None:
        """Extend the numpy mirror cache instead of invalidating it.

        This is the incremental sorted-join-key maintenance of the chase
        inner loop: each commit's delta merges into the existing sorted
        ``np_join_key`` arrays, so iteration ``k+1`` pays O(delta log
        delta + n) for the merge instead of O(n log n) for a full
        re-sort of every key shape in use.

        Only the bulk-insert path calls this (new rows are all live and
        appended at the end).  The merged keys are bit-identical to a
        full rebuild: the rebuild stable-argsorts keys taken in
        ascending row order, and since every new row id exceeds every
        existing one, inserting the (stable-sorted) new block at
        ``searchsorted(side="right")`` positions reproduces exactly the
        tie order the full stable sort would produce.  A cache whose
        version predates this batch (per-fact adds or removes happened
        since it was built) is left alone and rebuilds lazily.
        """
        if cache is None or cache["version"] != prev_version:
            return
        new_cols = [
            _np.ascontiguousarray(exact[:, j]) for j in range(exact.shape[1])
        ]
        cache["cols"] = [
            _np.concatenate((old, new))
            for old, new in zip(cache["cols"], new_cols)
        ]
        new_rows = _np.arange(first_row, first_row + added, dtype=_np.int64)
        cache["rows"] = _np.concatenate((cache["rows"], new_rows))
        keys_cache = cache["keys"]
        if keys_cache:
            prime = _np.uint64(_FNV_PRIME)
            merged: Dict[Tuple[int, ...], Tuple[Any, Any]] = {}
            offsets = _np.arange(added)
            for positions, (skeys, srows) in keys_cache.items():
                if len(positions) == 1:
                    nk = new_cols[positions[0]]
                else:
                    nk = _np.full(added, _FNV_OFFSET, dtype=_np.uint64)
                    for position in positions:
                        nk = (
                            nk ^ new_cols[position].astype(_np.uint64)
                        ) * prime
                norder = _np.argsort(nk, kind="stable")
                nk = nk[norder]
                nrows_sorted = new_rows[norder]
                idx_new = _np.searchsorted(skeys, nk, side="right") + offsets
                total = len(skeys) + added
                mkeys = _np.empty(total, dtype=skeys.dtype)
                mrows = _np.empty(total, dtype=srows.dtype)
                new_mask = _np.zeros(total, dtype=bool)
                new_mask[idx_new] = True
                mkeys[idx_new] = nk
                mrows[idx_new] = nrows_sorted
                old_mask = ~new_mask
                mkeys[old_mask] = skeys
                mrows[old_mask] = srows
                merged[positions] = (mkeys, mrows)
            cache["keys"] = merged
        cache["version"] = self._version

    def remove(self, fact: Fact) -> bool:
        """Delete a fact (``==``-level); returns True when present.

        Deletion tombstones the row: columns and index buckets keep the
        slot (probes skip dead rows), and :meth:`compact` reclaims space
        at engine safe points.  This keeps every maintenance step O(1)
        — the tuple backend paid an O(bucket) ``list.remove`` here.
        """
        if self._spilled:
            self._ensure_resident()
        eqrow = self._probe_eqrow(tuple(fact))
        if eqrow is None:
            return False
        row = self._find(_fnv(eqrow), eqrow)
        if row < 0:
            return False
        self._live[row] = 0
        self._ndead += 1
        self._version += 1
        return True

    def reset(self, facts: Iterable[Iterable[Any]]) -> None:
        """Replace the whole extension; indexes rebuild lazily."""
        self._clear_storage()
        self.add_many(facts)

    def _clear_storage(self) -> None:
        self._cols = [_code_col() for _ in range(self._arity)] if self._arity else []
        self._nrows = 0
        self._live = bytearray()
        self._ndead = 0
        self._ht_sorted = array("Q")
        self._ht_sorted_rows = array("q")
        self._overlay = {}
        self._overlay_count = 0
        self._indexes = {}
        self._composite = {}
        self._spilled = False
        self._version += 1
        self._npcache = None

    def copy(self, interner: Optional[ValueInterner] = None) -> "ColumnarRelation":
        """A fresh relation with the same facts; indexes rebuild lazily."""
        self._ensure_resident()
        clone = ColumnarRelation(
            self.name,
            self._arity,
            interner if interner is not None else self._interner,
        )
        if interner is not None and interner is not self._interner:
            clone.add_many(self)
            return clone
        clone._cols = [col[:] for col in self._cols]
        clone._nrows = self._nrows
        clone._live = bytearray(self._live)
        clone._ndead = self._ndead
        clone._ht_sorted = self._ht_sorted[:]
        clone._ht_sorted_rows = self._ht_sorted_rows[:]
        clone._overlay = {h: list(b) for h, b in self._overlay.items()}
        clone._overlay_count = self._overlay_count
        return clone

    def compact(self) -> None:
        """Drop tombstoned rows and stale buckets (engine safe points only).

        Renumbers rows, so callers must not hold live index iterators.
        """
        if not self._ndead:
            return
        live = self._live
        keep = [row for row in range(self._nrows) if live[row]]
        self._cols = [
            array(_CODE, [col[row] for row in keep]) for col in self._cols
        ]
        self._nrows = len(keep)
        self._live = bytearray(b"\x01" * self._nrows)
        self._ndead = 0
        self._indexes = {}
        self._composite = {}
        self._version += 1
        self._npcache = None
        self._rebuild_table()

    # -- indexes -----------------------------------------------------------
    def _ensure_index(self, position: int) -> Dict[int, List[int]]:
        index = self._indexes.get(position)
        if index is None:
            if _np is not None and self._nrows >= 4096:
                index = self._np_index((position,))
            else:
                index = {}
                eq = self._interner.eq
                col = self._cols[position]
                live = self._live
                for row in range(self._nrows):
                    if live[row]:
                        key = eq[col[row]]
                        bucket = index.get(key)
                        if bucket is None:
                            index[key] = [row]
                        else:
                            bucket.append(row)
            self._indexes[position] = index
        return index

    def _ensure_composite(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[int, ...], List[int]]:
        index = self._composite.get(positions)
        if index is None:
            if _np is not None and self._nrows >= 4096:
                index = self._np_index(positions, tuple_keys=True)
            else:
                index = {}
                eq = self._interner.eq
                cols = [self._cols[p] for p in positions]
                live = self._live
                for row in range(self._nrows):
                    if live[row]:
                        key = tuple([eq[col[row]] for col in cols])
                        bucket = index.get(key)
                        if bucket is None:
                            index[key] = [row]
                        else:
                            bucket.append(row)
            self._composite[positions] = index
        return index

    def _np_index(
        self, positions: Tuple[int, ...], tuple_keys: bool = False
    ) -> Dict[Any, List[int]]:
        """Vectorized bucket build: stable sort live rows by eq key and
        split on key boundaries.  Bucket contents keep ascending row
        order, exactly like the per-row loop."""
        eq_np = self._interner.eq_array()
        live_idx = _np.frombuffer(bytes(self._live), dtype=_np.uint8).nonzero()[0]
        key_cols = [
            eq_np[_np.asarray(self._cols[p], dtype=_np.int64)[live_idx]]
            for p in positions
        ]
        if len(key_cols) == 1:
            order = _np.argsort(key_cols[0], kind="stable")
        else:
            # lexsort: primary key last, stable — within-group row order
            # stays ascending.
            order = _np.lexsort(tuple(reversed(key_cols)))
        rows_sorted = live_idx[order]
        sorted_cols = [col[order] for col in key_cols]
        if len(rows_sorted) == 0:
            return {}
        change = _np.zeros(len(rows_sorted), dtype=bool)
        for col in sorted_cols:
            change[1:] |= col[1:] != col[:-1]
        bounds = change.nonzero()[0].tolist()
        bounds.append(len(rows_sorted))
        rows_list = rows_sorted.tolist()
        key_lists = [col.tolist() for col in sorted_cols]
        index: Dict[Any, List[int]] = {}
        prev = 0
        if tuple_keys:
            for bound in bounds:
                index[tuple([kl[prev] for kl in key_lists])] = rows_list[prev:bound]
                prev = bound
        else:
            keys = key_lists[0]
            for bound in bounds:
                index[keys[prev]] = rows_list[prev:bound]
                prev = bound
        return index

    # -- vectorized join support (execute_plan_vectorized) ---------------
    def np_columns(self) -> Tuple[List[Any], Any]:
        """(int64 column arrays, live row-id array) — cached per version."""
        if self._spilled:
            self._ensure_resident()
        cache = self._npcache
        if cache is None or cache["version"] != self._version:
            cols = [_np.array(col, dtype=_np.int32) for col in self._cols]
            if self._ndead:
                rows = _np.frombuffer(
                    bytes(self._live), dtype=_np.uint8
                ).nonzero()[0]
            else:
                rows = _np.arange(self._nrows, dtype=_np.int64)
            cache = {"version": self._version, "cols": cols, "rows": rows,
                     "keys": {}}
            self._npcache = cache
        return cache["cols"], cache["rows"]

    def np_join_key(self, positions: Tuple[int, ...]) -> Tuple[Any, Any]:
        """(sorted key array, live row ids in key order) for a key shape.

        Single-position keys sort the raw exact codes (collision-free);
        multi-position keys fold exact codes with FNV-1a, so callers
        must exact-verify matches after expansion.  Cached per relation
        version — within one chase iteration every rule joining on the
        same positions reuses one sort.
        """
        cols, rows = self.np_columns()
        cache = self._npcache
        entry = cache["keys"].get(positions)
        if entry is None:
            if len(positions) == 1:
                keys = cols[positions[0]][rows]
            else:
                keys = _np.full(len(rows), _FNV_OFFSET, dtype=_np.uint64)
                prime = _np.uint64(_FNV_PRIME)
                for position in positions:
                    keys = (
                        keys ^ cols[position][rows].astype(_np.uint64)
                    ) * prime
            order = _np.argsort(keys, kind="stable")
            entry = (keys[order], rows[order])
            cache["keys"][positions] = entry
        return entry

    def candidate_rows(
        self, positions: Tuple[int, ...], eq_key: Tuple[int, ...]
    ) -> Sequence[int]:
        """Row-id bucket for an eq-code key (batch executor fast path).

        Buckets may contain tombstoned rows; callers must check
        :attr:`live_rows`.
        """
        if self._spilled:
            self._ensure_resident()
        if not self._nrows:
            return ()
        ncols = len(self._cols)
        if len(positions) == 1:
            position = positions[0]
            if position >= ncols:
                return ()
            index = self._indexes.get(position)
            if index is None:
                index = self._ensure_index(position)
            return index.get(eq_key[0], ())
        for position in positions:
            if position >= ncols:
                return ()
        index2 = self._composite.get(positions)
        if index2 is None:
            index2 = self._ensure_composite(positions)
        return index2.get(eq_key, ())

    @property
    def live_rows(self) -> bytearray:
        return self._live

    @property
    def columns(self) -> List[array]:
        return self._cols

    @property
    def has_dead_rows(self) -> bool:
        return self._ndead > 0

    def all_rows(self) -> Iterator[int]:
        self._ensure_resident()
        live = self._live
        if not self._ndead:
            return iter(range(self._nrows))
        return (row for row in range(self._nrows) if live[row])

    # -- facade lookups ----------------------------------------------------
    def lookup_key(
        self, positions: Tuple[int, ...], key: Tuple[Any, ...]
    ) -> Iterable[Fact]:
        """Exact-match candidates for values ``key`` at ``positions``.

        Same contract as the tuple backend: buckets are ``==``-keyed, so
        callers still apply their own values_equal verification.
        """
        self._ensure_resident()
        probe_eq = self._interner.probe_eq
        eq_key: List[int] = []
        for value in key:
            code = probe_eq(value)
            if code is None:
                return ()
            eq_key.append(code)
        bucket = self.candidate_rows(positions, tuple(eq_key))
        if not bucket:
            return ()
        live = self._live
        decode = self.decode_row
        return [decode(row) for row in bucket if live[row]]

    def lookup(self, bound: Sequence[Tuple[int, Any]]) -> Iterator[Fact]:
        """Iterate facts matching (position, value) constraints.

        Matching is values_equal-strict (satellite fix: the tuple
        backend's ``==`` filter equated 1/1.0/True).
        """
        self._ensure_resident()
        if not bound:
            yield from self
            return
        if not self._nrows or any(p >= len(self._cols) for p, _ in bound):
            return
        interner = self._interner
        best_bucket: Optional[List[int]] = None
        exact: List[Tuple[int, Optional[int]]] = []
        for position, value in bound:
            eq_code = interner.probe_eq(value)
            if eq_code is None:
                return
            bucket = self._ensure_index(position).get(eq_code)
            if bucket is None:
                return
            exact.append((position, interner.probe(value)))
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_bucket = bucket
        live = self._live
        cols = self._cols
        for row in best_bucket or ():
            if not live[row]:
                continue
            for position, code in exact:
                if code is None or cols[position][row] != code:
                    break
            else:
                yield self.decode_row(row)

    # -- spill-to-disk -----------------------------------------------------
    def attach_store(self, store: "SpillStore") -> None:
        self._store = store

    @property
    def spilled(self) -> bool:
        return self._spilled

    def spill(self) -> int:
        """Write column pages to the attached store and free memory.

        Returns the number of facts now cold.  ``len`` stays accurate
        without rehydration; any other access rehydrates transparently.
        """
        if self._spilled or self._store is None:
            return 0
        if self._arity is None or not self._nrows:
            return 0
        self.compact()
        count = self._nrows
        self._store.write(self.name, self._arity, self._cols)
        self._cols = [_code_col() for _ in range(self._arity)]
        self._ht_sorted = array("Q")
        self._ht_sorted_rows = array("q")
        self._overlay = {}
        self._overlay_count = 0
        self._indexes = {}
        self._composite = {}
        self._spilled = True
        self._npcache = None
        return count

    def _ensure_resident(self) -> None:
        if not self._spilled:
            return
        assert self._store is not None
        cols = self._store.read(self.name, self._arity or 0)
        self._spilled = False
        self._cols = cols
        self._version += 1
        self._rebuild_table()


class SpillStore:
    """sqlite3-backed cold storage for columnar pages.

    One row per (relation, column, page): codes are packed as raw
    code-column (``array('i')``) bytes, so round-trips are exact and
    cheap.  The
    interner always stays in memory — codes are only meaningful within
    the owning database's process.
    """

    PAGE_ROWS = 8192

    def __init__(self, path: Optional[str] = None):
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".sqlite3")
            os.close(fd)
            self._own_file = True
        else:
            self._own_file = False
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS pages ("
            " rel TEXT NOT NULL, col INTEGER NOT NULL, page INTEGER NOT NULL,"
            " data BLOB NOT NULL, PRIMARY KEY (rel, col, page))"
        )
        self._conn.commit()

    def write(self, name: str, arity: int, cols: List[Sequence[int]]) -> None:
        cur = self._conn.cursor()
        cur.execute("DELETE FROM pages WHERE rel = ?", (name,))
        page_rows = self.PAGE_ROWS
        for col_no in range(arity):
            col = cols[col_no]
            for page_no, start in enumerate(range(0, len(col), page_rows)):
                blob = array(_CODE, col[start : start + page_rows]).tobytes()
                cur.execute(
                    "INSERT INTO pages (rel, col, page, data) VALUES (?, ?, ?, ?)",
                    (name, col_no, page_no, blob),
                )
        self._conn.commit()

    def read(self, name: str, arity: int) -> List[array]:
        cols = [_code_col() for _ in range(arity)]
        cur = self._conn.execute(
            "SELECT col, page, data FROM pages WHERE rel = ? ORDER BY col, page",
            (name,),
        )
        for col_no, _page, blob in cur:
            cols[col_no].frombytes(blob)
        return cols

    def close(self) -> None:
        try:
            self._conn.close()
        finally:
            if self._own_file:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    def __del__(self) -> None:  # best-effort cleanup of temp files
        try:
            self.close()
        except Exception:
            pass
