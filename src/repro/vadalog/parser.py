"""Parser for the Vadalog concrete syntax.

The paper presents Vadalog in mathematical notation (Example 4.2); this
module defines the faithful ASCII grammar the library accepts:

.. code-block:: none

    program     := (rule | fact | annotation)*
    rule        := body "->" head "."
    fact        := atom "."
    body        := literal ("," literal)*
    literal     := "not" atom | atom | assignment | condition
    head        := atom ("," atom)*
    atom        := predicate "(" [term ("," term)*] ")"
    term        := VAR | constant | skolem
    skolem      := "#" IDENT "(" [term ("," term)*] ")"     (heads only)
    assignment  := VAR "=" expression
    condition   := expression cmp expression                 cmp in == != < <= > >=
    expression  := arithmetic over terms, functions, aggregates
    aggregate   := AGG "(" expression ["," "<" VAR ("," VAR)* ">"] ")"
    annotation  := "@" IDENT "(" [const ("," const)*] ")" "."

Identifier convention (standard Datalog): a leading uppercase letter or
underscore makes a variable; lowercase identifiers are symbol constants in
term positions and predicate names in atom positions.  ``true``/``false``
are Boolean constants.  Example:

.. code-block:: none

    company(X) -> controls(X, X).
    controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5
        -> controls(X, Y).
    @output("controls").
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import ParseError
from repro.lexing import TokenStream
from repro.vadalog.ast import (
    AggregateCall,
    Annotation,
    Assignment,
    Atom,
    BinOp,
    Condition,
    FunctionCall,
    NegatedAtom,
    Program,
    Rule,
    SkolemTerm,
    TermExpr,
    TermExpr as _TermExpr,
)
from repro.vadalog.terms import ANONYMOUS, Variable

#: Recognized aggregation function names (m-prefixed = monotonic variants).
AGGREGATE_FUNCTIONS = {
    "sum", "msum", "count", "mcount", "min", "mmin", "max", "mmax",
    "prod", "mprod", "avg",
}

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


def parse_program(text: str) -> Program:
    """Parse a full Vadalog program from text."""
    return _Parser(TokenStream.from_text(text)).program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (convenience for tests and examples)."""
    program = parse_program(text)
    if len(program.rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(program.rules)}")
    return program.rules[0]


class _Parser:
    def __init__(self, stream: TokenStream):
        self.stream = stream

    # ------------------------------------------------------------------
    def program(self) -> Program:
        program = Program()
        while not self.stream.at_eof():
            if self.stream.at_punct("@"):
                program.annotations.append(self.annotation())
            else:
                program.rules.append(self.rule_or_fact())
        return program

    def annotation(self) -> Annotation:
        self.stream.expect_punct("@")
        name = self.stream.expect("IDENT").value
        arguments: List[Any] = []
        self.stream.expect_punct("(")
        if not self.stream.at_punct(")"):
            arguments.append(self._annotation_argument())
            while self.stream.accept_punct(","):
                arguments.append(self._annotation_argument())
        self.stream.expect_punct(")")
        self.stream.expect_punct(".")
        return Annotation(str(name), tuple(arguments))

    def _annotation_argument(self) -> Any:
        token = self.stream.current
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return token.value
        if token.kind == "IDENT":
            self.stream.advance()
            return token.value
        raise self.stream.error("annotation arguments must be constants")

    def rule_or_fact(self) -> Rule:
        body = [self.body_literal()]
        while self.stream.accept_punct(","):
            body.append(self.body_literal())
        if self.stream.accept_punct("->"):
            head = [self.head_atom()]
            while self.stream.accept_punct(","):
                head.append(self.head_atom())
            self.stream.expect_punct(".")
            return Rule(tuple(body), tuple(head))
        # A bare atom followed by "." is a fact: an empty-body rule.
        self.stream.expect_punct(".")
        if len(body) != 1 or not isinstance(body[0], Atom):
            raise self.stream.error("fact must be a single atom")
        return Rule((), (body[0],))

    # ------------------------------------------------------------------
    # Body
    # ------------------------------------------------------------------
    def body_literal(self):
        if self.stream.at_ident("not"):
            self.stream.advance()
            return NegatedAtom(self.atom(allow_skolem=False))
        # Assignment:  VAR = expression   (but VAR == x is a condition)
        if (
            self.stream.at("IDENT")
            and _is_variable_name(self.stream.current.value)
            and self.stream.peek().kind == "PUNCT"
            and self.stream.peek().value == "="
        ):
            target = Variable(self.stream.advance().value)
            self.stream.expect_punct("=")
            return Assignment(target, self.expression())
        # Atom: IDENT followed by "(" with no comparison after the closing
        # paren would also match a function-call condition; try atom first.
        checkpoint = self.stream.save()
        if self.stream.at("IDENT") and self.stream.peek().value == "(":
            try:
                atom = self.atom(allow_skolem=False)
            except ParseError:
                self.stream.restore(checkpoint)
            else:
                if not (
                    self.stream.at("PUNCT")
                    and self.stream.current.value in _COMPARISONS
                ):
                    return atom
                self.stream.restore(checkpoint)
        # Otherwise: a comparison condition.
        left = self.expression()
        token = self.stream.current
        if token.kind == "PUNCT" and token.value in _COMPARISONS:
            op = self.stream.advance().value
            right = self.expression()
            return Condition(str(op), left, right)
        raise self.stream.error("expected atom, assignment, or condition")

    # ------------------------------------------------------------------
    # Atoms and terms
    # ------------------------------------------------------------------
    def atom(self, allow_skolem: bool) -> Atom:
        predicate = self.stream.expect("IDENT").value
        self.stream.expect_punct("(")
        terms: List[Any] = []
        if not self.stream.at_punct(")"):
            terms.append(self.term(allow_skolem))
            while self.stream.accept_punct(","):
                terms.append(self.term(allow_skolem))
        self.stream.expect_punct(")")
        return Atom(str(predicate), tuple(terms))

    def head_atom(self) -> Atom:
        return self.atom(allow_skolem=True)

    def term(self, allow_skolem: bool) -> Any:
        token = self.stream.current
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return token.value
        if token.kind == "PUNCT" and token.value == "-":
            self.stream.advance()
            number = self.stream.expect("NUMBER")
            return -number.value
        if token.kind == "PUNCT" and token.value == "#":
            if not allow_skolem:
                raise self.stream.error("Skolem terms are only allowed in rule heads")
            return self.skolem_term()
        if token.kind == "IDENT":
            self.stream.advance()
            name = str(token.value)
            if name == "true":
                return True
            if name == "false":
                return False
            if name == "_":
                return ANONYMOUS
            if _is_variable_name(name):
                return Variable(name)
            return name  # lowercase identifier: a symbol constant
        raise self.stream.error(f"expected a term, found {token.value!r}")

    def skolem_term(self) -> SkolemTerm:
        self.stream.expect_punct("#")
        functor = self.stream.expect("IDENT").value
        self.stream.expect_punct("(")
        arguments: List[Any] = []
        if not self.stream.at_punct(")"):
            arguments.append(self.term(allow_skolem=False))
            while self.stream.accept_punct(","):
                arguments.append(self.term(allow_skolem=False))
        self.stream.expect_punct(")")
        return SkolemTerm(str(functor), tuple(arguments))

    # ------------------------------------------------------------------
    # Expressions: standard precedence  (* / %) over (+ -)
    # ------------------------------------------------------------------
    def expression(self):
        left = self.mul_expression()
        while self.stream.at("PUNCT") and self.stream.current.value in ("+", "-"):
            op = self.stream.advance().value
            right = self.mul_expression()
            left = BinOp(str(op), left, right)
        return left

    def mul_expression(self):
        left = self.unary_expression()
        while self.stream.at("PUNCT") and self.stream.current.value in ("*", "/", "%"):
            op = self.stream.advance().value
            right = self.unary_expression()
            left = BinOp(str(op), left, right)
        return left

    def unary_expression(self):
        if self.stream.accept_punct("-"):
            operand = self.unary_expression()
            return BinOp("-", TermExpr(0), operand)
        return self.primary_expression()

    def primary_expression(self):
        token = self.stream.current
        if token.kind == "PUNCT" and token.value == "(":
            self.stream.advance()
            inner = self.expression()
            self.stream.expect_punct(")")
            return inner
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return TermExpr(token.value)
        if token.kind == "IDENT":
            name = str(token.value)
            # Function or aggregate call
            if self.stream.peek().kind == "PUNCT" and self.stream.peek().value == "(":
                self.stream.advance()
                if name in AGGREGATE_FUNCTIONS:
                    return self.aggregate_call(name)
                return self.function_call(name)
            self.stream.advance()
            if name == "true":
                return TermExpr(True)
            if name == "false":
                return TermExpr(False)
            if _is_variable_name(name):
                return TermExpr(Variable(name))
            return TermExpr(name)
        raise self.stream.error(f"expected an expression, found {token.value!r}")

    def function_call(self, name: str) -> FunctionCall:
        self.stream.expect_punct("(")
        arguments: List[Any] = []
        if not self.stream.at_punct(")"):
            arguments.append(self.expression())
            while self.stream.accept_punct(","):
                arguments.append(self.expression())
        self.stream.expect_punct(")")
        return FunctionCall(name, tuple(arguments))

    def aggregate_call(self, name: str) -> AggregateCall:
        self.stream.expect_punct("(")
        value = self.expression()
        contributors: Tuple[Variable, ...] = ()
        if self.stream.accept_punct(","):
            self.stream.expect_punct("<")
            names = [self._contributor_name(name)]
            while self.stream.accept_punct(","):
                names.append(self._contributor_name(name))
            self.stream.expect_punct(">")
            contributors = tuple(Variable(n) for n in names)
        self.stream.expect_punct(")")
        return AggregateCall(name, value, contributors)

    def _contributor_name(self, aggregate: str) -> str:
        """One contributor in ``<z, ...>`` — must name a variable.

        A lowercase identifier here would otherwise be silently coerced
        into a fresh variable that binds nothing, making every body match
        contribute under the same key — a data-dependent wrong answer
        rather than an error.
        """
        token = self.stream.expect("IDENT")
        name = str(token.value)
        if not _is_variable_name(name):
            raise self.stream.error(
                f"contributor {name!r} in {aggregate}(...) is not a variable "
                f"(variables start with an uppercase letter or underscore)"
            )
        return name


def _is_variable_name(name: str) -> bool:
    """Datalog convention: leading uppercase or underscore = variable."""
    return bool(name) and (name[0].isupper() or name[0] == "_")
