"""Input/output bindings for Vadalog programs.

Example 4.4 of the paper shows how MTV populates relational atoms from the
input sources "via automatically generated annotations of the form
``@input(atom, query)``, where ``atom`` is the relational atom name and
``query`` is expressed in the target system language".

This module provides the small adapter layer: a :class:`Source` executes a
query string in its own language and yields tuples; :func:`resolve_inputs`
walks a program's ``@input`` annotations and loads the facts from a
registry of named sources.  The in-memory target systems of
:mod:`repro.deploy` implement the :class:`Source` protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Protocol, Sequence, Tuple

from repro.errors import EvaluationError
from repro.vadalog.ast import Program
from repro.vadalog.database import Database


class Source(Protocol):
    """A data source able to serve ``@input`` queries."""

    def extract(self, query: str) -> Iterable[Sequence[Any]]:
        """Execute ``query`` in the source's language, yield fact tuples."""
        ...


def resolve_inputs(
    program: Program,
    sources: Dict[str, Source],
    default_source: str = None,
) -> Database:
    """Load a database from the program's ``@input`` annotations.

    An annotation ``@input("pred")`` with no query pulls the predicate
    verbatim (the source decides what that means, typically a full scan);
    ``@input("pred", "query")`` runs the query against the default source;
    ``@input("pred", "query", "source")`` selects the source by name.
    """
    database = Database()
    for predicate, annotation in program.input_predicates().items():
        arguments = annotation.arguments
        query = str(arguments[1]) if len(arguments) > 1 else predicate
        source_name = str(arguments[2]) if len(arguments) > 2 else default_source
        if source_name is None:
            if len(sources) == 1:
                source_name = next(iter(sources))
            else:
                raise EvaluationError(
                    f"@input({predicate!r}) does not name a source and no "
                    f"default is set"
                )
        source = sources.get(source_name)
        if source is None:
            raise EvaluationError(
                f"unknown source {source_name!r} for @input({predicate!r})"
            )
        database.add_all(predicate, (tuple(row) for row in source.extract(query)))
    return database
