"""Incremental maintenance for the chase engine.

The paper's production pipeline rematerializes the whole KG on every
registry refresh (Section 6).  This module maintains a saturated chase
result under extensional *deltas* instead, in time proportional to the
change:

- **Insertions** propagate stratum-by-stratum with the semi-naive delta
  plans of :mod:`repro.vadalog.plan`, generalized from "recursive
  predicates" to "changed predicates": for the k-th changed body
  occurrence chosen as the delta atom, earlier changed occurrences are
  restricted to old facts and later ones see the full relation — an
  exact partition of the new matches.  Monotone aggregate rules reuse
  the **saturated accumulator** retained from the base run: new
  contributions are delta-joined into it and only touched groups are
  re-emitted, so a single new stake updates ``msum`` in O(|delta|).

- **Deletions** run DRed (delete/re-derive): the downward closure of
  the retracted facts is over-deleted with the same join plans (the
  removed facts are temporarily re-added so the closure joins see the
  *old* world), then each over-deleted fact gets a goal-directed
  re-derivation attempt through :meth:`RulePlans.rederive_plan`, and
  survivors cascade through the normal insertion pass.  With
  ``track_support=True`` the over-deletion walk follows recorded
  support sets instead of re-joining (bounded memory: at most
  :data:`SupportIndex.MAX_SUPPORTS` supports per fact — the walk may
  over-mark when a support was evicted, which re-derivation corrects).

- **Non-maintainable strata** — negation over changed predicates,
  deletions reaching aggregate or existential rules, non-monotone
  aggregates, existential heads whose writers fail the safety gate —
  **recompute from their stratum boundary**: the stratum's derived
  predicates reset to the post-update extensional baseline and the
  engine's own ``_evaluate_stratum`` re-runs, mirroring the
  serial-barrier precedent in :mod:`repro.vadalog.parallel`.  The
  before/after diff then feeds downstream strata as an ordinary delta.

Labeled nulls minted during maintenance continue the retained
:class:`NullFactory` counter, so incremental ordinals differ from a
from-scratch run; results are equal **up to null renaming** (the
differential battery canonicalizes nulls before comparing).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError, ResourceLimitError
from repro.vadalog.engine import EvaluationStats, _BudgetStop, _hashable
from repro.vadalog.aggregates import GroupAccumulator, aggregate, is_monotonic
from repro.vadalog.ast import (
    AggregateCall,
    Atom,
    BinOp,
    Condition,
    FunctionCall,
    Program,
    Rule,
    TermExpr,
)
from repro.vadalog.database import Database, Fact
from repro.vadalog.plan import (
    _K_CONST,
    _K_EXIST,
    _K_SKOLEM,
    _K_VAR,
    RulePlans,
    check_condition,
    evaluate_expression,
    execute_plan,
    values_equal,
)
from repro.vadalog.stratify import Stratum
from repro.vadalog.terms import SkolemValue, Variable

Substitution = Dict[Variable, Any]
FactKey = Tuple[str, Fact]


# ---------------------------------------------------------------------------
# Retained state
# ---------------------------------------------------------------------------


class SupportIndex:
    """Bounded per-fact support sets recorded during the chase.

    A *support* of a derived fact is one instantiation of the positive
    body that produced it.  The index keeps at most
    :data:`MAX_SUPPORTS` supports per fact plus an inverted dependents
    map, so the deletion walk can follow ``removed fact -> facts it
    supported`` without re-running joins.  Eviction (supports beyond
    the bound) only ever causes *over*-marking — a fact whose surviving
    support was evicted gets marked, and the re-derivation pass brings
    it back — never under-deletion.
    """

    MAX_SUPPORTS = 4

    __slots__ = ("supports", "dependents")

    def __init__(self) -> None:
        self.supports: Dict[FactKey, List[Tuple[FactKey, ...]]] = {}
        self.dependents: Dict[FactKey, Set[FactKey]] = {}

    def record(self, head: FactKey, body: Tuple[FactKey, ...]) -> None:
        entries = self.supports.setdefault(head, [])
        if len(entries) >= self.MAX_SUPPORTS or body in entries:
            return
        entries.append(body)
        for member in body:
            self.dependents.setdefault(member, set()).add(head)

    def discard(self, head: FactKey) -> None:
        """Drop every recorded support of ``head`` (it has been deleted)."""
        entries = self.supports.pop(head, None)
        if not entries:
            return
        for body in entries:
            for member in body:
                deps = self.dependents.get(member)
                if deps is not None:
                    deps.discard(head)
                    if not deps:
                        del self.dependents[member]

    def total_supports(self) -> int:
        return sum(len(entries) for entries in self.supports.values())


@dataclass
class _AggregateState:
    """The saturated accumulator of one aggregate rule after a run."""

    accumulator: GroupAccumulator
    witnesses: Dict[Tuple[Any, ...], Substitution]
    group_vars: Tuple[Variable, ...]


class MaterializedState:
    """Everything :func:`apply_delta` needs to maintain a chase result.

    Built by :meth:`Engine.run` when ``retain_state=True``: the live
    database, the stratification, the extensional snapshot, per-stratum
    fact partitions (frozen), saturated aggregate accumulators, and the
    null/Skolem factories (so maintenance continues their counters).
    """

    __slots__ = (
        "program", "working", "strata", "database", "nulls", "skolems",
        "edb", "per_stratum", "aggregates", "support", "engine",
        "updates_applied",
    )

    def __init__(
        self,
        program: Program,
        working: Program,
        strata: Sequence[Stratum],
        database: Database,
        nulls: Any,
        skolems: Dict[str, Any],
    ) -> None:
        self.program = program
        self.working = working
        self.strata = list(strata)
        self.database = database
        self.nulls = nulls
        self.skolems = skolems
        self.edb: Dict[str, Set[Fact]] = {}
        self.per_stratum: List[Dict[str, FrozenSet[Fact]]] = []
        self.aggregates: Dict[Rule, _AggregateState] = {}
        self.support: Optional[SupportIndex] = None
        self.engine: Any = None
        self.updates_applied = 0

    # -- hooks called by the engine -------------------------------------
    def store_aggregate(
        self,
        rule: Rule,
        accumulator: GroupAccumulator,
        witnesses: Dict[Tuple[Any, ...], Substitution],
        group_vars: Sequence[Variable],
    ) -> None:
        """Keep the saturated accumulator of ``rule`` (last iteration wins).

        Witnesses are projected to the group variables: the insertion
        gate only admits aggregate rules whose head and conditions need
        nothing beyond ``group_vars`` and the target, so full
        substitutions would retain arbitrarily many bindings for no
        benefit (bounded memory).
        """
        group_tuple = tuple(group_vars)
        projected = {
            group: {v: base[v] for v in group_tuple if v in base}
            for group, base in witnesses.items()
        }
        self.aggregates[rule] = _AggregateState(accumulator, projected, group_tuple)

    # -- snapshots -------------------------------------------------------
    def per_stratum_snapshot(self) -> Dict[int, Dict[str, FrozenSet[Fact]]]:
        """Stable per-stratum fact partitions (see the result API docs)."""
        snapshot: Dict[int, Dict[str, FrozenSet[Fact]]] = {
            index: dict(partition)
            for index, partition in enumerate(self.per_stratum)
        }
        owned: Set[str] = set()
        for stratum in self.strata:
            owned.update(stratum.predicates)
        snapshot[-1] = {
            predicate: frozenset(self.database.relation(predicate))
            for predicate in sorted(self.database.predicates())
            if predicate not in owned
        }
        return snapshot

    def refresh_stratum_snapshot(self, index: int) -> None:
        if index < len(self.per_stratum):
            self.per_stratum[index] = {
                predicate: frozenset(self.database.relation(predicate))
                for predicate in sorted(self.strata[index].predicates)
            }


# ---------------------------------------------------------------------------
# Delta results
# ---------------------------------------------------------------------------


@dataclass
class DeltaResult:
    """Net per-predicate changes produced by one :func:`apply_delta` call.

    ``added``/``removed`` include the applied extensional changes, so a
    caller chaining materialized states (the SSST materializer runs
    three) can feed one state's net changes directly into the next.
    """

    added: Dict[str, Set[Fact]] = field(default_factory=dict)
    removed: Dict[str, Set[Fact]] = field(default_factory=dict)
    strata_skipped: int = 0
    strata_incremental: int = 0
    strata_recomputed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    skipped_removals: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_added(self) -> int:
        return sum(len(facts) for facts in self.added.values())

    @property
    def total_removed(self) -> int:
        return sum(len(facts) for facts in self.removed.values())

    def changed(self) -> bool:
        return bool(self.added) or bool(self.removed)


# ---------------------------------------------------------------------------
# Safety classification
# ---------------------------------------------------------------------------

_SKIP = "skip"
_INCREMENTAL = "incremental"
_RECOMPUTE = "recompute"


def _positive_reads(rule: Rule) -> Set[str]:
    return {atom.predicate for atom in rule.body_atoms()}


def _negated_reads(rule: Rule) -> Set[str]:
    return {negated.atom.predicate for negated in rule.negated_atoms()}


def _head_predicates(rules: Iterable[Rule]) -> Set[str]:
    return {atom.predicate for rule in rules for atom in rule.head}


def _expression_vars_outside_aggregate(expression: Any) -> Set[Variable]:
    """Variables an expression needs besides the aggregate's own value."""
    if isinstance(expression, AggregateCall):
        return set()
    if isinstance(expression, BinOp):
        return _expression_vars_outside_aggregate(
            expression.left
        ) | _expression_vars_outside_aggregate(expression.right)
    if isinstance(expression, FunctionCall):
        out: Set[Variable] = set()
        for argument in expression.arguments:
            out |= _expression_vars_outside_aggregate(argument)
        return out
    if isinstance(expression, TermExpr):
        return set(expression.variables())
    return set(expression.variables()) if hasattr(expression, "variables") else set()


def _post_condition_is_lower_bound(
    condition: Condition, target: Variable, group_vars: Set[Variable]
) -> bool:
    """True when growing the target can only turn the condition on.

    Monotone-aggregate emissions stay valid under insertions exactly
    when every post condition is a lower-bound gate on the bare target
    (``v > rhs`` / ``v >= rhs`` or mirrored) with the other side fixed
    by group variables.
    """
    left_vars = set(condition.left.variables())
    right_vars = set(condition.right.variables())
    if target in left_vars and target in right_vars:
        return False
    if target in left_vars:
        if not isinstance(condition.left, TermExpr) or condition.left.term != target:
            return False
        if not right_vars <= group_vars:
            return False
        return condition.op in (">", ">=")
    if target in right_vars:
        if not isinstance(condition.right, TermExpr) or condition.right.term != target:
            return False
        if not left_vars <= group_vars:
            return False
        return condition.op in ("<", "<=")
    return (left_vars | right_vars) <= group_vars


def _aggregate_insert_safe(
    engine: Any, state: MaterializedState, rule: Rule, stats: Any
) -> bool:
    """Can this aggregate rule absorb insertions via its retained accumulator?

    Requirements: a monotone function; the target confined to post
    conditions that are lower-bound gates; head variables and Skolem
    arguments covered by the group variables (the retained witnesses
    are projected to them); and a retained saturated accumulator from
    the base run.
    """
    retained = state.aggregates.get(rule)
    if retained is None:
        return False
    plans = engine._plans_for(rule, stats)
    try:
        plan = plans.aggregate_plan()
    except EvaluationError:
        return False
    if not is_monotonic(plan.call.function):
        return False
    if retained.group_vars != plan.group_vars:
        return False
    group_vars = set(plan.group_vars)
    target = plan.target
    for _, slots in plans.head_ops:
        for kind, payload in slots:
            if kind == _K_VAR and payload == target:
                return False
    for _, _, arg_ops in plans.placeholders:
        for is_var, argument in arg_ops:
            if is_var and (argument == target or argument not in group_vars):
                return False
    if not _expression_vars_outside_aggregate(plan.assignment.expression) <= group_vars:
        return False
    for condition in plan.post:
        if not _post_condition_is_lower_bound(condition, target, group_vars):
            return False
    return True


def _existential_insert_safe(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    rule: Rule,
    changed: Set[str],
    stats: Any,
) -> bool:
    """Gate for propagating insertions through an existential head.

    The restricted chase suppresses a firing whenever the head pattern
    is already satisfied, so incremental insertion is order-faithful
    (up to null renaming) only when same-pattern firings cannot race:
    for every predicate this rule writes existentially, (1) the
    predicate holds no extensional facts and receives no direct
    extensional delta, (2) no writer grounds the existential positions,
    (3) every writer is either an aggregate rule (one emission per
    group) or has a full named frontier (distinct matches yield
    distinct head patterns), and (4) at most one writer reads no
    stratum predicate and at most one does — so the relative firing
    order of competing writers is the same in every evaluation order.
    """
    plans = engine._plans_for(rule, stats)
    existential_preds: Dict[str, Set[int]] = {}
    for index, (predicate, slots) in enumerate(plans.head_ops):
        positions = {
            position for position, (kind, _) in enumerate(slots) if kind == _K_EXIST
        }
        if positions:
            existential_preds.setdefault(predicate, set()).update(positions)
    for predicate, positions in existential_preds.items():
        if state.edb.get(predicate) or predicate in changed:
            return False
        writers = [
            other
            for other in state.working.rules
            if any(atom.predicate == predicate for atom in other.head)
        ]
        round_zero = 0
        recursive_writers = 0
        for writer in writers:
            writer_plans = engine._plans_for(writer, stats)
            for w_predicate, slots in writer_plans.head_ops:
                if w_predicate != predicate:
                    continue
                for position in positions:
                    if position >= len(slots) or slots[position][0] != _K_EXIST:
                        return False
            if writer.has_aggregate():
                if not _aggregate_insert_safe(engine, state, writer, stats):
                    return False
            else:
                named_body = {
                    v for v in writer.body_variables() if v.name != "_"
                }
                recoverable: Set[Variable] = set()
                for index in range(len(writer_plans.head_ops)):
                    recoverable.update(writer_plans.rederive_bound_vars(index))
                if not named_body <= recoverable:
                    return False
            if _positive_reads(writer) & stratum.predicates:
                recursive_writers += 1
            else:
                round_zero += 1
        if round_zero > 1 or recursive_writers > 1:
            return False
    return True


def _classify_stratum(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    add_keys: Set[str],
    rm_keys: Set[str],
    stats: Any,
) -> str:
    changed = add_keys | rm_keys
    stratum_heads = _head_predicates(stratum.rules)
    pos_reads: Set[str] = set()
    neg_reads: Set[str] = set()
    for rule in stratum.rules:
        pos_reads |= _positive_reads(rule)
        neg_reads |= _negated_reads(rule)
    touched = (pos_reads | neg_reads | stratum_heads | stratum.predicates) & changed
    if not touched:
        return _SKIP

    # Once anything enters a recursive stratum, its own predicates count
    # as changed for gating (the delta cascades through them).
    effective = set(changed)
    if stratum.recursive:
        effective |= stratum.predicates
    if neg_reads & effective:
        return _RECOMPUTE

    rm_effective = set(rm_keys)
    if stratum.recursive and rm_keys & (pos_reads | stratum_heads | stratum.predicates):
        rm_effective |= stratum.predicates

    for rule in stratum.rules:
        rule_reads = _positive_reads(rule)
        rule_heads = {atom.predicate for atom in rule.head}
        rule_affected = bool(rule_reads & effective) or bool(rule_heads & changed)
        if not rule_affected:
            continue
        removals_reach = bool(rule_reads & rm_effective) or bool(
            rule_heads & rm_effective
        )
        if rule.has_aggregate():
            if removals_reach:
                return _RECOMPUTE
            if not _aggregate_insert_safe(engine, state, rule, stats):
                return _RECOMPUTE
        if rule.existential_variables():
            if removals_reach:
                return _RECOMPUTE
            if not _existential_insert_safe(
                engine, state, stratum, rule, changed, stats
            ):
                return _RECOMPUTE
    return _INCREMENTAL


# ---------------------------------------------------------------------------
# Insertion propagation
# ---------------------------------------------------------------------------


def _delta_matches(
    plans: RulePlans, db: Database, delta: Dict[str, Set[Fact]]
) -> Iterator[Substitution]:
    """Matches using >= 1 delta fact, over *changed* predicates.

    Generalizes :meth:`Engine._semi_naive_matches_plan` from the
    recursive predicates of a stratum to an arbitrary changed set, with
    the same exact old/delta/full occurrence partition.
    """
    body = plans.rule.body
    delta_indexes = [
        i
        for i, literal in enumerate(body)
        if isinstance(literal, Atom) and delta.get(literal.predicate)
    ]
    for k, index in enumerate(delta_indexes):
        delta_facts = delta[body[index].predicate]
        binder = plans.delta_binder(index)
        rest_plan = plans.delta_plan(index)
        excludes: Dict[int, Set[Fact]] = {}
        for earlier in delta_indexes[:k]:
            earlier_delta = delta.get(body[earlier].predicate)
            if earlier_delta:
                excludes[earlier] = earlier_delta
        for fact in delta_facts:
            base = binder.match(fact)
            if base is None:
                continue
            yield from execute_plan(
                rest_plan, db, base, excludes if excludes else None
            )


def _aggregate_delta_matches(
    engine: Any,
    state: MaterializedState,
    plans: RulePlans,
    db: Database,
    delta: Dict[str, Set[Fact]],
) -> Iterator[Substitution]:
    """Delta-join new contributions into the retained accumulator.

    Only groups touched by a new contribution are re-emitted; untouched
    groups' head facts are already in the database.  The contributor
    keys replicate the engine's construction exactly, so a repeated
    contribution collides (and resolves) just as a full recomputation
    would.
    """
    plan = plans.aggregate_plan()
    retained = state.aggregates[plans.rule]
    accumulator = retained.accumulator
    call = plan.call
    group_vars = plan.group_vars
    touched: Set[Tuple[Any, ...]] = set()
    delta_indexes = [
        i
        for i, literal in enumerate(plan.pre)
        if isinstance(literal, Atom) and delta.get(literal.predicate)
    ]
    for k, index in enumerate(delta_indexes):
        delta_facts = delta[plan.pre[index].predicate]
        binder = plan.pre_delta_binder(index)
        rest_plan = plan.pre_delta_plan(index)
        excludes: Dict[int, Set[Fact]] = {}
        for earlier in delta_indexes[:k]:
            earlier_delta = delta.get(plan.pre[earlier].predicate)
            if earlier_delta:
                excludes[earlier] = earlier_delta
        for fact in delta_facts:
            base = binder.match(fact)
            if base is None:
                continue
            for substitution in execute_plan(
                rest_plan, db, base, excludes if excludes else None
            ):
                group = tuple(
                    _hashable(substitution.get(v)) for v in group_vars
                )
                if call.contributors:
                    contributor = tuple(
                        _hashable(substitution.get(v)) for v in call.contributors
                    )
                else:
                    contributor = tuple(
                        sorted(
                            (
                                (v.name, _hashable(value))
                                for v, value in substitution.items()
                            ),
                            key=lambda item: item[0],
                        )
                    )
                value = evaluate_expression(call.value, substitution)
                accumulator.contribute(group, contributor, value)
                retained.witnesses.setdefault(
                    group,
                    {v: substitution[v] for v in group_vars if v in substitution},
                )
                touched.add(group)

    groups = accumulator.state()
    for group in touched:
        value = aggregate(accumulator.function, groups[group])
        base = retained.witnesses[group]
        substitution = {v: base[v] for v in group_vars if v in base}
        substitution[plan.target] = evaluate_expression(
            plan.assignment.expression, base, aggregate_value=value
        )
        if all(check_condition(c, substitution) for c in plan.post):
            yield substitution


def _insertion_pass(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    db: Database,
    seeds: Dict[str, Set[Fact]],
    stats: Any,
    added_now: Dict[str, Set[Fact]],
) -> None:
    """Semi-naive rounds seeded from ``seeds`` until no new facts appear."""
    support_sink = state.support
    delta = {
        predicate: set(facts) for predicate, facts in seeds.items() if facts
    }
    rounds = 0
    while delta:
        rounds += 1
        if rounds > engine.max_iterations:
            raise ResourceLimitError(
                f"incremental pass over {sorted(stratum.predicates)} did not "
                f"reach a fixpoint within {engine.max_iterations} rounds",
                resource="iterations",
                limit=engine.max_iterations,
                stats=stats,
            )
        stats.iterations += 1
        pending: List[Tuple[str, Fact]] = []
        for rule in stratum.rules:
            plans = engine._plans_for(rule, stats)
            if plans.is_aggregate:
                if not any(
                    delta.get(literal.predicate)
                    for literal in plans.aggregate_plan().pre
                    if isinstance(literal, Atom)
                ):
                    continue
                matches = _aggregate_delta_matches(engine, state, plans, db, delta)
            else:
                matches = _delta_matches(plans, db, delta)
            recorder = (
                engine._support_template(rule) if support_sink is not None else None
            )
            if recorder is None:
                for substitution in matches:
                    stats.rule_firings += 1
                    for predicate, fact in plans.instantiate_head(
                        substitution, db, stats, state.nulls, state.skolems,
                        engine.max_nulls,
                    ):
                        pending.append((predicate, fact))
            else:
                for substitution in matches:
                    stats.rule_firings += 1
                    start = len(pending)
                    for predicate, fact in plans.instantiate_head(
                        substitution, db, stats, state.nulls, state.skolems,
                        engine.max_nulls,
                    ):
                        pending.append((predicate, fact))
                    if len(pending) > start:
                        _record_supports(
                            support_sink, recorder, substitution, pending, start
                        )
        new_facts: Dict[str, Set[Fact]] = {}
        for predicate, fact in pending:
            if db.add(predicate, fact):
                stats.facts_derived += 1
                new_facts.setdefault(predicate, set()).add(fact)
                added_now.setdefault(predicate, set()).add(fact)
        delta = new_facts


def _record_supports(
    sink: SupportIndex,
    recorder: Tuple[Any, ...],
    substitution: Substitution,
    pending: List[Tuple[str, Fact]],
    start: int,
) -> None:
    body_key = tuple(
        (
            predicate,
            tuple(
                substitution[payload] if is_var else payload
                for is_var, payload in ops
            ),
        )
        for predicate, ops in recorder
    )
    for item in pending[start:]:
        sink.record(item, body_key)


# ---------------------------------------------------------------------------
# Deletion (DRed)
# ---------------------------------------------------------------------------


def _unify_head_fact(
    plans: RulePlans, head_index: int, fact: Fact
) -> Optional[Substitution]:
    """Match a ground fact against one head atom, recovering bindings.

    Skolem values decompose structurally (functor + arguments) against
    the head's Skolem template, so goal-directed re-derivation works
    through value-invention heads too.
    """
    _, slots = plans.head_ops[head_index]
    if len(fact) != len(slots):
        return None
    placeholders = {
        placeholder: (functor, arg_ops)
        for placeholder, functor, arg_ops in plans.placeholders
    }
    substitution: Substitution = {}
    for (kind, payload), value in zip(slots, fact):
        if kind == _K_CONST:
            if not values_equal(payload, value):
                return None
        elif kind == _K_VAR:
            if payload in substitution:
                if not values_equal(substitution[payload], value):
                    return None
            else:
                substitution[payload] = value
        elif kind == _K_SKOLEM:
            functor, arg_ops = placeholders[payload]
            if not isinstance(value, SkolemValue) or value.functor != functor:
                return None
            if len(value.arguments) != len(arg_ops):
                return None
            for (is_var, argument), argument_value in zip(arg_ops, value.arguments):
                if is_var:
                    if argument.name == "_":
                        continue
                    if argument in substitution:
                        if not values_equal(substitution[argument], argument_value):
                            return None
                    else:
                        substitution[argument] = argument_value
                elif not values_equal(argument, argument_value):
                    return None
        else:  # _K_EXIST: nulls are not goal-directed re-derivable
            return None
    return substitution


def _rederivable(
    engine: Any,
    state: MaterializedState,
    db: Database,
    goal_rules: List[Tuple[Rule, RulePlans, int]],
    fact: Fact,
    stats: Any,
) -> bool:
    """Does any rule still derive ``fact`` in the current database?"""
    support_sink = state.support
    for rule, plans, head_index in goal_rules:
        base = _unify_head_fact(plans, head_index, fact)
        if base is None:
            continue
        plan = plans.rederive_plan(head_index)
        for substitution in execute_plan(plan, db, dict(base)):
            if support_sink is not None:
                recorder = engine._support_template(rule)
                if recorder is not None:
                    predicate = plans.head_ops[head_index][0]
                    _record_supports(
                        support_sink, recorder, substitution,
                        [(predicate, fact)], 0,
                    )
            return True
    return False


def _overdelete_joins(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    db: Database,
    removed_seeds: Dict[str, Set[Fact]],
    stats: Any,
) -> Dict[str, Set[Fact]]:
    """Downward closure of the removed facts through this stratum's rules.

    The removed seeds are temporarily re-added so the closure joins see
    the *old* world (a derivation needing two removed facts must still
    find both); new facts already inserted this update can only add
    matches, i.e. extra over-deletion that re-derivation corrects.
    """
    restore: List[Tuple[str, Fact]] = []
    for predicate, facts in removed_seeds.items():
        relation = db.relation(predicate)
        for fact in facts:
            if relation.add(fact):
                restore.append((predicate, fact))
    marked: Dict[str, Set[Fact]] = {}
    try:
        frontier = {
            predicate: set(facts)
            for predicate, facts in removed_seeds.items()
            if facts
        }
        while frontier:
            found: Dict[str, Set[Fact]] = {}
            for rule in stratum.rules:
                plans = engine._plans_for(rule, stats)
                for substitution in _delta_matches(plans, db, frontier):
                    for predicate, fact in plans.instantiate_head(
                        substitution, db, stats, state.nulls, state.skolems,
                        engine.max_nulls,
                    ):
                        if fact in state.edb.get(predicate, ()):
                            continue
                        if not db.has(predicate, fact):
                            continue
                        if fact in marked.get(predicate, ()):
                            continue
                        if fact in removed_seeds.get(predicate, ()):
                            continue
                        found.setdefault(predicate, set()).add(fact)
            for predicate, facts in found.items():
                marked.setdefault(predicate, set()).update(facts)
            frontier = found
    finally:
        for predicate, fact in restore:
            db.relation(predicate).remove(fact)
    return marked


def _overdelete_supports(
    state: MaterializedState,
    stratum: Stratum,
    db: Database,
    removed_seeds: Dict[str, Set[Fact]],
) -> Dict[str, Set[Fact]]:
    """Support-walk over-deletion: mark the full downward closure.

    Every dependent transitively reachable through recorded supports is
    over-deleted, exactly like textbook DRed — facts with a surviving
    alternative derivation come back in the re-derivation pass.  Do NOT
    skip a dependent because one of its other recorded supports still
    looks live: under cyclic support (recursive strata) two doomed facts
    can hold each other's supports live while the walk runs, and neither
    ever gets marked (zombie cycles).  Over-marking is always corrected
    by re-derivation; under-marking is not correctable.
    """
    support = state.support
    assert support is not None
    stratum_heads = _head_predicates(stratum.rules)
    marked: Dict[str, Set[Fact]] = {}
    queue = deque(
        (predicate, fact)
        for predicate, facts in removed_seeds.items()
        for fact in facts
    )
    seen: Set[FactKey] = set(queue)
    while queue:
        key = queue.popleft()
        dependents = support.dependents.get(key)
        if not dependents:
            continue
        for dependent in list(dependents):
            predicate, fact = dependent
            if dependent in seen or predicate not in stratum_heads:
                continue
            if not db.has(predicate, fact):
                continue
            if fact in state.edb.get(predicate, ()):
                continue
            seen.add(dependent)
            marked.setdefault(predicate, set()).add(fact)
            db.relation(predicate).remove(fact)
            queue.append(dependent)
    # The join variant removes marked facts afterwards; this walk removes
    # them inline, so there is nothing left to remove here.
    return marked


def _deletion_pass(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    db: Database,
    removed_seeds: Dict[str, Set[Fact]],
    stats: Any,
    added_now: Dict[str, Set[Fact]],
    removed_now: Dict[str, Set[Fact]],
    result: DeltaResult,
) -> Dict[str, Set[Fact]]:
    """DRed one stratum; returns the re-derived facts (insertion seeds)."""
    support = state.support
    use_supports = support is not None and all(
        engine._support_template(rule) is not None for rule in stratum.rules
    )
    if use_supports:
        marked = _overdelete_supports(state, stratum, db, removed_seeds)
    else:
        marked = _overdelete_joins(
            engine, state, stratum, db, removed_seeds, stats
        )
        for predicate, facts in marked.items():
            relation = db.relation(predicate)
            for fact in facts:
                relation.remove(fact)
    overdeleted = sum(len(facts) for facts in marked.values())
    result.overdeleted += overdeleted
    for predicate, facts in marked.items():
        removed_now.setdefault(predicate, set()).update(facts)
        if support is not None:
            for fact in facts:
                support.discard((predicate, fact))

    # Re-derivation candidates: every over-deleted fact, plus incoming
    # removed facts this stratum's rules could still derive (an upstream
    # retraction does not retract an independently derivable fact).
    goal_rules: Dict[str, List[Tuple[Rule, RulePlans, int]]] = {}
    for rule in stratum.rules:
        if rule.has_aggregate() or rule.existential_variables():
            continue  # unreachable in a deletion-safe stratum; defensive
        plans = engine._plans_for(rule, stats)
        for head_index, (predicate, _) in enumerate(plans.head_ops):
            goal_rules.setdefault(predicate, []).append(
                (rule, plans, head_index)
            )
    candidates: Dict[str, Set[Fact]] = {}
    for predicate, facts in marked.items():
        candidates.setdefault(predicate, set()).update(facts)
    for predicate, facts in removed_seeds.items():
        if predicate in goal_rules:
            candidates.setdefault(predicate, set()).update(facts)

    rederived: Dict[str, Set[Fact]] = {}
    for predicate, facts in candidates.items():
        rules_for = goal_rules.get(predicate)
        if not rules_for:
            continue
        for fact in facts:
            if db.has(predicate, fact):
                continue
            if _rederivable(engine, state, db, rules_for, fact, stats):
                db.add(predicate, fact)
                stats.facts_derived += 1
                rederived.setdefault(predicate, set()).add(fact)
                added_now.setdefault(predicate, set()).add(fact)
    result.rederived += sum(len(facts) for facts in rederived.values())
    return rederived


# ---------------------------------------------------------------------------
# Boundary recompute
# ---------------------------------------------------------------------------


def _recompute_stratum(
    engine: Any,
    state: MaterializedState,
    stratum: Stratum,
    index: int,
    db: Database,
    stats: Any,
    added_now: Dict[str, Set[Fact]],
    removed_now: Dict[str, Set[Fact]],
) -> None:
    """Re-run one stratum from its boundary (the non-monotone fallback).

    Every predicate this stratum's rules write resets to the
    post-update extensional baseline, then the engine's own stratum
    evaluator re-runs against the already-updated upstream state — the
    same semantics boundary the parallel executor's serial barrier
    draws.  The before/after diff becomes the downstream delta.
    """
    stratum_heads = _head_predicates(stratum.rules)
    before = {
        predicate: set(db.relation(predicate)) for predicate in stratum_heads
    }
    for predicate in stratum_heads:
        db.reset(predicate, state.edb.get(predicate, set()))
        if state.support is not None:
            for fact in before[predicate]:
                state.support.discard((predicate, fact))
    engine._retain_sink = state
    engine._support_sink = state.support
    try:
        engine._evaluate_stratum(
            stratum, index, db, stats, state.nulls, state.skolems
        )
    finally:
        engine._retain_sink = None
        engine._support_sink = None
    for predicate in stratum_heads:
        after = set(db.relation(predicate))
        gained = after - before[predicate]
        lost = before[predicate] - after
        if gained:
            added_now.setdefault(predicate, set()).update(gained)
        if lost:
            removed_now.setdefault(predicate, set()).update(lost)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _normalize(
    delta: Optional[Dict[str, Iterable[Sequence[Any]]]]
) -> Dict[str, Set[Fact]]:
    normalized: Dict[str, Set[Fact]] = {}
    for predicate, facts in (delta or {}).items():
        bucket = normalized.setdefault(predicate, set())
        for fact in facts:
            bucket.add(tuple(fact))
    return normalized


def _merge_net(
    pending_add: Dict[str, Set[Fact]],
    pending_remove: Dict[str, Set[Fact]],
    gained: Dict[str, Set[Fact]],
    lost: Dict[str, Set[Fact]],
) -> None:
    """Fold one stratum's net changes into the running per-update net.

    A fact that reappears after being removed (or vanishes after being
    added) earlier in the same update cancels out — downstream strata
    and the caller only ever see net changes relative to the pre-update
    state.
    """
    for predicate, facts in lost.items():
        added_bucket = pending_add.get(predicate)
        removed_bucket = pending_remove.setdefault(predicate, set())
        for fact in facts:
            if added_bucket and fact in added_bucket:
                added_bucket.discard(fact)
            else:
                removed_bucket.add(fact)
    for predicate, facts in gained.items():
        removed_bucket = pending_remove.get(predicate)
        added_bucket = pending_add.setdefault(predicate, set())
        for fact in facts:
            if removed_bucket and fact in removed_bucket:
                removed_bucket.discard(fact)
            else:
                added_bucket.add(fact)


def apply_delta(
    engine: Any,
    result: Any,
    added: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
    removed: Optional[Dict[str, Iterable[Sequence[Any]]]] = None,
) -> DeltaResult:
    """Maintain a retained chase result under extensional changes.

    ``result`` is an :class:`~repro.vadalog.engine.EvaluationResult`
    produced with ``retain_state=True`` (or its ``.state``).  The
    retained database is updated **in place**; the returned
    :class:`DeltaResult` lists every net per-predicate change,
    extensional changes included.

    Removals of facts that are not part of the extensional snapshot are
    ignored (counted in ``skipped_removals``): derived facts cannot be
    retracted, only their extensional premises can.
    """
    state = getattr(result, "state", result)
    if not isinstance(state, MaterializedState):
        raise EvaluationError(
            "apply_delta needs a result produced with retain_state=True "
            "(truncated runs retain no state)"
        )
    start = time.perf_counter()
    db = state.database
    tracer = engine.tracer
    governor = engine.governor
    if governor is not None:
        governor.begin()
    stats = result.stats if hasattr(result, "stats") else None
    local = EvaluationStats()
    delta_result = DeltaResult()

    add_request = _normalize(added)
    remove_request = _normalize(removed)

    span = (
        tracer.span(
            "incr.apply_delta",
            added=sum(len(f) for f in add_request.values()),
            removed=sum(len(f) for f in remove_request.values()),
        )
        if tracer is not None
        else None
    )
    try:
        # ---- extensional changes -------------------------------------
        pending_add: Dict[str, Set[Fact]] = {}
        pending_remove: Dict[str, Set[Fact]] = {}
        for predicate, facts in remove_request.items():
            edb_facts = state.edb.get(predicate)
            for fact in facts:
                if edb_facts and fact in edb_facts:
                    pending_remove.setdefault(predicate, set()).add(fact)
                else:
                    delta_result.skipped_removals += 1
        for predicate, facts in add_request.items():
            removed_bucket = pending_remove.get(predicate)
            for fact in facts:
                if removed_bucket and fact in removed_bucket:
                    # Removed and re-added in one delta: a net no-op.
                    removed_bucket.discard(fact)
                elif fact not in state.edb.get(predicate, ()):
                    pending_add.setdefault(predicate, set()).add(fact)

        for predicate, facts in pending_remove.items():
            edb_facts = state.edb.get(predicate)
            relation = db.relation(predicate)
            for fact in facts:
                relation.remove(fact)
                if edb_facts:
                    edb_facts.discard(fact)
                if state.support is not None:
                    state.support.discard((predicate, fact))
        applied_add: Dict[str, Set[Fact]] = {}
        for predicate, facts in pending_add.items():
            edb_bucket = state.edb.setdefault(predicate, set())
            new: Set[Fact] = set()
            for fact in facts:
                edb_bucket.add(fact)
                if db.add(predicate, fact):
                    new.add(fact)
            if new:
                applied_add[predicate] = new
        # Facts already derivable need no propagation, but still count
        # as extensional now; only genuinely-new facts seed the chase.
        pending_add = applied_add

        if not pending_add and not pending_remove:
            delta_result.strata_skipped = len(state.strata)
            return delta_result

        # ---- stratum-by-stratum maintenance --------------------------
        for index, stratum in enumerate(state.strata):
            add_keys = {p for p, facts in pending_add.items() if facts}
            rm_keys = {p for p, facts in pending_remove.items() if facts}
            mode = _classify_stratum(
                engine, state, stratum, add_keys, rm_keys, local
            )
            if mode == _SKIP:
                delta_result.strata_skipped += 1
                continue
            added_now: Dict[str, Set[Fact]] = {}
            removed_now: Dict[str, Set[Fact]] = {}
            if mode == _RECOMPUTE:
                try:
                    _recompute_stratum(
                        engine, state, stratum, index, db, local,
                        added_now, removed_now,
                    )
                except _BudgetStop as stop:
                    raise ResourceLimitError(
                        f"governor budget exceeded during incremental "
                        f"recompute of stratum {index}: {stop.violation}",
                        resource=stop.violation.resource,
                        limit=stop.violation.limit,
                        stats=local,
                    ) from stop
                delta_result.strata_recomputed += 1
            else:
                stratum_heads = _head_predicates(stratum.rules)
                pos_reads: Set[str] = set()
                for rule in stratum.rules:
                    pos_reads |= _positive_reads(rule)
                removal_seeds = {
                    p: facts
                    for p, facts in pending_remove.items()
                    if facts and (p in pos_reads or p in stratum_heads)
                }
                rederived: Dict[str, Set[Fact]] = {}
                if removal_seeds:
                    dred_span = (
                        tracer.span("incr.dred", stratum=index)
                        if tracer is not None
                        else None
                    )
                    try:
                        rederived = _deletion_pass(
                            engine, state, stratum, db, pending_remove,
                            local, added_now, removed_now, delta_result,
                        )
                    finally:
                        if dred_span is not None:
                            dred_span.set(
                                overdeleted=delta_result.overdeleted,
                                rederived=delta_result.rederived,
                            )
                            dred_span.__exit__(None, None, None)
                seeds: Dict[str, Set[Fact]] = {}
                for predicate, facts in pending_add.items():
                    if facts and predicate in pos_reads:
                        seeds.setdefault(predicate, set()).update(facts)
                for predicate, facts in rederived.items():
                    seeds.setdefault(predicate, set()).update(facts)
                _insertion_pass(
                    engine, state, stratum, db, seeds, local, added_now
                )
                delta_result.strata_incremental += 1
            if added_now or removed_now:
                _merge_net(pending_add, pending_remove, added_now, removed_now)
            if (added_now or removed_now) and index < len(state.per_stratum):
                state.refresh_stratum_snapshot(index)
            if governor is not None:
                violation = governor.check(local)
                if violation is not None:
                    raise ResourceLimitError(
                        str(violation),
                        resource=violation.resource,
                        limit=violation.limit,
                        stats=local,
                    )

        delta_result.added = {
            p: facts for p, facts in pending_add.items() if facts
        }
        delta_result.removed = {
            p: facts for p, facts in pending_remove.items() if facts
        }
        return delta_result
    finally:
        delta_result.elapsed_seconds = time.perf_counter() - start
        state.updates_applied += 1
        if stats is not None:
            stats.rule_firings += local.rule_firings
            stats.facts_derived += local.facts_derived
            stats.iterations += local.iterations
            stats.nulls_created += local.nulls_created
        if tracer is not None:
            if delta_result.overdeleted:
                tracer.count("incr.overdeleted", delta_result.overdeleted)
            if delta_result.rederived:
                tracer.count("incr.rederived", delta_result.rederived)
        if span is not None:
            span.set(
                strata_skipped=delta_result.strata_skipped,
                strata_incremental=delta_result.strata_incremental,
                strata_recomputed=delta_result.strata_recomputed,
                net_added=delta_result.total_added,
                net_removed=delta_result.total_removed,
            )
            span.__exit__(None, None, None)
