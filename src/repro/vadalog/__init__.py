"""Vadalog substitute: a warded Datalog± engine with chase semantics.

The paper's intensional components run on the (proprietary) Vadalog
System; this package is the from-scratch replacement described in
DESIGN.md.  Public surface:

- :func:`parse_program` — parse the ASCII concrete syntax;
- :class:`Engine` / :class:`EvaluationResult` — chase-based evaluation;
- :class:`Database` — fact storage;
- :func:`check_warded` / :func:`check_piecewise_linear` — static analysis;
- :func:`stratify` — the evaluation schedule.
"""

from repro.vadalog.ast import (
    AggregateCall,
    Annotation,
    Assignment,
    Atom,
    BinOp,
    Condition,
    FunctionCall,
    NegatedAtom,
    Program,
    Rule,
    SkolemTerm,
    TermExpr,
)
from repro.vadalog.columnar import ColumnarRelation, SpillStore, ValueInterner
from repro.vadalog.database import Database, Relation
from repro.vadalog.engine import Engine, EvaluationResult, EvaluationStats
from repro.vadalog.magic import (
    GoalDirectedEvaluator,
    MagicProgram,
    Query,
    QueryAnswer,
    magic_rewrite,
    parse_query,
)
from repro.vadalog.parallel import ParallelChase, WorkerCrashError
from repro.vadalog.parser import parse_program, parse_rule
from repro.vadalog.stratify import Stratum, stratify
from repro.vadalog.terms import (
    ANONYMOUS,
    Null,
    NullFactory,
    SkolemFunctor,
    SkolemValue,
    Variable,
)
from repro.vadalog.warded import check_piecewise_linear, check_warded
from repro.vadalog.annotations import Source, resolve_inputs

__all__ = [
    "AggregateCall",
    "Annotation",
    "Assignment",
    "Atom",
    "BinOp",
    "Condition",
    "FunctionCall",
    "NegatedAtom",
    "Program",
    "Rule",
    "SkolemTerm",
    "TermExpr",
    "Database",
    "Relation",
    "ColumnarRelation",
    "SpillStore",
    "ValueInterner",
    "Engine",
    "EvaluationResult",
    "EvaluationStats",
    "GoalDirectedEvaluator",
    "MagicProgram",
    "Query",
    "QueryAnswer",
    "magic_rewrite",
    "parse_query",
    "ParallelChase",
    "WorkerCrashError",
    "parse_program",
    "parse_rule",
    "Stratum",
    "stratify",
    "ANONYMOUS",
    "Null",
    "NullFactory",
    "SkolemFunctor",
    "SkolemValue",
    "Variable",
    "check_piecewise_linear",
    "check_warded",
    "Source",
    "resolve_inputs",
]
