"""Term universe of the Vadalog substitute.

Following Section 4 of the paper, terms range over three disjoint
countably infinite sets: constants ``C``, labeled nulls ``N``, and regular
variables ``V``.  KGModel additionally introduces a fourth set ``I`` for
the values produced by *linker Skolem functors* — injective, deterministic,
range-disjoint functions used for controlled OID generation/retrieval
(Section 4, "Linker Skolem Functors").

Constants are plain Python values (str, int, float, bool, None).  The
other three kinds get dedicated classes so they can never collide with
constants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Variable:
    """A regular (universally quantified) variable appearing in rules."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


#: The anonymous variable: each occurrence binds nothing.
ANONYMOUS = Variable("_")


@dataclass(frozen=True)
class Null:
    """A labeled null, invented by the chase for an existential variable.

    ``label`` records the rule variable the null was invented for, which
    makes chase traces readable; ``ordinal`` makes the null unique.
    """

    label: str
    ordinal: int

    def __repr__(self) -> str:
        return f"ν{self.ordinal}[{self.label}]"


class NullFactory:
    """Produces fresh labeled nulls, one counter per evaluation."""

    def __init__(self):
        self._counter = itertools.count(1)

    def fresh(self, label: str = "z") -> Null:
        return Null(label, next(self._counter))


@dataclass(frozen=True)
class SkolemValue:
    """A value of the set ``I``, produced by a linker Skolem functor.

    Two SkolemValues are equal iff they have the same functor name and the
    same argument tuple — which realizes the paper's requirements that
    functors are injective and deterministic; distinct functor names give
    disjoint ranges.
    """

    functor: str
    arguments: Tuple[Any, ...]

    def __repr__(self) -> str:
        args = ",".join(repr(a) for a in self.arguments)
        return f"{self.functor}({args})"


class SkolemFunctor:
    """A callable linker Skolem functor ``sk``.

    ``sk(v1, ..., vn)`` returns the interned :class:`SkolemValue` for that
    argument tuple.  Interning keeps identity checks cheap during the
    chase.
    """

    def __init__(self, name: str):
        self.name = name
        self._cache: Dict[Tuple[Any, ...], SkolemValue] = {}

    def __call__(self, *arguments: Any) -> SkolemValue:
        key = tuple(arguments)
        value = self._cache.get(key)
        if value is None:
            value = SkolemValue(self.name, key)
            self._cache[key] = value
        return value

    def __repr__(self) -> str:
        return f"SkolemFunctor({self.name!r})"


def is_variable(term: Any) -> bool:
    """True for regular variables (including the anonymous variable)."""
    return isinstance(term, Variable)


def is_null(term: Any) -> bool:
    """True for labeled nulls."""
    return isinstance(term, Null)


def is_ground(term: Any) -> bool:
    """True for constants, nulls and Skolem values (anything non-variable)."""
    return not isinstance(term, Variable)


def values_equal(a: Any, b: Any) -> bool:
    """Equality that never mixes bool with 0/1 and tolerates numeric types."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or (isinstance(a, bool) and isinstance(b, bool) and a == b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    return a == b


#: Sort-key type tags, in the order the corresponding values sort.
_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_NUMBER = 2
_TAG_STRING = 3
_TAG_NULL = 4
_TAG_SKOLEM = 5
_TAG_SEQUENCE = 6
_TAG_OTHER = 7

_EMPTY: Tuple[Any, ...] = ()


def value_sort_key(value: Any) -> Tuple[Any, ...]:
    """A deterministic, backend-independent total-order key for one term.

    Every key is a ``(type-tag, number, text, nested)`` 4-tuple, so keys
    of different runtime types always compare (the tag decides first).
    Replaces the old ``key=repr`` flush orderings, which were O(repr)
    per fact and ordered numerics lexically (``"10" < "9"``) — and whose
    order could diverge between the tuple and columnar backends because
    ``1`` and ``1.0`` render differently while the storage layers may
    surface either representative.

    Properties relied on across the code base:

    * numerics order numerically (``9 < 10``), with a deterministic
      int-before-float tiebreak for ``1`` vs ``1.0``;
    * booleans never interleave with ``0``/``1``;
    * NaN sorts after every other number (instead of poisoning the
      comparison chain);
    * labeled nulls order by ``(ordinal, label)`` and Skolem values by
      ``(functor, arguments)``, both independent of invention order;
    * anything unknown falls back to ``(type name, repr)`` — stable, if
      slow, and only ever hit off the hot path.
    """
    if value is None:
        return (_TAG_NONE, 0, "", _EMPTY)
    cls = value.__class__
    if cls is bool:
        return (_TAG_BOOL, 1 if value else 0, "", _EMPTY)
    if cls is int:
        return (_TAG_NUMBER, value, "", _EMPTY)
    if cls is float:
        if value != value:  # NaN: larger than every number, equal to itself
            return (_TAG_NUMBER, float("inf"), "nan", _EMPTY)
        return (_TAG_NUMBER, value, "f", _EMPTY)
    if cls is str:
        return (_TAG_STRING, 0, value, _EMPTY)
    if cls is Null:
        return (_TAG_NULL, value.ordinal, value.label, _EMPTY)
    if cls is SkolemValue:
        return (
            _TAG_SKOLEM,
            0,
            value.functor,
            tuple(value_sort_key(a) for a in value.arguments),
        )
    if cls is tuple or cls is list:
        return (
            _TAG_SEQUENCE,
            len(value),
            "",
            tuple(value_sort_key(v) for v in value),
        )
    if isinstance(value, bool):  # bool subclasses, pathological but cheap
        return (_TAG_BOOL, 1 if value else 0, "", _EMPTY)
    if isinstance(value, (int, float)):
        if value != value:
            return (_TAG_NUMBER, float("inf"), "nan", _EMPTY)
        return (_TAG_NUMBER, value, "", _EMPTY)
    if isinstance(value, str):
        return (_TAG_STRING, 0, value, _EMPTY)
    return (_TAG_OTHER, 0, f"{type(value).__name__}:{value!r}", _EMPTY)


def fact_sort_key(fact: Any) -> Tuple[Tuple[Any, ...], ...]:
    """Deterministic sort key for a whole fact (any iterable of terms).

    The shared flush/emit ordering: every place that writes a fact set
    into an ordered target (graph write-back, relational insert batches,
    serve answers) sorts with this key so the order is identical across
    storage backends and Python processes.
    """
    return tuple(value_sort_key(term) for term in fact)


def format_term(term: Any) -> str:
    """Human-readable rendering of any term."""
    if isinstance(term, (Variable, Null, SkolemValue)):
        return repr(term)
    if isinstance(term, str):
        return f"\"{term}\""
    return repr(term)
