"""Term universe of the Vadalog substitute.

Following Section 4 of the paper, terms range over three disjoint
countably infinite sets: constants ``C``, labeled nulls ``N``, and regular
variables ``V``.  KGModel additionally introduces a fourth set ``I`` for
the values produced by *linker Skolem functors* — injective, deterministic,
range-disjoint functions used for controlled OID generation/retrieval
(Section 4, "Linker Skolem Functors").

Constants are plain Python values (str, int, float, bool, None).  The
other three kinds get dedicated classes so they can never collide with
constants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Variable:
    """A regular (universally quantified) variable appearing in rules."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


#: The anonymous variable: each occurrence binds nothing.
ANONYMOUS = Variable("_")


@dataclass(frozen=True)
class Null:
    """A labeled null, invented by the chase for an existential variable.

    ``label`` records the rule variable the null was invented for, which
    makes chase traces readable; ``ordinal`` makes the null unique.
    """

    label: str
    ordinal: int

    def __repr__(self) -> str:
        return f"ν{self.ordinal}[{self.label}]"


class NullFactory:
    """Produces fresh labeled nulls, one counter per evaluation."""

    def __init__(self):
        self._counter = itertools.count(1)

    def fresh(self, label: str = "z") -> Null:
        return Null(label, next(self._counter))


@dataclass(frozen=True)
class SkolemValue:
    """A value of the set ``I``, produced by a linker Skolem functor.

    Two SkolemValues are equal iff they have the same functor name and the
    same argument tuple — which realizes the paper's requirements that
    functors are injective and deterministic; distinct functor names give
    disjoint ranges.
    """

    functor: str
    arguments: Tuple[Any, ...]

    def __repr__(self) -> str:
        args = ",".join(repr(a) for a in self.arguments)
        return f"{self.functor}({args})"


class SkolemFunctor:
    """A callable linker Skolem functor ``sk``.

    ``sk(v1, ..., vn)`` returns the interned :class:`SkolemValue` for that
    argument tuple.  Interning keeps identity checks cheap during the
    chase.
    """

    def __init__(self, name: str):
        self.name = name
        self._cache: Dict[Tuple[Any, ...], SkolemValue] = {}

    def __call__(self, *arguments: Any) -> SkolemValue:
        key = tuple(arguments)
        value = self._cache.get(key)
        if value is None:
            value = SkolemValue(self.name, key)
            self._cache[key] = value
        return value

    def __repr__(self) -> str:
        return f"SkolemFunctor({self.name!r})"


def is_variable(term: Any) -> bool:
    """True for regular variables (including the anonymous variable)."""
    return isinstance(term, Variable)


def is_null(term: Any) -> bool:
    """True for labeled nulls."""
    return isinstance(term, Null)


def is_ground(term: Any) -> bool:
    """True for constants, nulls and Skolem values (anything non-variable)."""
    return not isinstance(term, Variable)


def values_equal(a: Any, b: Any) -> bool:
    """Equality that never mixes bool with 0/1 and tolerates numeric types."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or (isinstance(a, bool) and isinstance(b, bool) and a == b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    return a == b


def format_term(term: Any) -> str:
    """Human-readable rendering of any term."""
    if isinstance(term, (Variable, Null, SkolemValue)):
        return repr(term)
    if isinstance(term, str):
        return f"\"{term}\""
    return repr(term)
