"""Compiled join plans for the chase engine.

The interpreted matcher in :mod:`repro.vadalog.engine` re-derives the
join order for every partial substitution and copies the substitution
dict on every unification attempt.  Its greedy scheduling heuristic,
however, depends only on *which* variables are bound — never on their
values — so the whole literal order can be computed once per rule.  This
module compiles each rule body into a :class:`BodyPlan`:

- a static join order reproducing the engine's greedy heuristic (ready
  conditions / assignments / negations first, then the atom with the
  most bound positions, ties broken by body position);
- per atom, the bound positions become one composite-index probe
  (:meth:`repro.vadalog.database.Relation.lookup_key`), first
  occurrences of novel variables become direct bindings, repeated
  occurrences become equality checks;
- conditions, assignments and negations are attached as filters to the
  earliest step after which they are ready.

:func:`execute_plan` runs a plan with an iterative backtracking loop
that mutates a single substitution dict with undo trails; a dict copy
is made only per *successful* full match (the yielded substitution).

Per-rule plans are grouped in :class:`RulePlans`, which also holds the
compiled head template (constants / frontier variables / Skolem slots /
existential slots), the cached head-satisfaction plan used by the
restricted chase, the per-occurrence delta plans for semi-naive
evaluation, and the aggregate pre-body plan.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, ResourceLimitError
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    Atom,
    BinOp,
    Condition,
    Expression,
    FunctionCall,
    NegatedAtom,
    Rule,
    SkolemTerm,
    TermExpr,
)
from repro.vadalog.columnar import _FNV_OFFSET as _FNV_OFFSET_NP
from repro.vadalog.columnar import _FNV_PRIME as _FNV_PRIME_NP
from repro.vadalog.database import Database, Fact
from repro.vadalog.terms import SkolemFunctor, Variable

from itertools import repeat as _repeat

try:  # the vectorized full-plan executor needs numpy; scalar paths do not
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

Substitution = Dict[Variable, Any]

#: Builtin tuple-level functions available in expressions.
BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "upper": lambda s: str(s).upper(),
    "lower": lambda s: str(s).lower(),
    "strlen": lambda s: len(str(s)),
    "abs": abs,
    "round": lambda x, digits=0: round(x, int(digits)),
    "floor": lambda x: int(x) if x >= 0 or x == int(x) else int(x) - 1,
    "ceil": lambda x: int(x) if x == int(x) else (int(x) + 1 if x > 0 else int(x)),
    "mod": lambda a, b: a % b,
    "min2": lambda a, b: min(a, b),
    "max2": lambda a, b: max(a, b),
    "tostring": str,
    "tonumber": float,
}


# ---------------------------------------------------------------------------
# Expression evaluation (shared by the interpreter and the plan executor)
# ---------------------------------------------------------------------------


# Re-exported so existing ``from repro.vadalog.plan import values_equal``
# callers keep working; the definition lives in terms.py so the storage
# layer can share it without a circular import.
from repro.vadalog.terms import values_equal  # noqa: E402,F401


def apply_binop(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return str(left) + str(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
    except (TypeError, ZeroDivisionError) as exc:
        raise EvaluationError(f"arithmetic error: {left!r} {op} {right!r}: {exc}")
    raise EvaluationError(f"unknown operator {op!r}")


def evaluate_expression(
    expression: Expression,
    substitution: Substitution,
    aggregate_value: Any = None,
) -> Any:
    if isinstance(expression, AggregateCall):
        if aggregate_value is None:
            raise EvaluationError(
                "aggregate call evaluated outside aggregate context"
            )
        return aggregate_value
    if isinstance(expression, TermExpr):
        term = expression.term
        if isinstance(term, Variable):
            if term not in substitution:
                raise EvaluationError(f"unbound variable {term!r} in expression")
            return substitution[term]
        return term
    if isinstance(expression, BinOp):
        left = evaluate_expression(expression.left, substitution, aggregate_value)
        right = evaluate_expression(expression.right, substitution, aggregate_value)
        return apply_binop(expression.op, left, right)
    if isinstance(expression, FunctionCall):
        function = BUILTIN_FUNCTIONS.get(expression.name)
        if function is None:
            raise EvaluationError(f"unknown function {expression.name!r}")
        arguments = [
            evaluate_expression(a, substitution, aggregate_value)
            for a in expression.arguments
        ]
        return function(*arguments)
    raise EvaluationError(f"unsupported expression {expression!r}")


def check_condition(condition: Condition, substitution: Substitution) -> bool:
    left = evaluate_expression(condition.left, substitution)
    right = evaluate_expression(condition.right, substitution)
    op = condition.op
    if op == "==":
        return values_equal(left, right)
    if op == "!=":
        return not values_equal(left, right)
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise EvaluationError(f"unknown comparison operator {op!r}")


def find_aggregate(expression: Expression) -> AggregateCall:
    if isinstance(expression, AggregateCall):
        return expression
    if isinstance(expression, BinOp):
        for side in (expression.left, expression.right):
            try:
                return find_aggregate(side)
            except EvaluationError:
                continue
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            try:
                return find_aggregate(argument)
            except EvaluationError:
                continue
    raise EvaluationError("no aggregate call found in expression")


# ---------------------------------------------------------------------------
# Filters: conditions / assignments / negations as zero-or-one-pass checks
# ---------------------------------------------------------------------------


class CondFilter:
    __slots__ = ("condition",)

    def __init__(self, condition: Condition):
        self.condition = condition

    def apply(self, subst: Substitution, db: Database, bound: List[Variable]) -> bool:
        return check_condition(self.condition, subst)


class AssignFilter:
    """``V = expr``: binds V when statically unbound, checks otherwise."""

    __slots__ = ("target", "expression", "binds")

    def __init__(self, assignment: Assignment, binds: bool):
        self.target = assignment.target
        self.expression = assignment.expression
        self.binds = binds

    def apply(self, subst: Substitution, db: Database, bound: List[Variable]) -> bool:
        value = evaluate_expression(self.expression, subst)
        if self.binds and self.target not in subst:
            subst[self.target] = value
            bound.append(self.target)
            return True
        return values_equal(subst[self.target], value)


class NegFilter:
    """``not p(...)``: fails when any fact matches the bound pattern."""

    __slots__ = ("predicate", "arity", "positions", "key_parts", "verify", "samegroups")

    def __init__(self, atom: Atom, bound_vars: Set[Variable]):
        self.predicate = atom.predicate
        self.arity = len(atom.terms)
        positions: List[int] = []
        key_parts: List[Tuple[bool, Any]] = []
        verify: List[Tuple[int, bool, Any]] = []
        free_positions: Dict[Variable, List[int]] = {}
        for i, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name == "_":
                    continue
                if term in bound_vars:
                    positions.append(i)
                    key_parts.append((True, term))
                    verify.append((i, True, term))
                else:
                    free_positions.setdefault(term, []).append(i)
            else:
                positions.append(i)
                key_parts.append((False, term))
                verify.append((i, False, term))
        self.positions = tuple(positions)
        self.key_parts = tuple(key_parts)
        self.verify = tuple(verify)
        # A free variable occurring at several positions still constrains
        # the match: the candidate must repeat the same value.
        self.samegroups = tuple(
            tuple(ps) for ps in free_positions.values() if len(ps) > 1
        )

    def apply(self, subst: Substitution, db: Database, bound: List[Variable]) -> bool:
        relation = db.relation(self.predicate)
        if self.positions:
            key = tuple(
                subst[payload] if is_var else payload
                for is_var, payload in self.key_parts
            )
            candidates: Iterable[Fact] = relation.lookup_key(self.positions, key)
        else:
            candidates = relation
        verify = self.verify
        samegroups = self.samegroups
        arity = self.arity
        for fact in candidates:
            if len(fact) != arity:
                continue
            ok = True
            for pos, is_var, payload in verify:
                expected = subst[payload] if is_var else payload
                if not values_equal(fact[pos], expected):
                    ok = False
                    break
            if ok and samegroups:
                for group in samegroups:
                    first = fact[group[0]]
                    if not all(values_equal(fact[p], first) for p in group[1:]):
                        ok = False
                        break
            if ok:
                return False
        return True


# ---------------------------------------------------------------------------
# Atom steps
# ---------------------------------------------------------------------------


class AtomStep:
    """One join step: probe a relation, bind novel variables, run filters."""

    __slots__ = (
        "predicate", "arity", "orig_index", "positions", "key_parts",
        "verify", "bind", "check", "filters",
    )

    def __init__(self, atom: Atom, bound_vars: Set[Variable], orig_index: int):
        self.predicate = atom.predicate
        self.arity = len(atom.terms)
        self.orig_index = orig_index
        positions: List[int] = []
        key_parts: List[Tuple[bool, Any]] = []
        verify: List[Tuple[int, bool, Any]] = []
        bind: List[Tuple[int, Variable]] = []
        check: List[Tuple[int, Variable]] = []
        novel: Set[Variable] = set()
        for i, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name == "_":
                    continue
                if term in bound_vars:
                    positions.append(i)
                    key_parts.append((True, term))
                    verify.append((i, True, term))
                elif term in novel:
                    check.append((i, term))
                else:
                    novel.add(term)
                    bind.append((i, term))
            else:
                positions.append(i)
                key_parts.append((False, term))
                verify.append((i, False, term))
        self.positions = tuple(positions)
        self.key_parts = tuple(key_parts)
        self.verify = tuple(verify)
        self.bind = tuple(bind)
        self.check = tuple(check)
        self.filters: List[Any] = []

    def novel_variables(self) -> Set[Variable]:
        return {var for _, var in self.bind}

    def candidates(
        self,
        db: Database,
        subst: Substitution,
        excludes: Optional[Dict[int, Set[Fact]]],
    ) -> Iterator[Fact]:
        relation = db.relation(self.predicate)
        if self.positions:
            key = tuple(
                subst[payload] if is_var else payload
                for is_var, payload in self.key_parts
            )
            facts: Iterable[Fact] = relation.lookup_key(self.positions, key)
        else:
            facts = relation
        if excludes is not None:
            excluded = excludes.get(self.orig_index)
            if excluded:
                return (fact for fact in facts if fact not in excluded)
        return iter(facts)

    def try_fact(
        self, fact: Fact, subst: Substitution, db: Database
    ) -> Optional[List[Variable]]:
        """Bind ``fact``; returns the undo list, or None on mismatch."""
        if len(fact) != self.arity:
            return None
        for pos, is_var, payload in self.verify:
            expected = subst[payload] if is_var else payload
            if not values_equal(fact[pos], expected):
                return None
        bound: List[Variable] = []
        for pos, var in self.bind:
            subst[var] = fact[pos]
            bound.append(var)
        for pos, var in self.check:
            if not values_equal(fact[pos], subst[var]):
                for v in bound:
                    del subst[v]
                return None
        for filt in self.filters:
            if not filt.apply(subst, db, bound):
                for v in bound:
                    del subst[v]
                return None
        return bound


class BodyPlan:
    """A compiled body: prefix filters, then the ordered atom steps."""

    __slots__ = ("prefix", "steps", "batch_cache")

    def __init__(self, prefix: List[Any], steps: List[AtomStep]):
        self.prefix = prefix
        self.steps = steps
        # (base variable tuple) -> _BatchProgram, built on first use by
        # the columnar batch executor.
        self.batch_cache: Dict[Tuple[Variable, ...], Any] = {}


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _make_filter(literal: Any, bound: Set[Variable]) -> Any:
    if isinstance(literal, Condition):
        return CondFilter(literal)
    if isinstance(literal, Assignment):
        return AssignFilter(literal, binds=literal.target not in bound)
    if isinstance(literal, NegatedAtom):
        return NegFilter(literal.atom, bound)
    raise EvaluationError(f"unsupported body literal: {literal!r}")


def _pick_index(
    remaining: List[Tuple[int, Any]], bound: Set[Variable]
) -> int:
    """The engine's greedy heuristic over the static bound-variable set.

    First ready non-atom wins; otherwise the atom with the most bound
    positions (earliest on ties); otherwise the first literal.
    """
    best_atom = None
    best_score = -1
    for i, (_, literal) in enumerate(remaining):
        if isinstance(literal, Assignment):
            if all(v in bound for v in literal.expression.variables()):
                return i
        elif isinstance(literal, Condition):
            if all(v in bound for v in literal.variables()):
                return i
        elif isinstance(literal, NegatedAtom):
            if all(v in bound or v.name == "_" for v in literal.variables()):
                return i
        elif isinstance(literal, Atom):
            score = sum(
                1
                for term in literal.terms
                if not isinstance(term, Variable) or term in bound
            )
            if score > best_score:
                best_score = score
                best_atom = i
    if best_atom is not None:
        return best_atom
    return 0


def compile_body(
    literals: Sequence[Any],
    bound: Iterable[Variable] = (),
    orig_indexes: Optional[Sequence[int]] = None,
) -> BodyPlan:
    """Compile a body conjunction, given the initially-bound variables."""
    if orig_indexes is None:
        orig_indexes = range(len(literals))
    remaining: List[Tuple[int, Any]] = list(zip(orig_indexes, literals))
    bound_vars: Set[Variable] = set(bound)
    prefix: List[Any] = []
    steps: List[AtomStep] = []
    while remaining:
        orig_index, literal = remaining.pop(_pick_index(remaining, bound_vars))
        if isinstance(literal, Atom):
            step = AtomStep(literal, bound_vars, orig_index)
            bound_vars |= step.novel_variables()
            steps.append(step)
        else:
            filt = _make_filter(literal, bound_vars)
            if isinstance(filt, AssignFilter) and filt.binds:
                bound_vars.add(filt.target)
            if steps:
                steps[-1].filters.append(filt)
            else:
                prefix.append(filt)
    return BodyPlan(prefix, steps)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


#: Per-step probe statistics: ``(body position, predicate) -> [candidates
#: scanned, facts matched]``, accumulated across plan executions.
ProbeStats = Dict[Tuple[int, str], List[int]]


def execute_plan(
    plan: BodyPlan,
    db: Database,
    initial: Optional[Substitution] = None,
    excludes: Optional[Dict[int, Set[Fact]]] = None,
    probe: Optional[ProbeStats] = None,
    first_candidates: Optional[Iterable[Fact]] = None,
) -> Iterator[Substitution]:
    """All substitutions satisfying the compiled body conjunction.

    ``excludes`` maps original body-literal indexes to fact sets the
    corresponding atom step must skip (the "old facts only" restriction
    of semi-naive evaluation).  Yielded dicts are fresh copies.

    ``probe``, when given, collects per-step join statistics (candidate
    facts scanned / facts that unified) keyed by the step's original
    body position and predicate.  The un-probed loop is kept branch-free
    so tracing disabled costs nothing on the hot path.

    ``first_candidates``, when given, replaces the first step's index
    probe with the supplied facts: the partition-parallel executor
    splits step 0's relation into chunks and runs this plan once per
    chunk, so the union over chunks is exactly the unrestricted result
    (every candidate still goes through the step's full
    verify/bind/check/filter pipeline).
    """
    subst: Substitution = dict(initial) if initial else {}
    prefix_bound: List[Variable] = []
    for filt in plan.prefix:
        if not filt.apply(subst, db, prefix_bound):
            return
    steps = plan.steps
    n = len(steps)
    if n == 0:
        yield dict(subst)
        return
    if probe is not None:
        yield from _execute_plan_probed(
            plan, db, subst, excludes, probe, first_candidates
        )
        return
    iterators: List[Optional[Iterator[Fact]]] = [None] * n
    undos: List[Optional[List[Variable]]] = [None] * n
    depth = 0
    while True:
        step = steps[depth]
        iterator = iterators[depth]
        if iterator is None:
            if depth == 0 and first_candidates is not None:
                iterator = iter(first_candidates)
            else:
                iterator = step.candidates(db, subst, excludes)
            iterators[depth] = iterator
        undo: Optional[List[Variable]] = None
        for fact in iterator:
            undo = step.try_fact(fact, subst, db)
            if undo is not None:
                break
        if undo is None:
            iterators[depth] = None
            depth -= 1
            if depth < 0:
                return
            for var in undos[depth]:
                del subst[var]
        else:
            undos[depth] = undo
            if depth == n - 1:
                yield dict(subst)
                for var in undo:
                    del subst[var]
            else:
                depth += 1


def _execute_plan_probed(
    plan: BodyPlan,
    db: Database,
    subst: Substitution,
    excludes: Optional[Dict[int, Set[Fact]]],
    probe: ProbeStats,
    first_candidates: Optional[Iterable[Fact]] = None,
) -> Iterator[Substitution]:
    """The instrumented twin of the main execution loop.

    Counts, per atom step, how many candidate facts the index probe
    yielded and how many survived unification + filters — the join
    selectivity a profile reader needs to spot a bad plan.
    """
    steps = plan.steps
    n = len(steps)
    counters = []
    for step in steps:
        key = (step.orig_index, step.predicate)
        counter = probe.get(key)
        if counter is None:
            counter = [0, 0]
            probe[key] = counter
        counters.append(counter)
    iterators: List[Optional[Iterator[Fact]]] = [None] * n
    undos: List[Optional[List[Variable]]] = [None] * n
    depth = 0
    while True:
        step = steps[depth]
        counter = counters[depth]
        iterator = iterators[depth]
        if iterator is None:
            if depth == 0 and first_candidates is not None:
                iterator = iter(first_candidates)
            else:
                iterator = step.candidates(db, subst, excludes)
            iterators[depth] = iterator
        undo: Optional[List[Variable]] = None
        for fact in iterator:
            counter[0] += 1
            undo = step.try_fact(fact, subst, db)
            if undo is not None:
                counter[1] += 1
                break
        if undo is None:
            iterators[depth] = None
            depth -= 1
            if depth < 0:
                return
            for var in undos[depth]:
                del subst[var]
        else:
            undos[depth] = undo
            if depth == n - 1:
                yield dict(subst)
                for var in undo:
                    del subst[var]
            else:
                depth += 1


# ---------------------------------------------------------------------------
# Batch-at-a-time execution over columnar storage
# ---------------------------------------------------------------------------

#: Register sentinel: slot not bound yet.
_ABSENT = object()


class _RegView:
    """Mapping view over the batch executor's register arrays.

    Filters (CondFilter/AssignFilter/NegFilter) were written against
    plain substitution dicts; this view lets them run unchanged over the
    register-based batch executor.  Assignments store the raw value with
    an unknown code (``None``) — codes are probed lazily when the value
    later feeds an index key.
    """

    __slots__ = ("slots", "vals", "codes")

    def __init__(self, slots: Dict[Variable, int], vals: List[Any], codes: List[Any]):
        self.slots = slots
        self.vals = vals
        self.codes = codes

    def __getitem__(self, var: Variable) -> Any:
        slot = self.slots.get(var)
        if slot is None:
            raise KeyError(var)
        value = self.vals[slot]
        if value is _ABSENT:
            raise KeyError(var)
        return value

    def __contains__(self, var: Variable) -> bool:
        slot = self.slots.get(var)
        return slot is not None and self.vals[slot] is not _ABSENT

    def get(self, var: Variable, default: Any = None) -> Any:
        slot = self.slots.get(var)
        if slot is None:
            return default
        value = self.vals[slot]
        return default if value is _ABSENT else value

    def __setitem__(self, var: Variable, value: Any) -> None:
        slot = self.slots[var]
        self.vals[slot] = value
        self.codes[slot] = None


class _BatchStep:
    """An :class:`AtomStep` lowered onto register slots and code columns."""

    __slots__ = (
        "predicate", "arity", "orig_index", "positions",
        "key_ops", "bind_ops", "check_ops", "filters",
    )

    def __init__(self, step: AtomStep, slots: Dict[Variable, int]):
        self.predicate = step.predicate
        self.arity = step.arity
        self.orig_index = step.orig_index
        self.positions = step.positions
        # (is_slot, slot-or-constant) per key position, aligned with
        # ``positions`` (AtomStep builds both in one pass).
        self.key_ops = tuple(
            (True, slots[payload]) if is_var else (False, payload)
            for is_var, payload in step.key_parts
        )
        self.bind_ops = tuple((pos, slots[var]) for pos, var in step.bind)
        self.check_ops = tuple((pos, slots[var]) for pos, var in step.check)
        self.filters = step.filters


class _BatchProgram:
    """A :class:`BodyPlan` compiled onto a fixed register file."""

    __slots__ = ("slots", "nslots", "base_slots", "prefix", "steps")

    def __init__(self, plan: BodyPlan, base_vars: Tuple[Variable, ...]):
        slots: Dict[Variable, int] = {}
        for var in base_vars:
            slots.setdefault(var, len(slots))

        def register(filters: Iterable[Any]) -> None:
            for filt in filters:
                if isinstance(filt, AssignFilter) and filt.binds:
                    slots.setdefault(filt.target, len(slots))

        register(plan.prefix)
        steps: List[_BatchStep] = []
        for step in plan.steps:
            for _pos, var in step.bind:
                slots.setdefault(var, len(slots))
            # key/check vars reference earlier binds (already registered);
            # filter assign-targets become visible to later steps.
            steps.append(_BatchStep(step, slots))
            register(step.filters)
        self.slots = slots
        self.nslots = len(slots)
        self.base_slots = tuple((var, slots[var]) for var in base_vars)
        self.prefix = tuple(plan.prefix)
        self.steps = tuple(steps)


def _batch_program(plan: BodyPlan, base_vars: Tuple[Variable, ...]) -> _BatchProgram:
    program = plan.batch_cache.get(base_vars)
    if program is None:
        program = _BatchProgram(plan, base_vars)
        plan.batch_cache[base_vars] = program
    return program


def execute_plan_batch(
    plan: BodyPlan,
    db: Database,
    bases: Optional[Iterable[Substitution]] = None,
    base_vars: Tuple[Variable, ...] = (),
    excludes: Optional[Dict[int, Set[Fact]]] = None,
    probe: Optional[ProbeStats] = None,
) -> Iterator[Substitution]:
    """Batch twin of :func:`execute_plan` for columnar databases.

    Processes a whole batch of initial substitutions (``bases``, e.g.
    one semi-naive delta partition) in one call over one compiled
    register program.  Join keys probe the relation's eq-code indexes,
    candidate verification compares dictionary codes (ints) instead of
    decoding fact tuples, and only full matches materialize substitution
    dicts.  Yields exactly the substitutions the tuple-at-a-time
    executor yields (possibly in a different enumeration order).

    ``bases`` items must bind exactly ``base_vars``; ``None`` means one
    empty base (a full evaluation, like ``execute_plan`` without
    ``initial``).
    """
    interner = db._interner
    if interner is None:
        raise EvaluationError("execute_plan_batch requires a columnar database")
    program = _batch_program(plan, tuple(base_vars))
    steps = program.steps
    n = len(steps)
    eq_of = interner.eq
    value_of = interner.values
    probe_exact = interner.probe
    probe_eq = interner.probe_eq

    # Per-(program, db) step environment: relations and pre-resolved
    # constant key parts.  Cached on the database because the engine
    # calls the same compiled program over the same database once per
    # delta partition — at semi-naive scale that is hundreds of
    # thousands of tiny calls, so the setup must not be per-call.  The
    # cache entry pins the program object (so its id is never reused)
    # and is invalidated when an unresolved constant might have been
    # interned since resolution (the interner is append-only, so fully
    # resolved keys stay valid forever).
    envs = db.__dict__.setdefault("_batch_envs", {})
    entry = envs.get(id(program))
    if (
        entry is not None
        and entry[0] is program
        and (entry[3] or entry[4] == len(value_of))
    ):
        relations = entry[1]
        const_keys = entry[2]
    else:
        relations = []
        const_keys = []
        for bstep in steps:
            relations.append(db.relation(bstep.predicate))
            # Constants in the key resolve once (the interner only grows
            # at commit time, never during a match pass).
            resolved: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = ((), ())
            eq_parts: List[int] = []
            exact_parts: List[int] = []
            for is_slot, payload in bstep.key_ops:
                if is_slot:
                    eq_parts.append(-1)
                    exact_parts.append(-1)
                    continue
                eq_code = probe_eq(payload)
                exact = probe_exact(payload)
                if eq_code is None or exact is None or payload != payload:
                    resolved = None  # constant unseen (or NaN): no match
                    break
                eq_parts.append(eq_code)
                exact_parts.append(exact)
            if resolved is not None:
                resolved = (tuple(eq_parts), tuple(exact_parts))
            const_keys.append(resolved)
        envs[id(program)] = (
            program,
            relations,
            const_keys,
            all(k is not None for k in const_keys),
            len(value_of),
        )

    if probe is None:
        counters: List[List[int]] = [_COUNTER_SINK] * n
    else:
        counters = []
        for bstep in steps:
            key = (bstep.orig_index, bstep.predicate)
            counter = probe.get(key)
            if counter is None:
                counter = [0, 0]
                probe[key] = counter
            counters.append(counter)
    if excludes:
        excluded_sets = [excludes.get(b.orig_index) for b in steps]
    else:
        excluded_sets = [None] * n

    vals: List[Any] = [_ABSENT] * program.nslots
    codes: List[Optional[int]] = [None] * program.nslots
    view = _RegView(program.slots, vals, codes)
    base_slots = program.base_slots
    prefix = program.prefix
    slot_of = program.slots
    out_slots = tuple(slot_of.items())

    if bases is None:
        bases = ({},)

    for base in bases:
        for slot in range(program.nslots):
            vals[slot] = _ABSENT
            codes[slot] = None
        for var, slot in base_slots:
            value = base[var]
            vals[slot] = value
            codes[slot] = probe_exact(value)
        failed = False
        prefix_bound: List[Variable] = []
        for filt in prefix:
            if not filt.apply(view, db, prefix_bound):
                failed = True
                break
        if failed:
            continue
        if n == 0:
            yield {
                var: vals[slot]
                for var, slot in out_slots
                if vals[slot] is not _ABSENT
            }
            continue

        matchers: List[Optional[Iterator[List[int]]]] = [None] * n
        undos: List[Optional[List[int]]] = [None] * n
        last = n - 1
        depth = 0
        while True:
            matcher = matchers[depth]
            if matcher is None:
                matcher = _step_matches(
                    steps[depth],
                    relations[depth],
                    vals,
                    codes,
                    view,
                    value_of,
                    counters[depth],
                    excluded_sets[depth],
                    db,
                    slot_of,
                    const_keys[depth],
                    eq_of,
                    probe_exact,
                )
                matchers[depth] = matcher
            undo = next(matcher, None)
            if undo is None:
                matchers[depth] = None
                depth -= 1
                if depth < 0:
                    break
                for slot in undos[depth]:
                    vals[slot] = _ABSENT
                    codes[slot] = None
            else:
                undos[depth] = undo
                if depth == last:
                    yield {
                        var: vals[slot]
                        for var, slot in out_slots
                        if vals[slot] is not _ABSENT
                    }
                    for slot in undo:
                        vals[slot] = _ABSENT
                        codes[slot] = None
                else:
                    depth += 1


_EMPTY_ROWS: Tuple[int, ...] = ()
_COUNTER_SINK = [0, 0]  # shared throwaway when no ProbeStats is attached


def _step_matches(
    bstep: _BatchStep,
    relation: Any,
    vals: List[Any],
    codes: List[Optional[int]],
    view: _RegView,
    value_of: List[Any],
    counter: List[int],
    excluded: Optional[Set[Fact]],
    db: Database,
    slot_of: Dict[Variable, int],
    const_key: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    eq_of: List[int],
    probe_exact: Any,
) -> Iterator[List[int]]:
    """Generator of undo-slot lists, one per accepted row of one step.

    Fuses candidate enumeration and row acceptance for a single step
    entry so the backtracking loop pays one generator resume per row
    instead of a fresh many-argument call (the hot path of every batch
    join).  Candidates come from an eq-keyed bucket; within a bucket,
    exact-code equality is precisely ``values_equal`` (NaN excluded up
    front: it never matches).  The caller must reset each yielded undo
    list's slots to ``_ABSENT`` before resuming.
    """
    if relation.arity != bstep.arity:
        return
    verify: Optional[List[Tuple[int, int]]] = None
    if bstep.positions:
        if const_key is None:
            return
        const_eq, const_exact = const_key
        eq_key: List[int] = []
        verify = []
        for i, (is_slot, payload) in enumerate(bstep.key_ops):
            if is_slot:
                code = codes[payload]
                if code is None:
                    code = probe_exact(vals[payload])
                    if code is None:
                        return
                    codes[payload] = code
                value = vals[payload]
                if value != value:  # NaN never values_equal-matches
                    return
                eq_key.append(eq_of[code])
                verify.append((bstep.positions[i], code))
            else:
                eq_key.append(const_eq[i])
                verify.append((bstep.positions[i], const_exact[i]))
        bucket = relation.candidate_rows(bstep.positions, tuple(eq_key))
        if not bucket:
            return
        if relation.has_dead_rows:
            live = relation.live_rows
            rows_iter: Iterable[int] = (row for row in bucket if live[row])
        else:
            rows_iter = bucket
    else:
        rows_iter = relation.all_rows()
    cols = relation.columns
    filters = bstep.filters
    bind_ops = bstep.bind_ops
    check_ops = bstep.check_ops
    decode = relation.decode_row
    for row in rows_iter:
        if excluded is not None and decode(row) in excluded:
            continue
        counter[0] += 1
        if verify:
            ok = True
            for pos, expected in verify:
                if cols[pos][row] != expected:
                    ok = False
                    break
            if not ok:
                continue
        undo: List[int] = []
        for pos, slot in bind_ops:
            code = cols[pos][row]
            vals[slot] = value_of[code]
            codes[slot] = code
            undo.append(slot)
        ok = True
        for pos, slot in check_ops:
            code = cols[pos][row]
            expected_code = codes[slot]
            if expected_code is not None:
                if code != expected_code:
                    ok = False
                    break
                value = value_of[code]
                if value != value:  # NaN: same code, still not equal
                    ok = False
                    break
            elif not values_equal(vals[slot], value_of[code]):
                ok = False
                break
        if ok and filters:
            fbound: List[Variable] = []
            for filt in filters:
                if not filt.apply(view, db, fbound):
                    ok = False
                    break
            for var in fbound:
                undo.append(slot_of[var])
        if not ok:
            for slot in undo:
                vals[slot] = _ABSENT
                codes[slot] = None
            continue
        counter[1] += 1
        yield undo


# ---------------------------------------------------------------------------
# Vectorized full-plan evaluation (columnar databases + numpy)
# ---------------------------------------------------------------------------


def execute_plan_vectorized(
    plan: BodyPlan, db: Database
) -> Optional[Tuple[int, Dict[Variable, Any]]]:
    """Whole-plan sort-merge join over code columns, no per-row Python.

    Handles the full-evaluation case (no initial substitutions) of plans
    whose steps are pure atom joins — no prefix filters, no step filters
    (conditions, assignments, negation).  Returns ``(n_matches, columns)``
    where ``columns`` maps each plan variable to an int64 array of exact
    codes, one entry per match (multiplicities preserved, enumeration
    order unspecified).  Returns ``None`` when the plan or environment
    does not qualify; the caller falls back to the scalar executor.

    Matches are exactly the scalar executor's: join keys and repeated
    occurrences compare exact codes (``values_equal``), and NaN-coded
    values never match anything, including themselves.
    """
    interner = db._interner
    if _np is None or interner is None:
        return None
    program = _batch_program(plan, ())
    steps = program.steps
    if program.prefix or not steps:
        return None
    neg_filters: List[Any] = []
    for bstep in steps:
        for filt in bstep.filters:
            # Negations defer to a post-join anti-join; conditions and
            # assignments keep the scalar path.
            if type(filt) is not NegFilter or not filt.positions:
                return None
            neg_filters.append(filt)

    probe_exact = interner.probe
    nan_codes = interner.nan_codes
    nan_arr = (
        _np.fromiter(nan_codes, dtype=_np.int64, count=len(nan_codes))
        if nan_codes
        else None
    )
    nslots = program.nslots
    slot_cols: List[Optional[Any]] = [None] * nslots
    n = 1  # implicit single empty frontier row

    for bstep in steps:
        relation = db.relation(bstep.predicate)
        if relation.arity != bstep.arity:
            return (0, {})
        const_ops: List[Tuple[int, int]] = []
        slot_ops: List[Tuple[int, int]] = []
        for i, (is_slot, payload) in enumerate(bstep.key_ops):
            position = bstep.positions[i]
            if is_slot:
                slot_ops.append((position, payload))
            else:
                code = probe_exact(payload)
                if code is None or payload != payload:
                    return (0, {})  # unseen or NaN constant: no matches
                const_ops.append((position, code))
        cols, rows = relation.np_columns()
        if not len(rows):
            return (0, {})

        if slot_ops:
            fcols = []
            for _position, slot in slot_ops:
                arr = slot_cols[slot]
                if arr is None:
                    return None  # key references an unbound slot
                fcols.append(arr)
            if nan_arr is not None:
                fmask = ~_np.isin(fcols[0], nan_arr)
                for arr in fcols[1:]:
                    fmask &= ~_np.isin(arr, nan_arr)
                if not fmask.all():
                    slot_cols = [
                        arr[fmask] if arr is not None else None
                        for arr in slot_cols
                    ]
                    fcols = [arr[fmask] for arr in fcols]
                    n = len(fcols[0])
                    if not n:
                        return (0, {})
            kpos = tuple(position for position, _slot in slot_ops)
            skeys, srows = relation.np_join_key(kpos)
            if len(fcols) == 1:
                fkey = fcols[0]
            else:
                fkey = _np.full(n, _FNV_OFFSET_NP, dtype=_np.uint64)
                prime = _np.uint64(_FNV_PRIME_NP)
                for arr in fcols:
                    fkey = (fkey ^ arr.astype(_np.uint64)) * prime
            left = _np.searchsorted(skeys, fkey, side="left")
            right = _np.searchsorted(skeys, fkey, side="right")
            lens = right - left
            total = int(lens.sum())
            if not total:
                return (0, {})
            fidx = _np.repeat(_np.arange(n), lens)
            cum = _np.concatenate(([0], _np.cumsum(lens)[:-1]))
            sidx = _np.repeat(left - cum, lens) + _np.arange(total)
            rrows = srows[sidx]
            mask: Optional[Any] = None
            if len(fcols) > 1:  # FNV key: verify exact codes per position
                for (position, _slot), arr in zip(slot_ops, fcols):
                    part = cols[position][rrows] == arr[fidx]
                    mask = part if mask is None else mask & part
            for position, code in const_ops:
                part = cols[position][rrows] == code
                mask = part if mask is None else mask & part
            if mask is not None and not mask.all():
                fidx = fidx[mask]
                rrows = rrows[mask]
                if not len(rrows):
                    return (0, {})
        else:
            rrows = rows
            for position, code in const_ops:
                rrows = rrows[cols[position][rrows] == code]
            if not len(rrows):
                return (0, {})
            m = len(rrows)
            fidx = _np.repeat(_np.arange(n), m)
            rrows = _np.tile(rrows, n)

        if bstep.check_ops:
            mask = None
            for position, slot in bstep.check_ops:
                arr = slot_cols[slot]
                if arr is None:
                    return None  # check references an unbound slot
                fvals = arr[fidx]
                part = cols[position][rrows] == fvals
                if nan_arr is not None:
                    part &= ~_np.isin(fvals, nan_arr)
                mask = part if mask is None else mask & part
            if mask is not None and not mask.all():
                fidx = fidx[mask]
                rrows = rrows[mask]
                if not len(rrows):
                    return (0, {})

        slot_cols = [
            arr[fidx] if arr is not None else None for arr in slot_cols
        ]
        for position, slot in bstep.bind_ops:
            slot_cols[slot] = cols[position][rrows]
        n = len(rrows)

    for filt in neg_filters:
        # Anti-join: drop frontier rows for which a values_equal match
        # exists in the negated relation.  Deferring every negation to
        # the end of the join changes pruning order, not the match set.
        keep = _vectorized_neg_keep(
            filt, program, slot_cols, n, db, nan_arr
        )
        if keep is None:
            return None  # unbound slot — should not happen; be safe
        if keep is not True:
            if not keep.any():
                return (0, {})
            if not keep.all():
                slot_cols = [
                    arr[keep] if arr is not None else None
                    for arr in slot_cols
                ]
                n = int(keep.sum())

    return (
        n,
        {
            var: slot_cols[slot]
            for var, slot in program.slots.items()
            if slot_cols[slot] is not None
        },
    )


def _vectorized_neg_keep(
    filt: NegFilter,
    program: "_BatchProgram",
    slot_cols: List[Any],
    n: int,
    db: Database,
    nan_arr: Any,
) -> Any:
    """Keep-mask for one deferred :class:`NegFilter` (vectorized).

    Returns ``True`` when every frontier row survives (no mask needed),
    a bool array otherwise, or ``None`` when a referenced slot is
    unbound and the caller must fall back to the scalar executor.

    Match semantics mirror ``NegFilter.apply``: bound positions compare
    with ``values_equal`` (exact codes, NaN never matches), free
    variables are unconstrained except repeated ones (``samegroups``),
    and an arity-mismatched or empty extension never matches.
    """
    relation = db.relation(filt.predicate)
    if relation.arity != filt.arity or not len(relation):
        return True
    cols, rows = relation.np_columns()
    # Candidate rows must repeat the value of any multiply-occurring
    # free variable (and NaN repeats never count as equal).
    for group in filt.samegroups:
        base = cols[group[0]][rows]
        gmask = _np.ones(len(rows), dtype=bool)
        if nan_arr is not None:
            gmask &= ~_np.isin(base, nan_arr)
        for position in group[1:]:
            gmask &= cols[position][rows] == base
        rows = rows[gmask]
        if not len(rows):
            return True
    probe_exact = db._interner.probe
    const_ops: List[Tuple[int, int]] = []
    slot_ops: List[Tuple[int, int]] = []
    for position, (is_var, payload) in zip(filt.positions, filt.key_parts):
        if is_var:
            slot = program.slots.get(payload)
            if slot is None:
                return None
            slot_ops.append((position, slot))
        else:
            code = probe_exact(payload)
            if code is None or payload != payload:
                return True  # unseen or NaN constant: no fact matches
            const_ops.append((position, code))
    for position, code in const_ops:
        rows = rows[cols[position][rows] == code]
        if not len(rows):
            return True
    if not slot_ops:
        # Constants-only pattern with surviving candidates: the negated
        # atom holds for every frontier row.
        return _np.zeros(n, dtype=bool)
    fcols = []
    for _position, slot in slot_ops:
        arr = slot_cols[slot]
        if arr is None:
            return None
        fcols.append(arr)
    # Frontier rows carrying NaN at a bound position can never match.
    matchable = None
    if nan_arr is not None:
        for arr in fcols:
            part = ~_np.isin(arr, nan_arr)
            matchable = part if matchable is None else matchable & part
    # Candidate set untouched by constants/samegroups: reuse the
    # relation's cached sorted join key instead of re-sorting.
    pristine = not const_ops and not filt.samegroups
    if len(slot_ops) == 1:
        # Single bound position: raw exact codes, presence is exact.
        position = slot_ops[0][0]
        if pristine:
            rkeys, _srows = relation.np_join_key((position,))
        else:
            rkeys = _np.sort(cols[position][rows])
        pos = _np.searchsorted(rkeys, fcols[0])
        pos_c = _np.minimum(pos, len(rkeys) - 1)
        found = rkeys[pos_c] == fcols[0]
    else:
        # FNV fold over the bound positions; verify suspects exactly.
        fkey = _np.full(n, _FNV_OFFSET_NP, dtype=_np.uint64)
        prime = _np.uint64(_FNV_PRIME_NP)
        for (_position, _slot), arr in zip(slot_ops, fcols):
            fkey = (fkey ^ arr.astype(_np.uint64)) * prime
        if pristine:
            skeys, srows = relation.np_join_key(
                tuple(position for position, _slot in slot_ops)
            )
        else:
            rkey = _np.full(len(rows), _FNV_OFFSET_NP, dtype=_np.uint64)
            for (position, _slot), arr in zip(slot_ops, fcols):
                rkey = (
                    rkey ^ cols[position][rows].astype(_np.uint64)
                ) * prime
            order = _np.argsort(rkey, kind="stable")
            skeys = rkey[order]
            srows = rows[order]
        left = _np.searchsorted(skeys, fkey, side="left")
        right = _np.searchsorted(skeys, fkey, side="right")
        lens = right - left
        total = int(lens.sum())
        if not total:
            found = _np.zeros(n, dtype=bool)
        else:
            fidx = _np.repeat(_np.arange(n), lens)
            cum = _np.concatenate(([0], _np.cumsum(lens)[:-1]))
            sidx = _np.repeat(left - cum, lens) + _np.arange(total)
            crows = srows[sidx]
            pair_ok = _np.ones(total, dtype=bool)
            for (position, _slot), arr in zip(slot_ops, fcols):
                pair_ok &= cols[position][crows] == arr[fidx]
            found = _np.zeros(n, dtype=bool)
            found[fidx[pair_ok]] = True
    if matchable is not None:
        found &= matchable
    return ~found


def vectorized_body_substitutions(
    plan: BodyPlan, db: Database
) -> Optional[Iterator[Substitution]]:
    """Vectorized join, scalar-consumable result.

    For rules whose bodies qualify for :func:`execute_plan_vectorized`
    but whose heads need per-match work (Skolem terms, existentials),
    run the join vectorized and materialize one substitution dict per
    match.  Enumeration order is unspecified; the dicts are exactly the
    scalar executor's.  Returns ``None`` when the body does not qualify.
    """
    result = execute_plan_vectorized(plan, db)
    if result is None:
        return None
    n, var_cols = result
    if not n:
        return iter(())
    values = db._interner.values
    variables = list(var_cols.keys())
    columns = [
        [values[c] for c in arr.tolist()] for arr in var_cols.values()
    ]
    rows = zip(*columns) if columns else _repeat((), n)
    return (dict(zip(variables, row)) for row in rows)


def vectorized_rule_matches(
    plans: "RulePlans", db: Database
) -> Optional[Tuple[int, List[Tuple[str, Fact]]]]:
    """Vectorized firing of one simple rule: (n_matches, head facts).

    Qualifies rules whose heads are plain substitution templates (no
    existentials, no Skolem terms) over pure-join bodies; everything
    else returns ``None`` and takes the scalar path.  The facts list is
    ready for the engine's pending-commit queue and ``n_matches`` is the
    exact count the scalar executor would have yielded.
    """
    if plans.placeholders or plans.existentials:
        return None
    result = execute_plan_vectorized(plans.body_plan(), db)
    if result is None:
        return None
    n, var_cols = result
    items: List[Tuple[str, Fact]] = []
    if not n:
        return (0, items)
    values = db._interner.values
    decoded: Dict[Variable, List[Any]] = {}
    for predicate, slots in plans.head_ops:
        out_cols: List[List[Any]] = []
        for kind, payload in slots:
            if kind == _K_VAR:
                col = decoded.get(payload)
                if col is None:
                    codes = var_cols.get(payload)
                    if codes is None:
                        return None  # head variable unbound by the body
                    col = [values[c] for c in codes.tolist()]
                    decoded[payload] = col
                out_cols.append(col)
            else:  # _K_CONST (placeholders/existentials excluded above)
                out_cols.append([payload] * n)
        if out_cols:
            items.extend(zip(_repeat(predicate), zip(*out_cols)))
        else:
            items.extend(_repeat((predicate, ()), n))
    return (n, items)


# ---------------------------------------------------------------------------
# Delta binding (semi-naive evaluation)
# ---------------------------------------------------------------------------


def delta_partition_positions(plans: "RulePlans", index: int) -> Tuple[int, ...]:
    """Delta-atom positions forming the join key of the compiled plan.

    For semi-naive evaluation of body occurrence ``index``, the rest
    plan's first step probes its relation on the variables the delta
    atom bound — the plan's chosen join key.  Partitioning the delta
    facts on exactly those positions sends every fact to the partition
    that owns its join-key value, which is what makes hash-partitioned
    fan-out balanced for key-skew-free data.  Falls back to all binding
    positions when the rest plan starts with an unconstrained scan (a
    cross product), and to position 0 for an all-constant delta atom.
    """
    binder = plans.delta_binder(index)
    rest = plans.delta_plan(index)
    join_vars: Set[Variable] = set()
    if rest.steps:
        join_vars = {
            payload for is_var, payload in rest.steps[0].key_parts if is_var
        }
    positions = tuple(pos for pos, var in binder.bind if var in join_vars)
    if not positions:
        positions = tuple(pos for pos, _ in binder.bind)
    return positions or (0,)


class DeltaBinder:
    """Binds one delta fact against the distinguished recursive atom."""

    __slots__ = ("arity", "verify", "bind", "check")

    def __init__(self, atom: Atom):
        self.arity = len(atom.terms)
        verify: List[Tuple[int, Any]] = []
        bind: List[Tuple[int, Variable]] = []
        check: List[Tuple[int, Variable]] = []
        novel: Set[Variable] = set()
        for i, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name == "_":
                    continue
                if term in novel:
                    check.append((i, term))
                else:
                    novel.add(term)
                    bind.append((i, term))
            else:
                verify.append((i, term))
        self.verify = tuple(verify)
        self.bind = tuple(bind)
        self.check = tuple(check)

    def match(self, fact: Fact) -> Optional[Substitution]:
        if len(fact) != self.arity:
            return None
        for pos, value in self.verify:
            if not values_equal(fact[pos], value):
                return None
        subst: Substitution = {}
        for pos, var in self.bind:
            subst[var] = fact[pos]
        for pos, var in self.check:
            if not values_equal(fact[pos], subst[var]):
                return None
        return subst


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class AggregatePlan:
    """Compiled aggregate rule: pre-body plan + grouping metadata."""

    __slots__ = (
        "assignment", "call", "target", "pre", "pre_plan", "post", "group_vars",
        "_pre_delta", "_pre_binders",
    )

    def __init__(self, rule: Rule):
        self.assignment = next(a for a in rule.assignments() if a.is_aggregate)
        self.call = find_aggregate(self.assignment.expression)
        self.target = self.assignment.target
        pre: List[Any] = []
        post: List[Condition] = []
        for literal in rule.body:
            if literal is self.assignment:
                continue
            if isinstance(literal, Condition) and self.target in literal.variables():
                post.append(literal)
            elif isinstance(literal, Assignment) and self.target in literal.expression.variables():
                raise EvaluationError(
                    f"assignment depending on aggregate target in {rule}"
                )
            else:
                pre.append(literal)
        self.pre = tuple(pre)
        self.pre_plan = compile_body(pre)
        self.post = tuple(post)
        self.group_vars = tuple(sorted(
            (v for v in rule.head_variables()
             if v != self.target and v.name != "_"
             and v not in rule.existential_variables()),
            key=lambda v: v.name,
        ))
        self._pre_delta: Dict[int, BodyPlan] = {}
        self._pre_binders: Dict[int, DeltaBinder] = {}

    def pre_delta_binder(self, index: int) -> DeltaBinder:
        """Delta binder for the ``index``-th pre-body literal (an Atom)."""
        binder = self._pre_binders.get(index)
        if binder is None:
            binder = DeltaBinder(self.pre[index])
            self._pre_binders[index] = binder
        return binder

    def pre_delta_plan(self, index: int) -> BodyPlan:
        """Rest-of-pre plan with the ``index``-th atom's variables bound.

        The incremental maintainer joins each new delta fact of one pre
        occurrence against the rest of the aggregate's contribution body
        — the semi-naive partition over *changed* predicates, mirroring
        :meth:`RulePlans.delta_plan` but scoped to the pre body (the rule
        body proper contains the aggregate assignment, which must never
        appear in a join plan).
        """
        plan = self._pre_delta.get(index)
        if plan is None:
            atom = self.pre[index]
            bound = {v for v in atom.variables() if v.name != "_"}
            rest = [literal for i, literal in enumerate(self.pre) if i != index]
            indexes = [i for i in range(len(self.pre)) if i != index]
            plan = compile_body(rest, bound, indexes)
            self._pre_delta[index] = plan
        return plan


# ---------------------------------------------------------------------------
# Head templates and per-rule plan bundles
# ---------------------------------------------------------------------------

_K_CONST, _K_VAR, _K_EXIST, _K_SKOLEM = 0, 1, 2, 3


class RulePlans:
    """All compiled artifacts of one rule; pieces build lazily."""

    __slots__ = (
        "rule", "is_aggregate", "head_ops", "placeholders", "head_bound_vars",
        "existentials", "_body", "_delta", "_binders", "_aggregate", "_head_check",
        "_rederive",
    )

    def __init__(self, rule: Rule):
        self.rule = rule
        self.is_aggregate = rule.has_aggregate()
        self._body: Optional[BodyPlan] = None
        self._delta: Dict[int, BodyPlan] = {}
        self._binders: Dict[int, DeltaBinder] = {}
        self._aggregate: Optional[AggregatePlan] = None
        self._head_check: Optional[BodyPlan] = None
        self._rederive: Dict[int, BodyPlan] = {}

        body_vars = rule.body_variables()
        head_ops: List[Tuple[str, Tuple[Tuple[int, Any], ...]]] = []
        placeholders: List[Tuple[Variable, str, Tuple[Tuple[bool, Any], ...]]] = []
        head_bound: Set[Variable] = set()
        existentials: Set[Variable] = set()
        for atom in rule.head:
            slots: List[Tuple[int, Any]] = []
            for term in atom.terms:
                if isinstance(term, SkolemTerm):
                    placeholder = Variable(f"$sk{len(placeholders)}")
                    arg_ops = tuple(
                        (isinstance(a, Variable), a) for a in term.arguments
                    )
                    placeholders.append((placeholder, term.functor, arg_ops))
                    slots.append((_K_SKOLEM, placeholder))
                elif isinstance(term, Variable):
                    if term in body_vars:
                        head_bound.add(term)
                        slots.append((_K_VAR, term))
                    else:
                        existentials.add(term)
                        slots.append((_K_EXIST, term))
                else:
                    slots.append((_K_CONST, term))
            head_ops.append((atom.predicate, tuple(slots)))
        self.head_ops = tuple(head_ops)
        self.placeholders = tuple(placeholders)
        self.head_bound_vars = tuple(head_bound)
        self.existentials = tuple(sorted(existentials, key=lambda v: v.name))

    # -- lazy pieces ----------------------------------------------------
    def body_plan(self) -> BodyPlan:
        if self._body is None:
            self._body = compile_body(self.rule.body)
        return self._body

    def delta_binder(self, index: int) -> DeltaBinder:
        binder = self._binders.get(index)
        if binder is None:
            binder = DeltaBinder(self.rule.body[index])
            self._binders[index] = binder
        return binder

    def delta_plan(self, index: int) -> BodyPlan:
        plan = self._delta.get(index)
        if plan is None:
            body = self.rule.body
            atom = body[index]
            bound = {v for v in atom.variables() if v.name != "_"}
            rest = [literal for i, literal in enumerate(body) if i != index]
            indexes = [i for i in range(len(body)) if i != index]
            plan = compile_body(rest, bound, indexes)
            self._delta[index] = plan
        return plan

    def aggregate_plan(self) -> AggregatePlan:
        if self._aggregate is None:
            self._aggregate = AggregatePlan(self.rule)
        return self._aggregate

    def rederive_bound_vars(self, head_index: int) -> Tuple[Variable, ...]:
        """Body variables recoverable from a ground fact of head ``head_index``:
        the atom's frontier variables plus its Skolem argument variables."""
        _, slots = self.head_ops[head_index]
        placeholders = {ph: arg_ops for ph, _, arg_ops in self.placeholders}
        bound: Set[Variable] = set()
        for kind, payload in slots:
            if kind == _K_VAR:
                bound.add(payload)
            elif kind == _K_SKOLEM:
                for is_var, argument in placeholders[payload]:
                    if is_var and argument.name != "_":
                        bound.add(argument)
        return tuple(sorted(bound, key=lambda v: v.name))

    def rederive_plan(self, head_index: int) -> BodyPlan:
        """Goal-directed body plan for re-deriving one head fact.

        Compiled with the recoverable head variables *pre-bound*, because
        :func:`execute_plan` must not be handed initial bindings a plan
        was not compiled for — ``AtomStep.bind`` overwrites variables it
        believes are novel, silently clobbering the goal bindings.
        """
        plan = self._rederive.get(head_index)
        if plan is None:
            plan = compile_body(
                self.rule.body, self.rederive_bound_vars(head_index)
            )
            self._rederive[head_index] = plan
        return plan

    def head_check_plan(self) -> BodyPlan:
        """Conjunctive-match plan over the head, for the restricted chase."""
        if self._head_check is None:
            atoms: List[Atom] = []
            for (predicate, slots), atom in zip(self.head_ops, self.rule.head):
                terms: List[Any] = []
                for kind, payload in slots:
                    terms.append(payload)  # placeholders stand in for Skolems
                atoms.append(Atom(predicate, tuple(terms)))
            bound = set(self.head_bound_vars)
            bound.update(ph for ph, _, _ in self.placeholders)
            self._head_check = compile_body(atoms, bound)
        return self._head_check

    # -- the chase step -------------------------------------------------
    def instantiate_head(
        self,
        substitution: Substitution,
        db: Database,
        stats: Any,
        nulls: Any,
        skolems: Dict[str, SkolemFunctor],
        max_nulls: int,
    ) -> Iterator[Tuple[str, Fact]]:
        """Resolve the head under ``substitution`` (the chase step)."""
        skolem_values: Dict[Variable, Any] = {}
        for placeholder, functor_name, arg_ops in self.placeholders:
            functor = skolems.get(functor_name)
            if functor is None:
                functor = SkolemFunctor(functor_name)
                skolems[functor_name] = functor
            arguments = []
            for is_var, argument in arg_ops:
                if is_var:
                    if argument not in substitution:
                        raise EvaluationError(
                            f"Skolem argument {argument!r} unbound in {self.rule}"
                        )
                    arguments.append(substitution[argument])
                else:
                    arguments.append(argument)
            skolem_values[placeholder] = functor(*arguments)

        resolved: List[Tuple[str, List[Any]]] = []
        for predicate, slots in self.head_ops:
            terms: List[Any] = []
            for kind, payload in slots:
                if kind == _K_CONST:
                    terms.append(payload)
                elif kind == _K_VAR:
                    terms.append(substitution[payload])
                elif kind == _K_SKOLEM:
                    terms.append(skolem_values[payload])
                else:  # _K_EXIST — resolved below
                    terms.append(payload)
            resolved.append((predicate, terms))

        if self.existentials:
            # Restricted chase: skip when the head conjunction is already
            # satisfied by some assignment of the existential variables.
            initial: Substitution = {
                v: substitution[v] for v in self.head_bound_vars
            }
            initial.update(skolem_values)
            for _ in execute_plan(self.head_check_plan(), db, initial):
                return
            if stats.nulls_created + len(self.existentials) > max_nulls:
                raise ResourceLimitError(
                    f"null budget exceeded ({max_nulls}); the program "
                    "likely falls outside the terminating fragment",
                    resource="nulls",
                    limit=max_nulls,
                    stats=stats,
                )
            assignment = {
                variable: nulls.fresh(variable.name)
                for variable in self.existentials
            }
            stats.nulls_created += len(assignment)
            for predicate, terms in resolved:
                yield predicate, tuple(
                    assignment.get(t, t) if isinstance(t, Variable) else t
                    for t in terms
                )
            return

        for predicate, terms in resolved:
            yield predicate, tuple(terms)
