"""Abstract syntax of the Vadalog substitute.

A Vadalog program (Section 4 of the paper) is a set of existential rules

    phi(x, y) -> exists z  psi(x, z)

where ``phi`` (the body) is a conjunction of atoms, negated atoms,
conditions, and expressions (assignments, possibly aggregating), and
``psi`` (the head) is a conjunction of atoms.  Existentially quantified
head variables are either chased with fresh labeled nulls or bound to a
*linker Skolem functor* (``#sk(x, y)`` in our concrete syntax), with the
injective/deterministic/range-disjoint semantics of Section 4.

Programs also carry annotations (``@input``, ``@output``, ...) that bind
predicates to external data sources, mirroring the paper's
``@input(atom, query)`` mechanism (Example 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.vadalog.terms import Variable, is_variable

# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TermExpr:
    """A bare term (constant or variable) used as an expression."""

    term: Any

    def variables(self) -> Set[Variable]:
        return {self.term} if is_variable(self.term) else set()

    def __str__(self) -> str:
        return _term_str(self.term)


@dataclass(frozen=True)
class BinOp:
    """Arithmetic/string binary operation: ``+ - * / %``."""

    op: str
    left: "Expression"
    right: "Expression"

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FunctionCall:
    """A builtin tuple-level function, e.g. ``concat(X, Y)``."""

    name: str
    arguments: Tuple["Expression", ...]

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for argument in self.arguments:
            result |= argument.variables()
        return result

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class AggregateCall:
    """A (monotonic) aggregation, e.g. ``msum(W, <Z>)``.

    ``function`` is one of ``sum|msum|count|mcount|min|mmin|max|mmax|prod``;
    ``value`` is the aggregated expression; ``contributors`` the tuple of
    variables between angle brackets: within one group, each distinct
    contributor binding contributes once (Section 4: "aggregates w over z").
    """

    function: str
    value: "Expression"
    contributors: Tuple[Variable, ...] = ()

    def variables(self) -> Set[Variable]:
        return self.value.variables() | set(self.contributors)

    def __str__(self) -> str:
        if self.contributors:
            contribs = ", ".join(v.name for v in self.contributors)
            return f"{self.function}({self.value}, <{contribs}>)"
        return f"{self.function}({self.value})"


Expression = Union[TermExpr, BinOp, FunctionCall, AggregateCall]


def expression_has_aggregate(expression: Expression) -> bool:
    """True when an aggregate call occurs anywhere in the expression."""
    if isinstance(expression, AggregateCall):
        return True
    if isinstance(expression, BinOp):
        return expression_has_aggregate(expression.left) or expression_has_aggregate(
            expression.right
        )
    if isinstance(expression, FunctionCall):
        return any(expression_has_aggregate(a) for a in expression.arguments)
    return False


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SkolemTerm:
    """Application of a linker Skolem functor in a head atom: ``#sk(X, Y)``."""

    functor: str
    arguments: Tuple[Any, ...]

    def variables(self) -> Set[Variable]:
        return {a for a in self.arguments if is_variable(a)}

    def __str__(self) -> str:
        args = ", ".join(_term_str(a) for a in self.arguments)
        return f"#{self.functor}({args})"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``p(t1, ..., tn)``.

    In heads, terms may additionally be :class:`SkolemTerm` applications.
    """

    predicate: str
    terms: Tuple[Any, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for term in self.terms:
            if is_variable(term):
                result.add(term)
            elif isinstance(term, SkolemTerm):
                result |= term.variables()
        return result

    def __str__(self) -> str:
        args = ", ".join(_term_str(t) for t in self.terms)
        return f"{self.predicate}({args})"


@dataclass(frozen=True)
class NegatedAtom:
    """Stratified negation: ``not p(t1, ..., tn)``."""

    atom: Atom

    def variables(self) -> Set[Variable]:
        return self.atom.variables()

    def __str__(self) -> str:
        return f"not {self.atom}"


@dataclass(frozen=True)
class Condition:
    """A Boolean comparison between two expressions: ``X > 0.5``."""

    op: str  # one of  == != < <= > >=
    left: Expression
    right: Expression

    def variables(self) -> Set[Variable]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Assignment:
    """``V = expr``.

    When ``target`` is already bound at evaluation time the assignment
    degrades to an equality check, following Datalog convention.
    """

    target: Variable
    expression: Expression

    def variables(self) -> Set[Variable]:
        return {self.target} | self.expression.variables()

    @property
    def is_aggregate(self) -> bool:
        return expression_has_aggregate(self.expression)

    def __str__(self) -> str:
        return f"{self.target.name} = {self.expression}"


BodyLiteral = Union[Atom, NegatedAtom, Condition, Assignment]


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """An existential rule ``body -> head``."""

    body: Tuple[BodyLiteral, ...]
    head: Tuple[Atom, ...]
    label: Optional[str] = None

    def body_atoms(self) -> List[Atom]:
        return [lit for lit in self.body if isinstance(lit, Atom)]

    def negated_atoms(self) -> List[NegatedAtom]:
        return [lit for lit in self.body if isinstance(lit, NegatedAtom)]

    def conditions(self) -> List[Condition]:
        return [lit for lit in self.body if isinstance(lit, Condition)]

    def assignments(self) -> List[Assignment]:
        return [lit for lit in self.body if isinstance(lit, Assignment)]

    def has_aggregate(self) -> bool:
        return any(a.is_aggregate for a in self.assignments())

    def frontier(self) -> Set[Variable]:
        """Variables shared between body and head (the universal frontier)."""
        return self.body_variables() & self.head_variables()

    def body_variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for literal in self.body:
            result |= literal.variables()
        return result

    def positive_variables(self) -> Set[Variable]:
        """Variables bound by positive body atoms (the safe ones)."""
        result: Set[Variable] = set()
        for literal in self.body:
            if isinstance(literal, Atom):
                result |= literal.variables()
        return result

    def head_variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for atom in self.head:
            result |= atom.variables()
        return result

    def existential_variables(self) -> Set[Variable]:
        """Head variables not bound anywhere in the body.

        These are chased with fresh labeled nulls (or with Skolem values
        when they appear inside a :class:`SkolemTerm`, which makes the
        variable disappear from this set since SkolemTerm arguments are
        frontier variables).
        """
        bound = self.body_variables()
        return {v for v in self.head_variables() if v not in bound}

    def head_predicates(self) -> Set[str]:
        return {atom.predicate for atom in self.head}

    def body_predicates(self) -> Set[str]:
        result = {atom.predicate for atom in self.body_atoms()}
        result |= {neg.atom.predicate for neg in self.negated_atoms()}
        return result

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        head = ", ".join(str(atom) for atom in self.head)
        return f"{body} -> {head}."


@dataclass(frozen=True)
class Annotation:
    """A program annotation, e.g. ``@input("own", "MATCH ...", "neo4j")``."""

    name: str
    arguments: Tuple[Any, ...]

    def __str__(self) -> str:
        args = ", ".join(_term_str(a) for a in self.arguments)
        return f"@{self.name}({args})."


@dataclass
class Program:
    """A Vadalog program: rules plus annotations."""

    rules: List[Rule] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)

    def input_predicates(self) -> Dict[str, Annotation]:
        """Predicates declared ``@input``, with their annotation."""
        result: Dict[str, Annotation] = {}
        for annotation in self.annotations:
            if annotation.name == "input" and annotation.arguments:
                result[str(annotation.arguments[0])] = annotation
        return result

    def output_predicates(self) -> List[str]:
        """Predicates declared ``@output`` (evaluation results of interest)."""
        return [
            str(a.arguments[0])
            for a in self.annotations
            if a.name == "output" and a.arguments
        ]

    def predicates(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.head_predicates()
            result |= rule.body_predicates()
        return result

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head."""
        return {p for rule in self.rules for p in rule.head_predicates()}

    def edb_predicates(self) -> Set[str]:
        """Predicates only read, never derived."""
        return self.predicates() - self.idb_predicates()

    def extend(self, other: "Program") -> "Program":
        """Return a new program concatenating this one with ``other``."""
        return Program(
            rules=self.rules + other.rules,
            annotations=self.annotations + other.annotations,
        )

    def __str__(self) -> str:
        lines = [str(rule) for rule in self.rules]
        lines += [str(annotation) for annotation in self.annotations]
        return "\n".join(lines)


def _term_str(term: Any) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, SkolemTerm):
        return str(term)
    if isinstance(term, str):
        return f"\"{term}\""
    if isinstance(term, bool):
        # Python's repr would print "True", which re-parses as a variable.
        return "true" if term else "false"
    return repr(term)
