"""Aggregation semantics for the Vadalog substitute.

The paper's programs use multi-tuple expressions such as
``v = sum(w, <z>)`` (Examples 4.1/4.2): within one *group*, ``w`` is
summed over the distinct bindings of the contributor variables ``z``.

Semantics implemented here:

- the *group key* is the binding of every rule variable used in the head
  except the aggregate target (so ``controls(x, y)`` groups by ``(x, y)``);
- within a group, each distinct contributor binding contributes exactly
  once; when several matches share the contributor binding but disagree on
  the value, the collision is resolved *per function* so the choice is
  deterministic **and** consistent with the aggregate's direction of
  monotonicity: ``min``/``mmin`` keeps the smaller value (keeping the
  larger one could report a minimum larger than the data supports), every
  other function keeps the larger value (contributions can only grow
  across chase iterations, preserving the monotonic-aggregation reading
  of Vadalog).  Values of incomparable types (e.g. a string colliding
  with a number) fall back to a deterministic type-name/repr order
  instead of crashing;
- with no contributor list, every distinct whole-body match contributes.

Supported functions: ``sum``/``msum``, ``count``/``mcount``,
``min``/``mmin``, ``max``/``mmax``, ``prod``/``mprod``, ``avg``.

Monotonicity: ``sum`` (over non-negative increments by new contributors),
``count`` and ``max`` only ever grow as the contribution set grows, so
they are safe inside a recursive stratum.  ``prod`` is **not** monotone in
general — multiplying by a factor in ``(0, 1)`` shrinks the product and a
negative factor makes it oscillate — so it is only *conditionally*
admitted in recursion: the explicitly monotonic spelling ``mprod``
asserts non-decreasing use, and the engine validates the assertion at
runtime (every contribution must be ``>= 1``), raising
:class:`~repro.errors.EvaluationError` otherwise.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import EvaluationError

#: Canonical name for each accepted spelling.
CANONICAL = {
    "sum": "sum", "msum": "sum",
    "count": "count", "mcount": "count",
    "min": "min", "mmin": "min",
    "max": "max", "mmax": "max",
    "prod": "prod", "mprod": "prod",
    "avg": "avg",
}

#: Functions that are monotone under growing contribution sets, hence safe
#: inside a recursive stratum (min shrinks, avg oscillates, prod shrinks
#: for factors below one and oscillates for negative factors).
MONOTONIC = {"sum", "count", "max"}

#: Functions admitted in recursion only under a runtime-validated side
#: condition, keyed by the *spelling* that asserts it: ``mprod`` promises
#: non-decreasing use (every contribution >= 1) and the accumulator
#: enforces the promise.
CONDITIONALLY_MONOTONIC = {"mprod"}

#: Sentinel distinguishing "no contribution yet" from a stored ``None``.
_MISSING = object()


def is_monotonic(function: str) -> bool:
    """True when the (canonicalized) aggregate may appear in recursion.

    The *unconditionally* monotone functions.  ``mprod`` is not in this
    set — recursive use is allowed only through the explicit spelling
    (see :data:`CONDITIONALLY_MONOTONIC`) and validated at runtime.
    """
    return CANONICAL.get(function, function) in MONOTONIC


def is_recursion_safe(function: str) -> bool:
    """True when the spelling may appear in a recursive stratum at all."""
    return is_monotonic(function) or function in CONDITIONALLY_MONOTONIC


def _type_order_key(value: Any) -> Tuple[str, str]:
    """A deterministic total order over incomparable values."""
    return (type(value).__name__, repr(value))


def _prefer_larger(value: Any, current: Any) -> Any:
    """The larger of two contribution values, never raising on mixed types."""
    try:
        return value if value > current else current
    except TypeError:
        return (
            value
            if _type_order_key(value) > _type_order_key(current)
            else current
        )


def _prefer_smaller(value: Any, current: Any) -> Any:
    """The smaller of two contribution values, never raising on mixed types."""
    try:
        return value if value < current else current
    except TypeError:
        return (
            value
            if _type_order_key(value) < _type_order_key(current)
            else current
        )


def aggregate(function: str, contributions: Dict[Tuple[Any, ...], Any]) -> Any:
    """Fold the per-contributor values with the requested function."""
    name = CANONICAL.get(function)
    if name is None:
        raise EvaluationError(f"unknown aggregation function {function!r}")
    values: List[Any] = list(contributions.values())
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "prod":
        result = 1
        for value in values:
            result *= value
        return result
    raise EvaluationError(f"unknown aggregation function {function!r}")


class GroupAccumulator:
    """Accumulates contributor -> value maps per group key.

    One instance is used per aggregate-carrying rule evaluation round.

    ``recursive=True`` marks an accumulator feeding a recursive stratum's
    fixpoint: there, conditionally monotone functions (``mprod``) have
    their side condition validated per contribution — a factor below one
    would let the computed product shrink between iterations, producing
    an oscillating fixpoint the chase would silently commit.
    """

    def __init__(self, function: str, recursive: bool = False):
        self.function = function
        canonical = CANONICAL.get(function)
        # Collisions on the same contributor binding resolve in the
        # aggregate's own direction: min keeps the smaller value (keeping
        # the larger would be anti-monotone for min), everything else
        # keeps the larger (the deterministic, grows-only choice).
        self._resolve = _prefer_smaller if canonical == "min" else _prefer_larger
        self._validate_nondecreasing = recursive and function in CONDITIONALLY_MONOTONIC
        self._groups: Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], Any]] = {}

    def contribute(
        self, group: Tuple[Any, ...], contributor: Tuple[Any, ...], value: Any
    ) -> None:
        """Record one contribution (per-function deterministic collisions)."""
        if self._validate_nondecreasing:
            try:
                shrinks = value < 1
            except TypeError:
                shrinks = True
            if shrinks:
                raise EvaluationError(
                    f"mprod in a recursive stratum requires non-decreasing "
                    f"use: contribution {value!r} is below 1, so the product "
                    f"would not grow monotonically across chase iterations"
                )
        bucket = self._groups.setdefault(group, {})
        current = bucket.get(contributor, _MISSING)
        if current is _MISSING or current is None:
            bucket[contributor] = value
        elif value is not None:
            bucket[contributor] = self._resolve(value, current)

    def merge(self, other: "GroupAccumulator") -> None:
        """Fold another accumulator in (same function, partitioned input).

        Used by the partition-parallel executor: workers accumulate the
        contributions of their partition locally, and the coordinator
        merges the partial accumulators.  The per-contributor collision
        resolution is associative and commutative, so the merged result
        is independent of the partitioning.
        """
        if CANONICAL.get(other.function) != CANONICAL.get(self.function):
            raise EvaluationError(
                f"cannot merge accumulators of {other.function!r} "
                f"into {self.function!r}"
            )
        for group, contributions in other._groups.items():
            for contributor, value in contributions.items():
                self.contribute(group, contributor, value)

    def state(self) -> Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], Any]]:
        """The raw group -> contributor -> value state (picklable)."""
        return self._groups

    def load_state(
        self, state: Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], Any]]
    ) -> None:
        """Merge a raw :meth:`state` snapshot (from a worker) in."""
        for group, contributions in state.items():
            for contributor, value in contributions.items():
                self.contribute(group, contributor, value)

    def results(self) -> Iterable[Tuple[Tuple[Any, ...], Any]]:
        """Yield (group key, aggregated value) pairs."""
        for group, contributions in self._groups.items():
            yield group, aggregate(self.function, contributions)
