"""Aggregation semantics for the Vadalog substitute.

The paper's programs use multi-tuple expressions such as
``v = sum(w, <z>)`` (Examples 4.1/4.2): within one *group*, ``w`` is
summed over the distinct bindings of the contributor variables ``z``.

Semantics implemented here:

- the *group key* is the binding of every rule variable used in the head
  except the aggregate target (so ``controls(x, y)`` groups by ``(x, y)``);
- within a group, each distinct contributor binding contributes exactly
  once; when several matches share the contributor binding but disagree on
  the value, the maximum value is used — a deterministic, monotone choice
  (contributions can only grow across chase iterations, preserving the
  monotonic-aggregation reading of Vadalog);
- with no contributor list, every distinct whole-body match contributes.

Supported functions: ``sum``/``msum``, ``count``/``mcount``,
``min``/``mmin``, ``max``/``mmax``, ``prod``/``mprod``, ``avg``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import EvaluationError

#: Canonical name for each accepted spelling.
CANONICAL = {
    "sum": "sum", "msum": "sum",
    "count": "count", "mcount": "count",
    "min": "min", "mmin": "min",
    "max": "max", "mmax": "max",
    "prod": "prod", "mprod": "prod",
    "avg": "avg",
}

#: Functions that are monotone under growing contribution sets, hence safe
#: inside a recursive stratum (min shrinks, avg oscillates).
MONOTONIC = {"sum", "count", "max", "prod"}


def is_monotonic(function: str) -> bool:
    """True when the (canonicalized) aggregate may appear in recursion."""
    return CANONICAL.get(function, function) in MONOTONIC


def aggregate(function: str, contributions: Dict[Tuple[Any, ...], Any]) -> Any:
    """Fold the per-contributor values with the requested function."""
    name = CANONICAL.get(function)
    if name is None:
        raise EvaluationError(f"unknown aggregation function {function!r}")
    values: List[Any] = list(contributions.values())
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "prod":
        result = 1
        for value in values:
            result *= value
        return result
    raise EvaluationError(f"unknown aggregation function {function!r}")


class GroupAccumulator:
    """Accumulates contributor -> value maps per group key.

    One instance is used per aggregate-carrying rule evaluation round.
    """

    def __init__(self, function: str):
        self.function = function
        self._groups: Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], Any]] = {}

    def contribute(
        self, group: Tuple[Any, ...], contributor: Tuple[Any, ...], value: Any
    ) -> None:
        """Record one contribution (deterministic max on collisions)."""
        bucket = self._groups.setdefault(group, {})
        current = bucket.get(contributor)
        if current is None or (value is not None and value > current):
            bucket[contributor] = value

    def results(self) -> Iterable[Tuple[Tuple[Any, ...], Any]]:
        """Yield (group key, aggregated value) pairs."""
        for group, contributions in self._groups.items():
            yield group, aggregate(self.function, contributions)
