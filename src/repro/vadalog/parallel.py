"""Partition-parallel chase execution.

The serial engine already freezes the database during rule firing: every
iteration derives its facts against the *pre-iteration* instance and
commits them in one deduplicating step at the end
(:meth:`~repro.vadalog.engine.Engine._fire_rules`).  Rule firing within
an iteration is therefore embarrassingly parallel — the only sequential
points are the commit and the fixpoint test.  This module exploits that
structure with a BSP-style coordinator:

1. the **coordinator** (:class:`ParallelChase`) owns the per-stratum
   fixpoint loop, builds evaluation *tasks*, and performs the single
   deterministic commit per iteration on the master database;
2. **tasks** split a rule's work along the first step of its compiled
   plan (:mod:`repro.vadalog.plan`): full/naive firings chunk the step-0
   relation, semi-naive firings hash-partition the delta facts by the
   join key the plan chose (:func:`~repro.vadalog.plan.delta_partition_positions`),
   and aggregate rules fan the pre-body matches out and merge the
   partial :class:`~repro.vadalog.aggregates.GroupAccumulator` states —
   the per-contributor collision resolution is associative and
   commutative, so the merge is partition-order independent;
3. **backends** evaluate tasks: a persistent ``multiprocessing`` worker
   pool holding replica databases (deltas are broadcast after each
   commit), a thread pool sharing the master database (the fallback when
   state does not pickle), and an inline serial executor (used below the
   small-delta threshold).

Because workers never commit — they only *derive* — the result set of an
iteration is the union over tasks, which equals the serial engine's
result exactly.  Outputs are bit-identical to serial evaluation for
parallel-safe strata; strata that are not parallel-safe (existential
heads, whose restricted-chase check and null invention are inherently
sequential, and aggregate rules whose head depends on a body witness
beyond the group key) run through the serial engine as a barrier, so
wardedness and chase order are preserved.

Crash containment: a worker death (or an injected dispatch fault) abandons
the pool and re-runs the current stratum serially from the current master
database — correct because the chase is monotone and workers never held
uncommitted state the master depends on.
"""

from __future__ import annotations

import multiprocessing
import pickle
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, ResourceLimitError
from repro.obs.governor import BudgetExceeded
from repro.vadalog.aggregates import GroupAccumulator
from repro.vadalog.ast import AggregateCall, Atom, BinOp, FunctionCall, Rule
from repro.vadalog.database import Database, Fact
from repro.vadalog.plan import (
    RulePlans,
    check_condition,
    delta_partition_positions,
    evaluate_expression,
    execute_plan,
)
from repro.vadalog.stratify import Stratum
from repro.vadalog.terms import Variable

Substitution = Dict[Variable, Any]

#: Below this many step-0 / delta facts a rule is evaluated inline on the
#: coordinator: dispatch + pickling would cost more than the join.
DEFAULT_MIN_PARTITION = 64

#: Backend names accepted by :class:`ParallelChase`.
BACKEND_PROCESS = "process"
BACKEND_THREAD = "thread"
BACKEND_SERIAL = "serial"


class WorkerCrashError(RuntimeError):
    """A worker died (or a dispatch fault was injected) mid-stratum."""


# ---------------------------------------------------------------------------
# Task evaluation (pure functions of replica state; runs in any backend)
# ---------------------------------------------------------------------------


class _NullStats:
    """Stand-in stats object for worker-side head instantiation.

    Parallel-safe rules have no existential head variables, so the only
    field :meth:`RulePlans.instantiate_head` could touch is never read.
    """

    nulls_created = 0


class _StratumContext:
    """Compiled per-stratum state a backend evaluates tasks against."""

    def __init__(self, rules: Sequence[Rule], recursive_predicates: Set[str]):
        self.rules = list(rules)
        self.recursive_predicates = set(recursive_predicates)
        self.plans = [RulePlans(rule) for rule in self.rules]
        # Original body indexes of recursive-atom occurrences, per rule —
        # mirrors the serial engine's semi-naive occurrence partition.
        self.recursive_indexes: List[List[int]] = [
            [
                i
                for i, literal in enumerate(rule.body)
                if isinstance(literal, Atom)
                and literal.predicate in self.recursive_predicates
            ]
            for rule in self.rules
        ]
        # Whether each rule reads its own stratum (drives the recursive
        # mprod validation inside GroupAccumulator).
        self.in_recursion = [
            bool(rule.body_predicates() & self.recursive_predicates)
            for rule in self.rules
        ]
        self.skolems: Dict[str, Any] = {}
        self._stats = _NullStats()

    def _instantiate(
        self,
        plans: RulePlans,
        matches: Iterator[Substitution],
        db: Database,
    ) -> Tuple[int, List[Tuple[str, Fact]]]:
        firings = 0
        derived: List[Tuple[str, Fact]] = []
        for substitution in matches:
            firings += 1
            for predicate, fact in plans.instantiate_head(
                substitution, db, self._stats, None, self.skolems, 0
            ):
                # Pre-filter facts the replica already holds: they would
                # be dropped by the master's deduplicating commit anyway,
                # and not shipping them keeps result payloads small.
                if not db.has(predicate, fact):
                    derived.append((predicate, fact))
        return firings, derived

    def evaluate(
        self,
        db: Database,
        delta: Dict[str, Set[Fact]],
        task: Tuple[Any, ...],
    ) -> Tuple[str, Any, Any]:
        """Evaluate one task against ``db``; returns a result message.

        Task shapes (all payloads picklable):

        - ``("full", rule_idx, chunk)`` — run the body plan with step 0
          restricted to ``chunk``; returns derived head facts.
        - ``("delta", rule_idx, occurrence, chunk)`` — semi-naive firing
          for one recursive occurrence over a delta partition; earlier
          occurrences are excluded from this backend's copy of the delta
          (the exact old/delta/full partition of the serial engine).
        - ``("agg", rule_idx, chunk)`` — accumulate aggregate
          contributions for a pre-body partition; returns the raw
          accumulator state plus one witness group key per group.
        """
        kind = task[0]
        rule_idx = task[1]
        plans = self.plans[rule_idx]
        if kind == "full":
            chunk = task[2]
            firings, derived = self._instantiate(
                plans,
                execute_plan(plans.body_plan(), db, first_candidates=chunk),
                db,
            )
            return ("facts", firings, derived)
        if kind == "delta":
            occurrence, chunk = task[2], task[3]
            binder = plans.delta_binder(occurrence)
            rest_plan = plans.delta_plan(occurrence)
            body = plans.rule.body
            excludes: Dict[int, Set[Fact]] = {}
            for earlier in self.recursive_indexes[rule_idx]:
                if earlier >= occurrence:
                    break
                earlier_delta = delta.get(body[earlier].predicate)
                if earlier_delta:
                    excludes[earlier] = earlier_delta

            def matches() -> Iterator[Substitution]:
                for fact in chunk:
                    base = binder.match(fact)
                    if base is None:
                        continue
                    yield from execute_plan(
                        rest_plan, db, base, excludes if excludes else None
                    )

            firings, derived = self._instantiate(plans, matches(), db)
            return ("facts", firings, derived)
        if kind == "agg":
            chunk = task[2]
            aggregate = plans.aggregate_plan()
            call = aggregate.call
            group_vars = aggregate.group_vars
            accumulator = GroupAccumulator(
                call.function, recursive=self.in_recursion[rule_idx]
            )
            witnesses: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
            for substitution in execute_plan(
                aggregate.pre_plan, db, first_candidates=chunk
            ):
                group = tuple(_hashable(substitution.get(v)) for v in group_vars)
                if call.contributors:
                    contributor = tuple(
                        _hashable(substitution.get(v)) for v in call.contributors
                    )
                else:
                    contributor = tuple(
                        sorted(
                            (
                                (v.name, _hashable(value))
                                for v, value in substitution.items()
                            ),
                            key=lambda item: item[0],
                        )
                    )
                value = evaluate_expression(call.value, substitution)
                accumulator.contribute(group, contributor, value)
                witnesses.setdefault(
                    group, tuple(substitution.get(v) for v in group_vars)
                )
            return ("agg", accumulator.state(), witnesses)
        raise EvaluationError(f"unknown parallel task kind {kind!r}")


def _witness_variables(expression: Any) -> Set[Variable]:
    """Variables an expression reads when aggregate calls are pre-folded.

    Mirrors :func:`repro.vadalog.plan.evaluate_expression` with
    ``aggregate_value`` set: an :class:`AggregateCall` node returns the
    folded value without touching its own variables, so they do not
    constrain parallel safety.
    """
    if isinstance(expression, AggregateCall):
        return set()
    if isinstance(expression, BinOp):
        return _witness_variables(expression.left) | _witness_variables(
            expression.right
        )
    if isinstance(expression, FunctionCall):
        variables: Set[Variable] = set()
        for argument in expression.arguments:
            variables |= _witness_variables(argument)
        return variables
    return expression.variables()


def _hashable(value: Any) -> Any:
    """Make lists/dicts usable in group keys (mirrors the engine's)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _SerialBackend:
    """Inline task evaluation on the coordinator (no pool).

    Shares the master database, so broadcasts are no-ops; used directly
    for ``workers=1``-equivalent debugging and as the executor of last
    resort.
    """

    name = BACKEND_SERIAL

    def __init__(self, db: Database):
        self._db = db
        self._context: Optional[_StratumContext] = None
        self._delta: Dict[str, Set[Fact]] = {}

    def set_rules(self, rules: Sequence[Rule], recursive: Set[str]) -> None:
        self._context = _StratumContext(rules, recursive)

    def broadcast_delta(self, delta: Dict[str, Set[Fact]]) -> None:
        self._delta = delta  # facts are already in the shared master db

    def sync(self, facts: Dict[str, List[Fact]]) -> None:
        pass

    def run_tasks(
        self, tasks: Sequence[Tuple[Any, ...]]
    ) -> List[Tuple[int, Tuple[str, Any, Any]]]:
        context = self._context
        return [
            (0, context.evaluate(self._db, self._delta, task)) for task in tasks
        ]

    def close(self) -> None:
        pass

    def abandon(self) -> None:
        pass


class _ThreadBackend:
    """Thread-pool evaluation against the shared master database.

    The GIL serializes the pure-Python joins, so this backend exists for
    interface parity and as the fallback when replica state does not
    pickle — not for speedup.  Reads are safe: the master database is
    frozen during rule firing, and the lazily built relation indexes are
    idempotent (a racing rebuild produces the same dict).
    """

    name = BACKEND_THREAD

    def __init__(self, db: Database, workers: int):
        from concurrent.futures import ThreadPoolExecutor

        self._db = db
        self._workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="chase"
        )
        self._context: Optional[_StratumContext] = None
        self._delta: Dict[str, Set[Fact]] = {}

    def set_rules(self, rules: Sequence[Rule], recursive: Set[str]) -> None:
        self._context = _StratumContext(rules, recursive)

    def broadcast_delta(self, delta: Dict[str, Set[Fact]]) -> None:
        self._delta = delta

    def sync(self, facts: Dict[str, List[Fact]]) -> None:
        pass

    def run_tasks(
        self, tasks: Sequence[Tuple[Any, ...]]
    ) -> List[Tuple[int, Tuple[str, Any, Any]]]:
        context = self._context
        db, delta = self._db, self._delta
        futures = [
            self._pool.submit(context.evaluate, db, delta, task) for task in tasks
        ]
        return [
            (i % self._workers, future.result())
            for i, future in enumerate(futures)
        ]

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def abandon(self) -> None:
        self.close()


def _worker_main(connection, worker_id: int) -> None:
    """Entry point of one pool process: replica database + task loop."""
    db = Database()
    delta: Dict[str, Set[Fact]] = {}
    context: Optional[_StratumContext] = None
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            connection.close()
            return
        if kind == "init":
            db = Database()
            for predicate, facts in message[1].items():
                db.add_all(predicate, facts)
        elif kind == "sync":
            for predicate, facts in message[1].items():
                db.add_all(predicate, facts)
        elif kind == "delta":
            delta = {}
            for predicate, facts in message[1].items():
                db.add_all(predicate, facts)
                delta[predicate] = set(facts)
        elif kind == "rules":
            context = _StratumContext(message[1], message[2])
        elif kind == "task":
            task_id, task = message[1], message[2]
            try:
                result = context.evaluate(db, delta, task)
                connection.send(("ok", task_id, worker_id, result))
            except Exception as exc:  # ship the failure to the master
                try:
                    connection.send(("err", task_id, worker_id, exc))
                except Exception:
                    connection.send(
                        ("err", task_id, worker_id, EvaluationError(str(exc)))
                    )


class _ProcessBackend:
    """Persistent forked workers, each holding a replica database.

    The master ships the initial snapshot once, then only the
    per-iteration deltas — the replica converges in lock-step with the
    master's commits.  Tasks are dispatched one-at-a-time per worker
    (lock-step send/recv), which bounds pipe buffering and cannot
    deadlock regardless of payload size.
    """

    name = BACKEND_PROCESS

    def __init__(self, db: Database, workers: int):
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        snapshot = {
            predicate: list(db.relation(predicate))
            for predicate in db.predicates()
        }
        # Fail over to threads *before* any worker starts if the state
        # cannot cross a process boundary.
        pickle.dumps(snapshot)
        self._workers = workers
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        for worker_id in range(workers):
            parent, child = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child, worker_id), daemon=True
            )
            process.start()
            child.close()
            self._procs.append(process)
            self._conns.append(parent)
        self._broadcast(("init", snapshot))

    # -- plumbing -------------------------------------------------------
    def _broadcast(self, message: Tuple[Any, ...]) -> None:
        for connection in self._conns:
            try:
                connection.send(message)
            except (OSError, ValueError, pickle.PicklingError) as exc:
                raise WorkerCrashError(f"broadcast failed: {exc}") from exc

    def set_rules(self, rules: Sequence[Rule], recursive: Set[str]) -> None:
        self._broadcast(("rules", list(rules), set(recursive)))

    def broadcast_delta(self, delta: Dict[str, Set[Fact]]) -> None:
        self._broadcast(
            ("delta", {predicate: list(facts) for predicate, facts in delta.items()})
        )

    def sync(self, facts: Dict[str, List[Fact]]) -> None:
        if facts:
            self._broadcast(("sync", facts))

    def run_tasks(
        self, tasks: Sequence[Tuple[Any, ...]]
    ) -> List[Tuple[int, Tuple[str, Any, Any]]]:
        """Evaluate ``tasks``; returns (worker_id, result) in task order."""
        n = len(self._conns)
        queues: List[List[Tuple[int, Tuple[Any, ...]]]] = [[] for _ in range(n)]
        for task_id, task in enumerate(tasks):
            queues[task_id % n].append((task_id, task))
        results: List[Optional[Tuple[int, Tuple[str, Any, Any]]]] = [
            None
        ] * len(tasks)
        outstanding = 0
        cursor = [0] * n

        def dispatch(worker: int) -> int:
            position = cursor[worker]
            if position >= len(queues[worker]):
                return 0
            task_id, task = queues[worker][position]
            cursor[worker] = position + 1
            try:
                self._conns[worker].send(("task", task_id, task))
            except (OSError, ValueError, pickle.PicklingError) as exc:
                raise WorkerCrashError(
                    f"worker {worker} unreachable: {exc}"
                ) from exc
            return 1

        for worker in range(n):
            outstanding += dispatch(worker)
        error: Optional[BaseException] = None
        while outstanding:
            by_conn = {id(c): w for w, c in enumerate(self._conns)}
            for connection in _wait_connections(self._conns, timeout=None):
                worker = by_conn[id(connection)]
                try:
                    message = connection.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"worker {worker} died mid-task: {exc}"
                    ) from exc
                outstanding -= 1
                status, task_id, worker_id, payload = message
                if status == "err":
                    # Finish draining before re-raising so the pool stays
                    # protocol-consistent for the next batch.
                    if error is None:
                        error = payload
                else:
                    results[task_id] = (worker_id, payload)
                outstanding += dispatch(worker)
        if error is not None:
            raise error
        return results  # type: ignore[return-value]

    def close(self) -> None:
        for connection in self._conns:
            try:
                connection.send(("stop",))
                connection.close()
            except (OSError, ValueError):
                pass
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()

    def abandon(self) -> None:
        """Hard-kill the pool after a crash (no protocol goodbye)."""
        for connection in self._conns:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=2.0)


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class ParallelChase:
    """Runs the engine's strata with partitioned fan-out.

    Constructed by :meth:`Engine.run` when ``workers > 1``; owns the
    fixpoint loop for parallel-safe strata and delegates the rest to the
    serial engine (a *serial barrier*).  All commits happen on the master
    database through the engine's own deduplicating commit, so outputs
    are bit-identical to serial evaluation.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.vadalog.engine.Engine`; its tracer,
        governor, iteration caps and plan cache are reused.
    workers:
        Pool width.  ``1`` degenerates to inline evaluation.
    backend:
        Force a backend (``"process"``, ``"thread"``, ``"serial"``).
        Default ``None`` auto-selects: process pool, falling back to
        threads when state does not pickle.
    min_partition:
        Fan out only when a rule has at least this many step-0 / delta
        facts; smaller extents are evaluated inline on the coordinator.
    dispatch_hook:
        Optional callable invoked once per dispatched task batch element
        — the seam used by fault-injection tests (an exception from the
        hook is handled exactly like a worker crash).
    """

    def __init__(
        self,
        engine: Any,
        workers: int,
        backend: Optional[str] = None,
        min_partition: Optional[int] = None,
        dispatch_hook: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.workers = workers
        self.backend_choice = backend
        if min_partition is None:
            min_partition = DEFAULT_MIN_PARTITION
        self.min_partition = max(1, min_partition)
        self.dispatch_hook = dispatch_hook
        self.tracer = engine.tracer
        self.governor = engine.governor
        self._backend: Optional[Any] = None
        #: Facts committed on the master but not yet shipped to replicas.
        self._pending_sync: Dict[str, List[Fact]] = {}
        #: (rule index, task) pairs deferred for inline evaluation within
        #: the current firing round (extent below ``min_partition``).
        self._inline_tasks: List[Tuple[int, Tuple[Any, ...]]] = []
        #: Cached inline-evaluation context for the current stratum.
        self._inline_context: Optional[_StratumContext] = None

    # -- backend lifecycle ---------------------------------------------
    def _ensure_backend(self, db: Database) -> Any:
        if self._backend is not None:
            return self._backend
        choice = self.backend_choice
        if choice == BACKEND_SERIAL or self.workers == 1:
            self._backend = _SerialBackend(db)
        elif choice == BACKEND_THREAD:
            self._backend = _ThreadBackend(db, self.workers)
        else:
            try:
                self._backend = _ProcessBackend(db, self.workers)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                if choice == BACKEND_PROCESS:
                    raise
                if self.tracer is not None:
                    self.tracer.event(
                        "parallel.backend_fallback",
                        to=BACKEND_THREAD,
                        reason=str(exc),
                    )
                self._backend = _ThreadBackend(db, self.workers)
        # A fresh backend starts from a full snapshot: nothing pending.
        self._pending_sync.clear()
        return self._backend

    def _reset_backend(self) -> None:
        if self._backend is not None:
            self._backend.abandon()
            self._backend = None
        self._pending_sync.clear()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._pending_sync.clear()

    # -- safety analysis ------------------------------------------------
    def _rule_parallel_safe(self, rule: Rule, stats: Any) -> bool:
        if rule.existential_variables():
            # Null invention and the restricted-chase satisfaction check
            # read facts committed by *earlier firings of the same
            # iteration* on the serial path; replaying that order across
            # workers would serialize them anyway.
            return False
        if rule.has_aggregate():
            plans = self.engine._plans_for(rule, stats)
            aggregate = plans.aggregate_plan()
            if plans.placeholders:
                # Skolem head arguments may reference non-group witness
                # variables; keep the witness semantics of the serial path.
                return False
            # Variables the assignment expression actually *reads* when
            # the aggregate call is replaced by the folded value.  A
            # variable outside the group key (e.g. ``T = msum(V) + W``
            # with non-group ``W``) takes whichever witness binding the
            # serial scan saw last — scan-order dependent, so only the
            # serial scan reproduces it.
            needed = _witness_variables(aggregate.assignment.expression)
            needed -= {aggregate.target}
            if needed - set(aggregate.group_vars):
                return False
        return True

    def _stratum_parallel_safe(self, stratum: Stratum, stats: Any) -> bool:
        return all(
            self._rule_parallel_safe(rule, stats) for rule in stratum.rules
        )

    # -- stratum evaluation --------------------------------------------
    def evaluate_stratum(
        self,
        stratum: Stratum,
        index: int,
        db: Database,
        stats: Any,
        nulls: Any,
        skolems: Dict[str, Any],
    ) -> None:
        """Evaluate one stratum, in parallel when safe, serially otherwise."""
        if not self._stratum_parallel_safe(stratum, stats):
            self._serial_barrier(stratum, index, db, stats, nulls, skolems)
            return
        try:
            self._evaluate_parallel(stratum, index, db, stats, nulls, skolems)
        except WorkerCrashError as crash:
            if self.tracer is not None:
                self.tracer.count("parallel.worker_crashes", 1)
                self.tracer.event(
                    "parallel.crash_fallback", stratum=index, reason=str(crash)
                )
            # The chase is monotone and every commit lives on the master:
            # rerunning the stratum serially from the current database is
            # correct (at worst it re-derives facts the commit dedups).
            self._reset_backend()
            self._serial_barrier(stratum, index, db, stats, nulls, skolems)

    def _serial_barrier(
        self,
        stratum: Stratum,
        index: int,
        db: Database,
        stats: Any,
        nulls: Any,
        skolems: Dict[str, Any],
    ) -> None:
        if self.tracer is not None:
            self.tracer.count("parallel.serial_barriers", 1)
        heads: Set[str] = set()
        for rule in stratum.rules:
            heads |= rule.head_predicates()
        before = {predicate: db.facts(predicate) for predicate in heads}
        try:
            self.engine._evaluate_stratum(stratum, index, db, stats, nulls, skolems)
        finally:
            # Even a budget-tripped stratum committed partial results that
            # replicas must see before any later parallel work.
            for predicate, old in before.items():
                fresh = db.facts(predicate) - old
                if fresh:
                    self._pending_sync.setdefault(predicate, []).extend(fresh)

    def _evaluate_parallel(
        self,
        stratum: Stratum,
        index: int,
        db: Database,
        stats: Any,
        nulls: Any,
        skolems: Dict[str, Any],
    ) -> None:
        engine = self.engine
        governor = self.governor
        backend = self._ensure_backend(db)
        self._flush_sync(backend)
        backend.set_rules(stratum.rules, stratum.predicates)
        span = (
            self.tracer.span(
                "parallel.stratum",
                index=index,
                workers=self.workers,
                backend=backend.name,
                recursive=stratum.recursive,
                predicates=sorted(stratum.predicates),
            )
            if self.tracer is not None
            else None
        )
        iterations = 0
        try:
            if not stratum.recursive:
                new_facts = self._fire_parallel(
                    stratum.rules, db, stats, nulls, skolems, None, None, backend
                )
                self._register_commit(backend, new_facts, recursive=False)
                if governor is not None:
                    violation = governor.check(stats)
                    if violation is not None:
                        engine._trip(violation, stats)
                return

            delta: Optional[Dict[str, Set[Fact]]] = None
            for iteration in range(engine.max_iterations):
                stats.iterations += 1
                iterations = iteration + 1
                new_delta = self._fire_parallel(
                    stratum.rules,
                    db,
                    stats,
                    nulls,
                    skolems,
                    delta if (engine.semi_naive and iteration > 0) else None,
                    stratum.predicates,
                    backend,
                )
                if not any(new_delta.values()):
                    return
                self._register_commit(backend, new_delta, recursive=True)
                delta = new_delta
                if governor is not None:
                    violation = governor.check(stats)
                    if violation is None and (
                        governor.max_stratum_iterations is not None
                        and iterations >= governor.max_stratum_iterations
                    ):
                        violation = BudgetExceeded(
                            "iterations",
                            governor.max_stratum_iterations,
                            iterations,
                            f"stratum {index}",
                        )
                    if violation is not None:
                        engine._trip(violation, stats)
            raise ResourceLimitError(
                f"stratum over {sorted(stratum.predicates)} did not reach a "
                f"fixpoint within {engine.max_iterations} iterations",
                resource="iterations",
                limit=engine.max_iterations,
                stats=stats,
            )
        finally:
            if span is not None:
                span.set(iterations=iterations)
                span.__exit__(None, None, None)

    # -- the per-iteration fan-out --------------------------------------
    def _register_commit(
        self,
        backend: Any,
        new_facts: Dict[str, Set[Fact]],
        recursive: bool,
    ) -> None:
        """Ship freshly committed facts to the replicas.

        Recursive iterations broadcast immediately (the facts double as
        the next iteration's delta); non-recursive commits queue for the
        next parallel stratum.
        """
        live = {p: facts for p, facts in new_facts.items() if facts}
        if not live:
            return
        if recursive:
            backend.broadcast_delta(live)
        else:
            for predicate, facts in live.items():
                self._pending_sync.setdefault(predicate, []).extend(facts)

    def _flush_sync(self, backend: Any) -> None:
        if self._pending_sync:
            backend.sync(
                {p: list(facts) for p, facts in self._pending_sync.items()}
            )
            self._pending_sync.clear()

    def _fire_parallel(
        self,
        rules: List[Rule],
        db: Database,
        stats: Any,
        nulls: Any,
        skolems: Dict[str, Any],
        delta: Optional[Dict[str, Set[Fact]]],
        recursive_predicates: Optional[Set[str]],
        backend: Any,
    ) -> Dict[str, Set[Fact]]:
        """One parallel firing round; returns the committed new facts."""
        engine = self.engine
        tracer = self.tracer
        tasks: List[Tuple[Any, ...]] = []
        #: task position -> rule index (to attribute aggregate partials).
        task_rules: List[int] = []
        pending: List[Tuple[str, Fact]] = []
        new_facts: Dict[str, Set[Fact]] = {}
        per_worker: Dict[int, int] = {}
        #: rule index -> (accumulator, witnesses) merged across tasks.
        partials: Dict[int, Tuple[GroupAccumulator, Dict[Any, Tuple[Any, ...]]]] = {}

        def fold(rule_idx: int, worker_id: int, result: Tuple[str, Any, Any]) -> None:
            """Merge one task result into the round's pending state."""
            if result[0] == "facts":
                _, firings, derived = result
                stats.rule_firings += firings
                per_worker[worker_id] = per_worker.get(worker_id, 0) + firings
                pending.extend(derived)
                return
            _, state, witnesses = result
            merged = partials.get(rule_idx)
            if merged is None:
                rule = rules[rule_idx]
                plans = engine._plans_for(rule, stats)
                in_recursion = bool(
                    recursive_predicates
                    and rule.body_predicates() & recursive_predicates
                )
                merged = (
                    GroupAccumulator(
                        plans.aggregate_plan().call.function,
                        recursive=in_recursion,
                    ),
                    {},
                )
                partials[rule_idx] = merged
            merged[0].load_state(state)
            for group, witness in witnesses.items():
                merged[1].setdefault(group, witness)

        self._inline_tasks = []
        for rule_idx, rule in enumerate(rules):
            plans = engine._plans_for(rule, stats)
            if plans.is_aggregate:
                built = self._build_aggregate_tasks(plans, rule_idx, db)
            elif delta is not None and recursive_predicates:
                built = self._build_delta_tasks(
                    plans, rule_idx, delta, recursive_predicates
                )
            else:
                built = self._build_full_tasks(plans, rule_idx, db)
            for task in built:
                tasks.append(task)
                task_rules.append(rule_idx)
        inline = self._inline_tasks
        self._inline_tasks = []

        if self.dispatch_hook is not None:
            try:
                for _ in range(len(tasks) + len(inline)):
                    self.dispatch_hook()
            except Exception as exc:
                raise WorkerCrashError(f"dispatch fault: {exc}") from exc

        task_span = (
            tracer.span(
                "parallel.round",
                tasks=len(tasks),
                inline=len(inline),
                rules=len(rules),
            )
            if tracer is not None
            else None
        )
        try:
            results = backend.run_tasks(tasks) if tasks else []
            for (worker_id, result), rule_idx in zip(results, task_rules):
                fold(rule_idx, worker_id, result)

            # Inline work: rules whose extent was below the partition
            # threshold, evaluated directly against the master database.
            if inline:
                if tracer is not None:
                    tracer.count("parallel.inline_tasks", len(inline))
                context = self._inline_context
                if context is None or context.rules != rules:
                    context = _StratumContext(rules, recursive_predicates or set())
                    self._inline_context = context
                inline_delta = delta or {}
                for rule_idx, task in inline:
                    fold(rule_idx, 0, context.evaluate(db, inline_delta, task))
        finally:
            if task_span is not None:
                task_span.set(
                    firings_by_worker={
                        str(w): n for w, n in sorted(per_worker.items())
                    }
                )
                task_span.__exit__(None, None, None)

        # Finish aggregates on the master: fold the merged accumulator,
        # rebuild the group substitution, and instantiate heads.
        for rule_idx in sorted(partials):
            rule = rules[rule_idx]
            plans = engine._plans_for(rule, stats)
            aggregate = plans.aggregate_plan()
            accumulator, witnesses = partials[rule_idx]
            for group, value in accumulator.results():
                base: Substitution = dict(
                    zip(aggregate.group_vars, witnesses[group])
                )
                substitution = dict(base)
                substitution[aggregate.target] = evaluate_expression(
                    aggregate.assignment.expression, base, aggregate_value=value
                )
                if not all(
                    check_condition(c, substitution) for c in aggregate.post
                ):
                    continue
                stats.rule_firings += 1
                for predicate, fact in plans.instantiate_head(
                    substitution, db, stats, nulls, skolems, engine.max_nulls
                ):
                    pending.append((predicate, fact))

        if tracer is not None and tasks:
            tracer.count("parallel.tasks", len(tasks))
        engine._commit_pending(pending, db, stats, new_facts)
        return new_facts

    # -- task builders ---------------------------------------------------
    def _chunk(self, facts: List[Fact]) -> List[List[Fact]]:
        """Deterministic near-even slicing of a fact list."""
        workers = self.workers
        size, extra = divmod(len(facts), workers)
        chunks: List[List[Fact]] = []
        start = 0
        for i in range(workers):
            end = start + size + (1 if i < extra else 0)
            if end > start:
                chunks.append(facts[start:end])
            start = end
        return chunks

    def _observe_skew(self, chunks: List[List[Fact]]) -> None:
        if self.tracer is None or not chunks:
            return
        sizes = [len(c) for c in chunks]
        mean = sum(sizes) / len(sizes)
        if mean > 0:
            self.tracer.observe("parallel.partition_skew", max(sizes) / mean)

    def _build_full_tasks(
        self, plans: RulePlans, rule_idx: int, db: Database
    ) -> List[Tuple[Any, ...]]:
        steps = plans.body_plan().steps
        if not steps:
            self._inline_tasks.append((rule_idx, ("full", rule_idx, None)))
            return []
        extent = list(db.relation(steps[0].predicate))
        if len(extent) < self.min_partition:
            self._inline_tasks.append((rule_idx, ("full", rule_idx, extent)))
            return []
        chunks = self._chunk(extent)
        self._observe_skew(chunks)
        return [("full", rule_idx, chunk) for chunk in chunks]

    def _build_delta_tasks(
        self,
        plans: RulePlans,
        rule_idx: int,
        delta: Dict[str, Set[Fact]],
        recursive_predicates: Set[str],
    ) -> List[Tuple[Any, ...]]:
        body = plans.rule.body
        tasks: List[Tuple[Any, ...]] = []
        for occurrence, literal in enumerate(body):
            if not (
                isinstance(literal, Atom)
                and literal.predicate in recursive_predicates
            ):
                continue
            delta_facts = delta.get(literal.predicate)
            if not delta_facts:
                continue
            facts = list(delta_facts)
            if len(facts) < self.min_partition:
                self._inline_tasks.append(
                    (rule_idx, ("delta", rule_idx, occurrence, facts))
                )
                continue
            positions = delta_partition_positions(plans, occurrence)
            buckets: List[List[Fact]] = [[] for _ in range(self.workers)]
            for fact in facts:
                key = tuple(fact[p] for p in positions)
                buckets[hash(key) % self.workers].append(fact)
            chunks = [bucket for bucket in buckets if bucket]
            self._observe_skew(chunks)
            tasks.extend(
                ("delta", rule_idx, occurrence, chunk) for chunk in chunks
            )
        return tasks

    def _build_aggregate_tasks(
        self, plans: RulePlans, rule_idx: int, db: Database
    ) -> List[Tuple[Any, ...]]:
        steps = plans.aggregate_plan().pre_plan.steps
        if not steps:
            self._inline_tasks.append((rule_idx, ("agg", rule_idx, None)))
            return []
        extent = list(db.relation(steps[0].predicate))
        if len(extent) < self.min_partition:
            self._inline_tasks.append((rule_idx, ("agg", rule_idx, extent)))
            return []
        chunks = self._chunk(extent)
        self._observe_skew(chunks)
        return [("agg", rule_idx, chunk) for chunk in chunks]
