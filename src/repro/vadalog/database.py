"""Fact storage for the Vadalog substitute.

A :class:`Database` associates each predicate with a relation — a set of
ground tuples over constants, labeled nulls, and Skolem values (Section 4:
"A (database) instance over S associates to each relation symbol a
relation of the respective arity over the domain of constants and
nulls").

Per-predicate, per-position hash indexes are maintained incrementally so
the chase can look up join candidates in expected O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.vadalog.columnar import ColumnarRelation, SpillStore, ValueInterner
from repro.vadalog.terms import values_equal

Fact = Tuple[Any, ...]

#: Shared empty candidate set for missed index probes.
_EMPTY: Tuple[Fact, ...] = ()


class Relation:
    """The extension of a single predicate, with positional indexes."""

    __slots__ = ("name", "arity", "_facts", "_indexes", "_composite")

    def __init__(self, name: str, arity: Optional[int] = None):
        self.name = name
        self.arity = arity
        self._facts: Set[Fact] = set()
        # position -> value -> set of facts; built lazily per position.
        self._indexes: Dict[int, Dict[Any, Set[Fact]]] = {}
        # (positions...) -> value tuple -> insertion-ordered fact dict
        # (an ordered set: O(1) delete, list-like iteration order); built
        # lazily per position combination (the access paths of compiled
        # join plans).
        self._composite: Dict[Tuple[int, ...], Dict[Tuple[Any, ...], Dict[Fact, None]]] = {}

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it is new."""
        if self.arity is None:
            self.arity = len(fact)
        elif len(fact) != self.arity:
            raise EvaluationError(
                f"arity mismatch for {self.name!r}: expected {self.arity}, "
                f"got {len(fact)}"
            )
        if fact in self._facts:
            return False
        self._facts.add(fact)
        for position, index in self._indexes.items():
            index.setdefault(fact[position], set()).add(fact)
        for positions, index2 in self._composite.items():
            key = tuple(fact[p] for p in positions)
            index2.setdefault(key, {})[fact] = None
        return True

    def add_many(self, facts: Iterable[Iterable[Any]]) -> int:
        """Insert many facts; returns the number of new ones.

        When no index has been built yet (the common bulk-load case) the
        facts go straight into the backing set with a single arity check
        per fact and no per-fact index maintenance.
        """
        if self._indexes or self._composite:
            added = 0
            for fact in facts:
                if self.add(tuple(fact)):
                    added += 1
            return added
        backing = self._facts
        before = len(backing)
        arity = self.arity
        for fact in facts:
            tup = tuple(fact)
            if arity is None:
                arity = self.arity = len(tup)
            elif len(tup) != arity:
                raise EvaluationError(
                    f"arity mismatch for {self.name!r}: expected {arity}, "
                    f"got {len(tup)}"
                )
            backing.add(tup)
        return len(backing) - before

    def add_columns(self, cols: Sequence[Sequence[Any]]) -> int:
        """Insert facts given as parallel value columns; returns #new.

        The tuple backend has no columnar fast path, so this is just
        :meth:`add_many` over the transposed rows — it exists so the
        graph/dictionary extraction layer can stay backend-agnostic.
        """
        if not cols:
            return 0
        return self.add_many(zip(*cols))

    def remove(self, fact: Fact) -> bool:
        """Delete a fact; returns True when it was present.

        Both index kinds are maintained in place (emptied buckets are
        dropped), so a relation stays probe-consistent across the
        delete/re-derive passes of incremental maintenance.
        """
        fact = tuple(fact)
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        for position, index in self._indexes.items():
            bucket = index.get(fact[position])
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del index[fact[position]]
        for positions, index2 in self._composite.items():
            key = tuple(fact[p] for p in positions)
            bucket = index2.get(key)
            if bucket is not None:
                # Ordered-dict buckets make this O(1); the old list-backed
                # buckets paid an O(n) ``list.remove`` per DRed deletion.
                bucket.pop(fact, None)
                if not bucket:
                    del index2[key]
        return True

    def reset(self, facts: Iterable[Iterable[Any]]) -> None:
        """Replace the whole extension; indexes rebuild lazily."""
        self._facts = {tuple(fact) for fact in facts}
        self._indexes = {}
        self._composite = {}

    def copy(self) -> "Relation":
        """A fresh relation with the same facts; indexes rebuild lazily."""
        clone = Relation(self.name, self.arity)
        clone._facts = set(self._facts)
        return clone

    def _ensure_index(self, position: int) -> Dict[Any, Set[Fact]]:
        index = self._indexes.get(position)
        if index is None:
            index = {}
            for fact in self._facts:
                index.setdefault(fact[position], set()).add(fact)
            self._indexes[position] = index
        return index

    def _ensure_composite(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Any, ...], Dict[Fact, None]]:
        index = self._composite.get(positions)
        if index is None:
            index = {}
            for fact in self._facts:
                key = tuple(fact[p] for p in positions)
                index.setdefault(key, {})[fact] = None
            self._composite[positions] = index
        return index

    def lookup_key(
        self, positions: Tuple[int, ...], key: Tuple[Any, ...]
    ) -> Iterable[Fact]:
        """Exact-match candidates for values ``key`` at ``positions``.

        Unlike :meth:`lookup` this uses one composite index over all the
        bound positions, so the result needs no per-fact filtering beyond
        the caller's semantic equality check (hash buckets equate 1 with
        1.0 and True, which the chase distinguishes).
        """
        if len(positions) == 1:
            return self._ensure_index(positions[0]).get(key[0], _EMPTY)
        return self._ensure_composite(positions).get(key, _EMPTY)

    def lookup(self, bound: Sequence[Tuple[int, Any]]) -> Iterator[Fact]:
        """Iterate facts matching the given (position, value) constraints.

        The most selective indexed position is used as the access path and
        the remaining constraints are verified per fact with the chase's
        type-aware equality (a plain ``==`` filter would equate 1, 1.0
        and True, which ``lookup_key`` documents the chase distinguishes).
        """
        if not bound:
            yield from self._facts
            return
        # Pick the constraint with the smallest candidate set.
        best_candidates: Optional[Set[Fact]] = None
        for position, value in bound:
            index = self._ensure_index(position)
            candidates = index.get(value)
            if candidates is None:
                return
            if best_candidates is None or len(candidates) < len(best_candidates):
                best_candidates = candidates
        for fact in best_candidates or ():
            if all(values_equal(fact[position], value) for position, value in bound):
                yield fact


class Database:
    """A set of relations, keyed by predicate name.

    Two storage backends share one facade: the original tuple-set
    :class:`Relation` (``columnar=False``, the default for direct
    construction) and the dictionary-encoded :class:`ColumnarRelation`
    (``columnar=True``, the engine's default).  All facade methods accept
    and return decoded fact tuples either way; :meth:`to_backend`
    converts between the two.
    """

    def __init__(
        self,
        columnar: bool = False,
        spill_path: Optional[str] = None,
        interner: Optional[ValueInterner] = None,
    ):
        self._relations: Dict[str, Relation] = {}
        self.columnar = columnar
        # An externally supplied interner (e.g. the columnar property
        # graph's, when extracting) is shared, not copied: interners are
        # append-only, so producer and consumer can keep encoding into
        # the same dictionary and values present on either side are
        # stored once.
        self._interner: Optional[ValueInterner] = (
            (interner if interner is not None else ValueInterner())
            if columnar
            else None
        )
        self._spill_path = spill_path
        self._store: Optional[SpillStore] = None

    def relation(self, predicate: str) -> Relation:
        """Return (creating on demand) the relation for ``predicate``."""
        relation = self._relations.get(predicate)
        if relation is None:
            if self.columnar:
                relation = ColumnarRelation(predicate, interner=self._interner)
                if self._store is not None:
                    relation.attach_store(self._store)
            else:
                relation = Relation(predicate)
            self._relations[predicate] = relation
        return relation

    def add(self, predicate: str, fact: Iterable[Any]) -> bool:
        """Insert one fact; returns True when it is new."""
        return self.relation(predicate).add(tuple(fact))

    def add_all(self, predicate: str, facts: Iterable[Iterable[Any]]) -> int:
        """Insert many facts; returns the number of new ones."""
        return self.relation(predicate).add_many(facts)

    def add_columns(self, predicate: str, cols: Sequence[Sequence[Any]]) -> int:
        """Insert facts given as parallel value columns; returns #new.

        Columnar relations feed the vectorized insert core directly
        (no per-fact tuple is ever built); the tuple backend transposes
        and falls back to :meth:`add_all` semantics.
        """
        return self.relation(predicate).add_columns(cols)

    def add_all_report(self, predicate: str, facts: List[Fact]) -> List[Fact]:
        """Insert many facts; returns the ones that were new, in order.

        Columnar relations take a vectorized bulk path; the tuple
        backend inserts per fact.  Either way dedup is sequential-add
        semantics (first ``==``-level occurrence wins).
        """
        relation = self.relation(predicate)
        report = getattr(relation, "add_many_report", None)
        if report is not None:
            return report(facts)
        add = relation.add
        return [fact for fact in facts if add(tuple(fact))]

    def remove(self, predicate: str, fact: Iterable[Any]) -> bool:
        """Delete one fact; returns True when it was present."""
        relation = self._relations.get(predicate)
        if relation is None:
            return False
        return relation.remove(tuple(fact))

    def remove_all(self, predicate: str, facts: Iterable[Iterable[Any]]) -> int:
        """Delete many facts; returns the number actually present."""
        relation = self._relations.get(predicate)
        if relation is None:
            return 0
        removed = 0
        for fact in facts:
            if relation.remove(tuple(fact)):
                removed += 1
        return removed

    def reset(self, predicate: str, facts: Iterable[Iterable[Any]]) -> None:
        """Replace the extension of ``predicate`` wholesale."""
        self.relation(predicate).reset(facts)

    def facts(self, predicate: str) -> Set[Fact]:
        """A snapshot set of the facts of ``predicate`` (empty if unknown)."""
        relation = self._relations.get(predicate)
        return set(relation) if relation is not None else set()

    def columns(self, predicate: str) -> Optional[List[List[Any]]]:
        """Decoded value columns of ``predicate``; None if empty/arity-0.

        Columnar relations decode column-wise (no per-fact tuple);
        the tuple backend transposes its extension.  Relations are
        ``==``-level sets either way, so the columns carry no duplicate
        rows — only same-OID rows with different payloads.
        """
        relation = self._relations.get(predicate)
        if relation is None or not len(relation):
            return None
        getter = getattr(relation, "value_columns", None)
        if getter is not None:
            return getter()
        transposed = list(zip(*relation))
        return [list(col) for col in transposed] if transposed else None

    def has(self, predicate: str, fact: Tuple[Any, ...]) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and fact in relation

    def count(self, predicate: str) -> int:
        relation = self._relations.get(predicate)
        return len(relation) if relation is not None else 0

    def predicates(self) -> List[str]:
        return [name for name, rel in self._relations.items() if len(rel)]

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        clone = Database(columnar=self.columnar, spill_path=self._spill_path)
        if self.columnar:
            # Copies share the append-only interner: codes stay
            # comparable across snapshots and no re-encoding happens.
            clone._interner = self._interner
        for name, relation in self._relations.items():
            clone._relations[name] = relation.copy()
        return clone

    def to_backend(self, columnar: bool) -> "Database":
        """A copy of this database on the requested backend.

        Same-backend requests still copy (callers rely on isolation).
        """
        if columnar == self.columnar:
            return self.copy()
        clone = Database(columnar=columnar, spill_path=self._spill_path)
        for name, relation in self._relations.items():
            target = clone.relation(name)
            if relation.arity is not None:
                target.arity = relation.arity
            target.add_many(relation)
        return clone

    # -- spill-to-disk ---------------------------------------------------
    def _ensure_store(self) -> Optional[SpillStore]:
        if not self.columnar:
            return None
        if self._store is None:
            self._store = SpillStore(self._spill_path)
            for relation in self._relations.values():
                relation.attach_store(self._store)
        return self._store

    def total_resident_facts(self) -> int:
        """Facts currently held in memory (spilled relations excluded)."""
        if not self.columnar:
            return self.total_facts()
        return sum(
            len(rel) for rel in self._relations.values() if not rel.spilled
        )

    def spill_over_budget(
        self, budget: int, keep: Iterable[str] = ()
    ) -> List[str]:
        """Spill cold relations until ≤ ``budget`` facts stay resident.

        Relations named in ``keep`` (needed by upcoming strata) are never
        spilled.  Largest-first eviction; returns the spilled names.
        Tuple-backend databases are a no-op.
        """
        if not self.columnar or budget < 0:
            return []
        resident = self.total_resident_facts()
        if resident <= budget:
            return []
        keep_set = set(keep)
        store = self._ensure_store()
        if store is None:
            return []
        victims = sorted(
            (
                rel
                for name, rel in self._relations.items()
                if name not in keep_set and not rel.spilled and len(rel)
            ),
            key=len,
            reverse=True,
        )
        spilled: List[str] = []
        for rel in victims:
            if resident <= budget:
                break
            resident -= rel.spill()
            spilled.append(rel.name)
        return spilled

    def compact(self) -> None:
        """Reclaim tombstoned rows in every columnar relation.

        Only call at safe points: compaction renumbers row ids, which
        invalidates any in-flight index iteration.
        """
        if not self.columnar:
            return
        for relation in self._relations.values():
            if not relation.spilled:
                relation.compact()

    def close(self) -> None:
        """Release the spill store (if one was opened)."""
        if self._store is not None:
            self._store.close()
            self._store = None

    def merge(self, other: "Database") -> int:
        """Insert every fact of ``other``; returns how many were new."""
        added = 0
        for name in other._relations:
            added += self.add_all(name, other._relations[name])
        return added

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
