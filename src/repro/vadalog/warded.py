"""Wardedness and piecewise-linearity analysis.

Section 4 of the paper: "Wardedness poses syntactical restrictions on the
interplay of existential quantification and recursion, so that the
reasoning task remains decidable and PTIME in data complexity", and the
star-free MetaLog fragment "can be reduced into a warded program"; with
transitive closure the non-recursive program compiles "into a Piecewise
Linear Datalog± [17], a subset of Warded Datalog±".

This module implements the standard static analysis:

- **Affected positions**: positions ``p[i]`` that may host labeled nulls —
  the positions of existential variables in heads, propagated through
  frontier variables that occur *only* in affected body positions.
- **Harmful / dangerous variables**: a body variable is *harmful* when all
  its body occurrences are in affected positions; it is *dangerous* when
  it is harmful and also occurs in the head.
- **Warded rule**: all dangerous variables occur in a single body atom
  (the *ward*), and the ward shares only harmless variables with the rest
  of the body.
- **Piecewise-linear program**: every rule has at most one body atom whose
  predicate is mutually recursive with the rule's head predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import WardednessError
from repro.vadalog.ast import Atom, Program, Rule
from repro.vadalog.stratify import recursive_predicates
from repro.vadalog.terms import Variable, is_variable

Position = Tuple[str, int]


def affected_positions(program: Program) -> Set[Position]:
    """Compute the affected positions of ``program`` to fixpoint."""
    affected: Set[Position] = set()
    # Base: positions of existential variables in heads.
    for rule in program.rules:
        existential = rule.existential_variables()
        for atom in rule.head:
            for i, term in enumerate(atom.terms):
                # Note: SkolemTerm head terms are NOT affected — linker
                # Skolem functors range over the dedicated set I, not over
                # the labeled nulls N (Section 4), and are deterministic,
                # so they never behave like invented nulls.
                if is_variable(term) and term in existential:
                    affected.add((atom.predicate, i))
    # Propagation: a frontier variable occurring only in affected body
    # positions propagates affectedness to its head positions.
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            body_atoms = rule.body_atoms()
            occurrences: Dict[Variable, List[Position]] = {}
            for atom in body_atoms:
                for i, term in enumerate(atom.terms):
                    if is_variable(term) and term.name != "_":
                        occurrences.setdefault(term, []).append((atom.predicate, i))
            for variable, positions in occurrences.items():
                if not positions:
                    continue
                if all(p in affected for p in positions):
                    for atom in rule.head:
                        for i, term in enumerate(atom.terms):
                            if term == variable and (atom.predicate, i) not in affected:
                                affected.add((atom.predicate, i))
                                changed = True
    return affected


def harmful_variables(rule: Rule, affected: Set[Position]) -> Set[Variable]:
    """Body variables whose every occurrence is in an affected position."""
    occurrences: Dict[Variable, List[Position]] = {}
    for atom in rule.body_atoms():
        for i, term in enumerate(atom.terms):
            if is_variable(term) and term.name != "_":
                occurrences.setdefault(term, []).append((atom.predicate, i))
    return {
        variable
        for variable, positions in occurrences.items()
        if positions and all(p in affected for p in positions)
    }


def dangerous_variables(rule: Rule, affected: Set[Position]) -> Set[Variable]:
    """Harmful variables that also appear in the head."""
    return harmful_variables(rule, affected) & rule.head_variables()


@dataclass
class WardednessReport:
    """Result of the wardedness analysis of a whole program."""

    is_warded: bool
    affected: Set[Position]
    violations: List[str] = field(default_factory=list)
    wards: Dict[int, Atom] = field(default_factory=dict)  # rule index -> ward

    def raise_if_violated(self) -> None:
        if not self.is_warded:
            raise WardednessError("; ".join(self.violations))


def check_warded(program: Program) -> WardednessReport:
    """Check every rule of ``program`` for wardedness."""
    affected = affected_positions(program)
    report = WardednessReport(is_warded=True, affected=affected)
    for index, rule in enumerate(program.rules):
        dangerous = dangerous_variables(rule, affected)
        if not dangerous:
            continue
        harmful = harmful_variables(rule, affected)
        ward = None
        for atom in rule.body_atoms():
            atom_vars = {t for t in atom.terms if is_variable(t)}
            if dangerous <= atom_vars:
                # Candidate ward: must share only harmless variables with
                # the other body atoms.
                others: Set[Variable] = set()
                for other in rule.body_atoms():
                    if other is atom:
                        continue
                    others |= {t for t in other.terms if is_variable(t)}
                shared_harmful = (atom_vars & others) & harmful
                if not shared_harmful:
                    ward = atom
                    break
        if ward is None:
            report.is_warded = False
            report.violations.append(
                f"rule {index} ({rule}) is not warded: dangerous variables "
                f"{sorted(v.name for v in dangerous)} admit no ward"
            )
        else:
            report.wards[index] = ward
    return report


def check_piecewise_linear(program: Program) -> bool:
    """True when every rule has at most one body atom mutually recursive
    with its head predicate(s) (the Piecewise Linear Datalog± condition)."""
    recursive = recursive_predicates(program)
    for rule in program.rules:
        heads = rule.head_predicates()
        if not heads & recursive:
            continue
        recursive_body_atoms = [
            atom
            for atom in rule.body_atoms()
            if atom.predicate in recursive and _mutually_recursive(
                program, atom.predicate, heads
            )
        ]
        if len(recursive_body_atoms) > 1:
            return False
    return True


def _mutually_recursive(program: Program, predicate: str, heads: Set[str]) -> bool:
    """True when ``predicate`` and any head predicate share a cycle."""
    recursive = recursive_predicates(program)
    if predicate not in recursive:
        return False
    # Same SCC test: reachable both ways in the dependency graph.
    from repro.vadalog.stratify import dependency_edges

    positive, negative = dependency_edges(program)
    edges = positive | negative
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)

    def reachable(start: str, goal: str) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            for nxt in adjacency.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    return any(
        reachable(predicate, head) and reachable(head, predicate) for head in heads
    )
