"""Command-line interface: the KGModel software modules as a tool.

Section 2.2 lists the framework's software modules — the KGSE (schema
environment), MTV (MetaLog-to-Vadalog translator), and SSST (schema
translator / materializer).  This CLI exposes each:

.. code-block:: console

    kgmodel validate  schema.gsl
    kgmodel render    schema.gsl --format dot
    kgmodel translate schema.gsl --model relational --ddl
    kgmodel compile   rules.metalog
    kgmodel reason    schema.gsl data.json rules.metalog -o enriched.json
    kgmodel update    schema.gsl data.json rules.metalog --from changes.json
    kgmodel load      schema.gsl data.json --target graph-store --graceful
    kgmodel stream    schema.gsl data.json rules.metalog --feed feed.jsonl \
                      --log-dir wal/ --deploy graph-store --deploy relational
    kgmodel stats     --companies 5000 --seed 42

(Equivalently ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core import (
    parse_gsl,
    render_super_schema,
    schema_to_dot,
    supermodel_table,
)
from repro.deploy import generate_cypher_constraints, generate_ddl, generate_rdfs
from repro.errors import KGModelError
from repro.graph.io import load_graph, save_graph
from repro.metalog import compile_metalog, parse_metalog
from repro.ssst import SSST, IntensionalMaterializer


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_validate(args) -> int:
    schema = parse_gsl(_read(args.schema))
    problems = schema.validate(strict=False)
    print(schema.summary())
    if problems:
        for problem in problems:
            print(f"  problem: {problem}")
        return 1
    print("  schema is well-formed")
    return 0


def cmd_render(args) -> int:
    if args.format == "supermodel":
        print(supermodel_table())
        return 0
    schema = parse_gsl(_read(args.schema))
    if args.format == "dot":
        print(schema_to_dot(schema))
    else:
        for grapheme in render_super_schema(schema):
            print(grapheme)
    return 0


def cmd_translate(args) -> int:
    schema = parse_gsl(_read(args.schema))
    schema.validate()
    result = SSST().translate(schema, args.model, strategy=args.strategy)
    target = result.target_schema
    print(target.summary(), file=sys.stderr)
    if args.ddl:
        if args.model != "relational":
            raise KGModelError("--ddl requires --model relational")
        print(generate_ddl(target))
    elif args.cypher:
        if args.model != "property-graph":
            raise KGModelError("--cypher requires --model property-graph")
        print(generate_cypher_constraints(target))
    elif args.rdfs:
        if args.model != "rdf":
            raise KGModelError("--rdfs requires --model rdf")
        print(generate_rdfs(target))
    else:
        print(target.summary())
    return 0


def cmd_compile(args) -> int:
    program = parse_metalog(_read(args.program))
    compiled = compile_metalog(program)
    print(compiled.program)
    return 0


def cmd_reason(args) -> int:
    from repro.obs import (
        RecordingTracer,
        ResourceGovernor,
        profile_summary,
        write_trace,
    )
    from repro.vadalog.engine import Engine

    schema = parse_gsl(_read(args.schema))
    data = load_graph(args.data)
    sigma = parse_metalog(_read(args.program))

    tracer = None
    if args.trace or args.profile:
        tracer = RecordingTracer()
    governor = None
    if any(
        v is not None
        for v in (args.budget_seconds, args.max_facts, args.max_resident_facts)
    ):
        governor = ResourceGovernor(
            budget_seconds=args.budget_seconds,
            max_facts=args.max_facts,
            max_resident_facts=args.max_resident_facts,
            graceful=True,
        )
    engine = None
    if (
        tracer is not None
        or governor is not None
        or args.workers
        or args.no_columnar
    ):
        engine = Engine(
            tracer=tracer,
            governor=governor,
            workers=args.workers,
            columnar=not args.no_columnar,
        )
    checkpoint = None
    if args.resume and not args.checkpoint:
        raise KGModelError("--resume requires --checkpoint DIR")
    if args.checkpoint:
        from repro.ssst import MaterializationCheckpoint
        from repro.ssst.checkpoint import run_fingerprint

        checkpoint = MaterializationCheckpoint(args.checkpoint, tracer=tracer)
        if not args.resume:
            # Checkpointing without --resume starts fresh: drop any
            # snapshots a previous (possibly interrupted) run left.
            checkpoint.begin(
                run_fingerprint(schema, data, sigma, args.instance_oid)
            )
            checkpoint.clear()
    report = IntensionalMaterializer(engine=engine, tracer=tracer).materialize(
        schema, data, sigma, instance_oid=args.instance_oid,
        checkpoint=checkpoint,
    )
    if report.resumed_from is not None:
        print(
            f"resumed from checkpointed phase {report.resumed_from!r}"
            " (completed phases skipped)",
            file=sys.stderr,
        )
    print("derived:", report.derived_counts, file=sys.stderr)
    if report.flush_dropped_edges:
        print(
            f"warning: {report.flush_dropped_edges} derived edge(s) dropped "
            "at flush (endpoint missing from the dictionary graph)",
            file=sys.stderr,
        )
    print(
        "phases:",
        {k: f"{v:.2f}s" for k, v in report.phase_breakdown().items()},
        file=sys.stderr,
    )
    if report.truncated:
        violation = report.violation
        detail = ""
        if violation is not None:
            detail = (
                f" ({violation.resource} limit {violation.limit},"
                f" used {violation.used})"
            )
        print(
            f"warning: budget exceeded{detail} — results are partial",
            file=sys.stderr,
        )
    if args.trace:
        records = write_trace(tracer, args.trace)
        print(f"trace: {records} records written to {args.trace}", file=sys.stderr)
    if args.profile:
        print(profile_summary(tracer), file=sys.stderr)
    if args.output:
        save_graph(report.instance.data, args.output)
        print(f"enriched instance written to {args.output}", file=sys.stderr)
    else:
        from repro.graph.io import graph_to_json

        print(graph_to_json(report.instance.data))
    return 3 if report.truncated else 0


def cmd_update(args) -> int:
    import json

    from repro.ssst import RegistryDelta

    schema = parse_gsl(_read(args.schema))
    data = load_graph(args.data)
    sigma = parse_metalog(_read(args.program))

    delta = RegistryDelta()
    if args.changes:
        with open(args.changes, "r", encoding="utf-8") as handle:
            delta = RegistryDelta.from_json_dict(json.load(handle))
    for raw in args.add or []:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise KGModelError(f"--add expects a JSON object: {exc}") from exc
        if not isinstance(entry, dict) or "id" not in entry or "type" not in entry:
            raise KGModelError(
                f"--add entry needs at least 'id' and 'type': {raw!r}"
            )
        properties = dict(entry.get("properties", {}))
        if "source" in entry and "target" in entry:
            delta.add_edges.append(
                (entry["id"], entry["source"], entry["target"],
                 entry["type"], properties)
            )
        else:
            delta.add_nodes.append((entry["id"], entry["type"], properties))
    for element_id in args.remove or []:
        if data.has_node(element_id):
            delta.remove_nodes.append(element_id)
        elif data.has_edge(element_id):
            delta.remove_edges.append(element_id)
        else:
            raise KGModelError(
                f"--remove {element_id!r}: no such node or edge in {args.data}"
            )
    if delta.is_empty():
        raise KGModelError(
            "no changes given (use --from changes.json, --add, or --remove)"
        )

    materializer = IntensionalMaterializer()
    report = materializer.materialize(
        schema, data, sigma, instance_oid=args.instance_oid,
        retain=True, track_support=args.track_support,
    )
    if report.truncated:
        print(
            "warning: base materialization was truncated — refusing to "
            "apply the delta on partial results",
            file=sys.stderr,
        )
        return 3
    outcome = materializer.update(delta)
    print(
        f"applied: +{len(delta.add_nodes)} nodes, +{len(delta.add_edges)} edges, "
        f"-{len(delta.remove_nodes)} nodes, -{len(delta.remove_edges)} edges",
        file=sys.stderr,
    )
    print(
        "update phases:",
        {k: f"{v:.3f}s" for k, v in outcome.phase_breakdown().items()},
        f"(strata recomputed: {outcome.strata_recomputed},"
        f" dictionary elements flushed: {outcome.flushed})",
        file=sys.stderr,
    )
    if outcome.flush_delta is not None:
        print("store delta:", outcome.flush_delta.summary(), file=sys.stderr)
    if args.output:
        save_graph(outcome.instance.data, args.output)
        print(f"enriched instance written to {args.output}", file=sys.stderr)
    else:
        from repro.graph.io import graph_to_json

        print(graph_to_json(outcome.instance.data))
    return 0


def cmd_load(args) -> int:
    from repro.deploy import (
        GRACEFUL,
        STRICT,
        FaultInjector,
        GraphStore,
        QuarantineReport,
        RetryPolicy,
        TripleStore,
        load_graph_store,
        load_triple_store,
    )

    schema = parse_gsl(_read(args.schema))
    schema.validate()
    data = load_graph(args.data)

    if args.target == "graph-store":
        store = GraphStore()
        store.deploy(SSST().translate(schema, "property-graph").target_schema)
        loader = load_graph_store
    else:
        store = TripleStore()
        store.deploy(SSST().translate(schema, "rdf").target_schema)
        loader = load_triple_store

    target = store
    if args.fault_rate or args.crash_after is not None:
        target = FaultInjector(
            store,
            fault_rate=args.fault_rate,
            crash_after=args.crash_after,
            seed=args.fault_seed,
        )
        print(
            f"fault injection: rate={args.fault_rate}"
            f" crash_after={args.crash_after} seed={args.fault_seed}",
            file=sys.stderr,
        )

    quarantine = QuarantineReport()
    report = loader(
        schema,
        data,
        target,
        mode=GRACEFUL if args.graceful else STRICT,
        policy=RetryPolicy(max_attempts=args.retries, sleep=lambda _s: None),
        batch_size=args.batch_size,
        quarantine=quarantine,
    )
    print(report.summary(), file=sys.stderr)
    if args.quarantine:
        quarantine.save(args.quarantine)
        print(
            f"quarantine report ({len(quarantine)} rejection(s)) written to "
            f"{args.quarantine}",
            file=sys.stderr,
        )
    return 4 if quarantine else 0


def cmd_stream(args) -> int:
    import json

    from repro.deploy import (
        FaultInjector,
        GraphStore,
        QuarantineReport,
        RetryPolicy,
        TripleStore,
    )
    from repro.deploy.relational_engine import RelationalEngine
    from repro.obs import ResourceGovernor
    from repro.stream import (
        DeltaStream,
        FeedFaultInjector,
        JsonlFeed,
        MaterializerSink,
    )

    schema = parse_gsl(_read(args.schema))
    schema.validate()
    data = load_graph(args.data)
    sigma = parse_metalog(_read(args.program))

    sink = MaterializerSink(
        schema, data=data, sigma=sigma, instance_oid=args.instance_oid,
        retry=RetryPolicy(max_attempts=args.retries),
    )
    inject_store_faults = args.fault_rate or args.crash_after is not None
    for target_name in args.deploy or []:
        if target_name == "graph-store":
            store = GraphStore()
            store.deploy(SSST().translate(schema, "property-graph").target_schema)
            attach = sink.attach_graph_store
        elif target_name == "triple-store":
            store = TripleStore()
            store.deploy(SSST().translate(schema, "rdf").target_schema)
            attach = sink.attach_triple_store
        else:
            store = RelationalEngine()
            store.deploy(SSST().translate(schema, "relational").target_schema)
            attach = sink.attach_relational_engine
        if inject_store_faults:
            store = FaultInjector(
                store, fault_rate=args.fault_rate,
                crash_after=args.crash_after, seed=args.fault_seed,
            )
        attach(store)

    source = JsonlFeed(args.feed)
    if args.torn_rate or args.duplicate_rate or args.reorder_rate:
        source = FeedFaultInjector(
            source, seed=args.fault_seed, torn_rate=args.torn_rate,
            duplicate_rate=args.duplicate_rate, reorder_rate=args.reorder_rate,
        )
        print(
            f"feed faults: torn={args.torn_rate} dup={args.duplicate_rate} "
            f"reorder={args.reorder_rate} seed={args.fault_seed}",
            file=sys.stderr,
        )
    governor = None
    if args.budget_ms is not None:
        governor = ResourceGovernor(
            budget_seconds=args.budget_ms / 1000.0,
            graceful=not args.strict_backpressure,
        )

    quarantine = QuarantineReport()
    stream = DeltaStream(
        source, sink, args.log_dir,
        governor=governor,
        batch_window=args.batch_window,
        checkpoint_every=args.checkpoint_every,
        follow=args.follow,
        poll_interval=args.poll_interval,
        max_batches=args.max_batches,
        quarantine=quarantine,
    )
    try:
        report = stream.run(resume=args.resume)
    except KeyboardInterrupt:
        stream.stop()
        report = stream.report
        print("\ninterrupted; stream state is checkpointed", file=sys.stderr)
    print(json.dumps(report.to_json(), indent=2))
    if args.quarantine:
        quarantine.save(args.quarantine)
        print(
            f"quarantine report ({len(quarantine)} rejection(s)) written to "
            f"{args.quarantine}",
            file=sys.stderr,
        )
    return 4 if quarantine else 0


def cmd_stats(args) -> int:
    from repro.finkg import ShareholdingConfig, generate_shareholding_graph
    from repro.graph import summarize

    graph = generate_shareholding_graph(
        ShareholdingConfig(companies=args.companies, seed=args.seed)
    )
    stats = summarize(graph)
    print(stats.format_table())
    return 0


def demo_serve_inputs(companies: int, seed: int):
    """The demo workload: the Example 4.1 control program over a
    synthetic shareholding registry."""
    from repro.finkg.generator import (
        ShareholdingConfig,
        generate_shareholding_data,
    )

    program = (
        "company(X) -> controls(X, X).\n"
        "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
        " -> controls(X, Y).\n"
    )
    data = generate_shareholding_data(
        ShareholdingConfig(companies=companies, seed=seed)
    )
    inputs = {
        "company": [(c,) for c in data.companies],
        "own": [
            (s.owner, s.company, s.percentage) for s in data.stakes
        ],
    }
    return program, inputs


def cmd_serve(args) -> int:
    import json

    from repro.serve import (
        KGModelServer,
        ResultCache,
        ServeState,
        ServiceHandlers,
    )

    if args.demo_companies is not None:
        program_text, inputs = demo_serve_inputs(
            args.demo_companies, args.seed
        )
        if args.program or args.facts:
            print(
                "error: --demo-companies replaces --program/--facts",
                file=sys.stderr,
            )
            return 2
    else:
        if not args.program:
            print(
                "error: provide --program FILE (with --facts) or "
                "--demo-companies N",
                file=sys.stderr,
            )
            return 2
        with open(args.program, encoding="utf-8") as handle:
            program_text = handle.read()
        inputs = {}
        if args.facts:
            with open(args.facts, encoding="utf-8") as handle:
                raw = json.load(handle)
            inputs = {
                predicate: [tuple(fact) for fact in facts]
                for predicate, facts in raw.items()
            }

    print("materializing base state ...", flush=True)
    state = ServeState(
        program_text, inputs, columnar=not args.no_columnar
    )
    snap = state.snapshot
    print(
        f"materialized {snap.total_facts()} facts over "
        f"{len(snap.predicates())} predicates (epoch {snap.epoch})"
    )
    stream = None
    if args.feed:
        import threading

        from repro.stream import DeltaStream, JsonlFeed, ServeStateSink

        if not args.feed_log:
            print("error: --feed requires --feed-log DIR", file=sys.stderr)
            return 2
        sink = ServeStateSink(state=state)
        stream = DeltaStream(
            JsonlFeed(args.feed), sink, args.feed_log,
            batch_window=args.batch_window, follow=True,
            poll_interval=args.poll_interval,
        )
        resume = stream.checkpoint.exists()

        def _ingest() -> None:
            try:
                stream.run(resume=resume)
            except Exception as exc:
                print(f"feed ingestion stopped: {exc}", file=sys.stderr)

        threading.Thread(
            target=_ingest, daemon=True, name="kgmodel-feed"
        ).start()
        print(
            f"ingesting {args.feed} (log: {args.feed_log}, "
            f"resume: {resume})", flush=True,
        )
    handlers = ServiceHandlers(
        state,
        cache=ResultCache(args.cache_size),
        readonly=args.readonly,
        default_budget_ms=args.budget_ms,
        default_max_facts=args.max_facts,
        stream=stream,
    )
    server = KGModelServer(handlers, host=args.host, port=args.port)
    host, port = server.address
    print(f"serving on http://{host}:{port} (Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        if stream is not None:
            stream.stop()
        server.httpd.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kgmodel",
        description="KGModel: model-independent knowledge-graph design tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate a GSL schema file")
    p.add_argument("schema")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("render", help="render a GSL schema (KGSE)")
    p.add_argument("schema", nargs="?", help="GSL file (not needed for --format supermodel)")
    p.add_argument(
        "--format", choices=["graphemes", "dot", "supermodel"],
        default="graphemes",
    )
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("translate", help="translate a schema (SSST, Alg. 1)")
    p.add_argument("schema")
    p.add_argument(
        "--model", required=True,
        choices=["property-graph", "relational", "rdf", "csv"],
    )
    p.add_argument("--strategy", default=None)
    p.add_argument("--ddl", action="store_true", help="emit SQL DDL")
    p.add_argument("--cypher", action="store_true", help="emit Cypher constraints")
    p.add_argument("--rdfs", action="store_true", help="emit an RDF-S document")
    p.set_defaults(func=cmd_translate)

    p = sub.add_parser("compile", help="compile MetaLog to Vadalog (MTV)")
    p.add_argument("program")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "reason", help="materialize an intensional component (Alg. 2)"
    )
    p.add_argument("schema")
    p.add_argument("data", help="instance graph (JSON interchange format)")
    p.add_argument("program", help="MetaLog rules file")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--instance-oid", default=1, type=int)
    p.add_argument(
        "--trace", default=None, metavar="OUT.JSONL",
        help="write a JSONL execution trace (spans, counters, histograms)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print a per-span profile summary to stderr",
    )
    p.add_argument(
        "--budget-seconds", default=None, type=float,
        help="wall-clock budget; exceeding it yields partial results (exit 3)",
    )
    p.add_argument(
        "--max-facts", default=None, type=int,
        help="derived-fact budget; exceeding it yields partial results (exit 3)",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="persist each completed chase phase into this directory",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint's last completed phase "
             "(requires --checkpoint)",
    )
    p.add_argument(
        "--workers", default=None, type=int, metavar="N",
        help="partition-parallel chase with N workers (results are "
             "bit-identical to serial; strata with existential heads "
             "run serially)",
    )
    p.add_argument(
        "--no-columnar", action="store_true",
        help="use the original tuple-set fact storage instead of the "
             "columnar (dictionary-encoded) backend",
    )
    p.add_argument(
        "--max-resident-facts", default=None, type=int, metavar="N",
        help="spill cold relations to sqlite3-backed column pages when "
             "more than N facts are resident (columnar backend only)",
    )
    p.set_defaults(func=cmd_reason)

    p = sub.add_parser(
        "update",
        help="apply a registry delta incrementally (delta-chase, no re-run)",
    )
    p.add_argument("schema")
    p.add_argument("data", help="instance graph (JSON interchange format)")
    p.add_argument("program", help="MetaLog rules file")
    p.add_argument(
        "--from", dest="changes", default=None, metavar="CHANGES.JSON",
        help="batch of changes: {add_nodes, add_edges, remove_nodes, remove_edges}",
    )
    p.add_argument(
        "--add", action="append", metavar="JSON",
        help='inline element to add, e.g. \'{"id": "o9", "source": "c1", '
             '"target": "c9", "type": "OWNS", "properties": {"percentage": 0.6}}\''
             " (an edge when it has source+target keys, else a node)",
    )
    p.add_argument(
        "--remove", action="append", metavar="ID",
        help="node or edge id to remove (resolved against the data graph)",
    )
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--instance-oid", default=1, type=int)
    p.add_argument(
        "--track-support", action="store_true",
        help="record derivation support during the chase so deletions can "
             "walk exact support sets instead of over-deleting",
    )
    p.set_defaults(func=cmd_update)

    p = sub.add_parser(
        "load", help="transactionally load an instance into a deployed store"
    )
    p.add_argument("schema")
    p.add_argument("data", help="instance graph (JSON interchange format)")
    p.add_argument(
        "--target", choices=["graph-store", "triple-store"],
        default="graph-store",
    )
    grp = p.add_mutually_exclusive_group()
    grp.add_argument(
        "--strict", action="store_true",
        help="fail fast: first integrity violation rolls back the whole load "
             "(default)",
    )
    grp.add_argument(
        "--graceful", action="store_true",
        help="degrade gracefully: quarantine rejected records, load the rest "
             "(exit 4 when any are quarantined)",
    )
    p.add_argument(
        "--quarantine", default=None, metavar="OUT.JSON",
        help="write the per-record rejection report to this file",
    )
    p.add_argument("--batch-size", default=200, type=int)
    p.add_argument(
        "--retries", default=5, type=int,
        help="max attempts per store mutation on transient faults",
    )
    p.add_argument(
        "--fault-rate", default=0.0, type=float,
        help="inject transient faults at this per-mutation probability",
    )
    p.add_argument("--fault-seed", default=0, type=int)
    p.add_argument(
        "--crash-after", default=None, type=int,
        help="inject a crash after N successful mutations",
    )
    p.set_defaults(func=cmd_load)

    p = sub.add_parser(
        "stream",
        help="consume a change feed crash-safely (durable CDC pipeline)",
    )
    p.add_argument("schema")
    p.add_argument("data", help="base instance graph (JSON interchange format)")
    p.add_argument("program", help="MetaLog rules file")
    p.add_argument(
        "--feed", required=True, metavar="FEED.JSONL",
        help="change feed: one JSON record per line "
             '({"seq": 1, "op": "add_node", "id": ..., "type": ..., '
             '"properties": {...}})',
    )
    p.add_argument(
        "--log-dir", required=True, metavar="DIR",
        help="durable delta log + checkpoint directory (the stream WAL)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="restore the checkpointed state and replay the unacknowledged "
             "log suffix (required when the log directory is not empty)",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="keep polling the feed after it drains (daemon mode)",
    )
    p.add_argument(
        "--deploy", action="append", metavar="TARGET",
        choices=["graph-store", "triple-store", "relational"],
        help="also maintain this deployed target per batch (repeatable)",
    )
    p.add_argument("--batch-window", default=64, type=int, metavar="N",
                   help="records coalesced per batch")
    p.add_argument("--checkpoint-every", default=8, type=int, metavar="N",
                   help="checkpoint the sink state every N batches")
    p.add_argument("--poll-interval", default=0.05, type=float)
    p.add_argument(
        "--max-batches", default=None, type=int, metavar="N",
        help="stop after N applied batches (chaos drills crash mid-feed "
             "this way)",
    )
    p.add_argument(
        "--budget-ms", default=None, type=float,
        help="per-batch apply budget driving backpressure",
    )
    p.add_argument(
        "--strict-backpressure", action="store_true",
        help="a tripped budget raises instead of widening the batch window",
    )
    p.add_argument("--instance-oid", default=1, type=int)
    p.add_argument(
        "--quarantine", default=None, metavar="OUT.JSON",
        help="write the per-record rejection report to this file",
    )
    p.add_argument(
        "--retries", default=5, type=int,
        help="max attempts per target flush on transient faults",
    )
    p.add_argument(
        "--fault-rate", default=0.0, type=float,
        help="inject transient store faults at this per-mutation probability",
    )
    p.add_argument(
        "--crash-after", default=None, type=int,
        help="inject a store crash after N successful mutations",
    )
    p.add_argument("--fault-seed", default=0, type=int)
    p.add_argument(
        "--torn-rate", default=0.0, type=float,
        help="inject torn (truncated) feed records at this probability",
    )
    p.add_argument(
        "--duplicate-rate", default=0.0, type=float,
        help="inject duplicated feed records at this probability",
    )
    p.add_argument(
        "--reorder-rate", default=0.0, type=float,
        help="inject adjacent feed-record swaps at this probability",
    )
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser("stats", help="synthetic-registry statistics (Sec. 2.1)")
    p.add_argument("--companies", type=int, default=1000)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="serve point/graph queries over a retained materialization",
    )
    p.add_argument("--program", help="Vadalog program file")
    p.add_argument(
        "--facts", help="JSON file: {predicate: [[v1, v2, ...], ...]}"
    )
    p.add_argument(
        "--demo-companies", type=int, default=None, metavar="N",
        help="serve the company-control demo over a synthetic registry",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--cache-size", type=int, default=1024)
    p.add_argument(
        "--budget-ms", type=float, default=None,
        help="default per-request engine budget (503 on trip)",
    )
    p.add_argument(
        "--max-facts", type=int, default=None,
        help="default per-request derived-fact budget",
    )
    p.add_argument(
        "--readonly", action="store_true",
        help="reject POST /delta",
    )
    p.add_argument(
        "--no-columnar", action="store_true",
        help="tuple fact storage instead of the columnar backend",
    )
    p.add_argument(
        "--feed", default=None, metavar="FEED.JSONL",
        help="also ingest fact deltas from this change feed "
             "(assert/retract records; requires --feed-log)",
    )
    p.add_argument(
        "--feed-log", default=None, metavar="DIR",
        help="durable delta log + checkpoint directory for --feed "
             "(auto-resumes when a checkpoint exists)",
    )
    p.add_argument("--batch-window", default=64, type=int)
    p.add_argument("--poll-interval", default=0.05, type=float)
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KGModelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
