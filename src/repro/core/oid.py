"""Object identifiers for the meta-level stack.

Section 3.1: "Each meta-construct is identified by a unique internal
Object Identifier (OID)."  This module centralizes how the library mints
those OIDs.  They are deterministic, human-readable strings derived from
the schema OID and the construct's coordinates, so that dictionary
round-trips, SSST reruns, and test assertions are stable.
"""

from __future__ import annotations

import itertools
from typing import Any

_counter = itertools.count(1)


def construct_oid(schema_oid: Any, kind: str, *parts: Any) -> str:
    """Deterministic OID for a schema construct.

    ``construct_oid(123, "node", "Person") == "123:node:Person"``.
    """
    suffix = ":".join(str(p) for p in parts)
    return f"{schema_oid}:{kind}:{suffix}" if suffix else f"{schema_oid}:{kind}"


def fresh_oid(prefix: str = "oid") -> str:
    """A process-unique OID for anonymous objects."""
    return f"{prefix}#{next(_counter)}"
