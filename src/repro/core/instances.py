"""Instance-level constructs (Figure 9) and super-schema instances.

Section 6: "We enrich the super-model dictionary to make it directly
suitable to store instances of super-schemas ... for each super-construct
C an I_C instance super-construct, representing the respective instance
counterpart.  Each instance super-construct is connected to the
respective super-construct by a SM_References edge.  In general, instance
super-constructs only have the implicit OID attributes and instanceOID
... except for I_SM_Attribute, which holds a value attribute."

:class:`SuperInstance` wraps a plain typed property graph (nodes labeled
with the schema's type names) and converts it to/from the ``I_SM_*``
encoding inside a dictionary graph — the load/flush halves of
Algorithm 2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.schema import SuperSchema
from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph


class SuperInstance:
    """An instance of a super-schema.

    ``data`` is a plain property graph whose node labels are the schema's
    node type names and whose edge labels are the schema's edge type
    names; properties are attribute values.
    """

    def __init__(self, schema: SuperSchema, instance_oid: Any, data: PropertyGraph):
        self.schema = schema
        self.instance_oid = instance_oid
        self.data = data

    # ------------------------------------------------------------------
    @classmethod
    def from_plain_graph(
        cls,
        schema: SuperSchema,
        graph: PropertyGraph,
        instance_oid: Any,
        strict: bool = True,
    ) -> "SuperInstance":
        """Wrap a plain data graph, checking labels against the schema."""
        if strict:
            known_nodes = {n.type_name for n in schema.nodes}
            known_edges = {e.type_name for e in schema.edges}
            for node in graph.nodes():
                if node.label is not None and node.label not in known_nodes:
                    raise SchemaError(
                        f"node label {node.label!r} is not a type of schema "
                        f"{schema.name!r}"
                    )
            for edge in graph.edges():
                if edge.label is not None and edge.label not in known_edges:
                    raise SchemaError(
                        f"edge label {edge.label!r} is not a type of schema "
                        f"{schema.name!r}"
                    )
        return cls(schema, instance_oid, graph)

    # ------------------------------------------------------------------
    # Load: plain graph -> I_SM_* constructs (Algorithm 2, line 4)
    # ------------------------------------------------------------------
    def to_dictionary(self, graph: PropertyGraph) -> PropertyGraph:
        """Encode this instance as ``I_SM_*`` constructs in ``graph``.

        The schema must already be serialized in the same graph (its
        construct OIDs are the ``SM_REFERENCES`` targets).
        """
        ioid = self.instance_oid
        schema = self.schema

        # OIDs are inlined f-strings below — same shape construct_oid
        # would produce (``{ioid}:i-node:{id}``), minus a call per fact.
        def reference(source: str, target: str) -> None:
            # Edge ids embed the (fresh) source node id, so no duplicate
            # probe is needed: re-encoding an instance raises in add_node
            # before any edge could repeat.
            graph.add_edge(
                source, target, "SM_REFERENCES",
                edge_id=f"{source}-[SM_REFERENCES]->{target}",
                instanceOID=ioid,
            )

        def attach(owner_iid: str, label: str, attr_iid: str) -> None:
            graph.add_edge(
                owner_iid, attr_iid, label,
                edge_id=f"{owner_iid}-[{label}]->{attr_iid}",
                instanceOID=ioid,
            )

        # Per-label caches: schema lookups and inherited-attribute maps
        # are identical for every node/edge of the same label, and the
        # registry has millions of instances over a handful of labels.
        node_attr_cache: Dict[str, Any] = {}
        edge_attr_cache: Dict[str, Any] = {}
        node_iids: Dict[Any, str] = {}
        add_node = graph.add_node
        add_edge = graph.add_edge
        for node in self.data.nodes():
            label = node.label
            if label is None:
                continue
            cached = node_attr_cache.get(label)
            if cached is None:
                sm_node = schema.get_node(label)
                cached = node_attr_cache[label] = (
                    sm_node.oid,
                    {a.name: a for a in schema.inherited_attributes(sm_node)},
                )
            label_oid, attributes = cached
            node_iid = f"{ioid}:i-node:{node.id}"
            node_iids[node.id] = node_iid
            add_node(
                node_iid, "I_SM_Node", instanceOID=ioid, sourceOID=node.id
            )
            reference(node_iid, label_oid)
            for name, value in node.properties.items():
                attribute = attributes.get(name)
                if attribute is None:
                    continue  # property not modeled by the schema
                attr_iid = f"{ioid}:i-nattr:{node.id}:{name}"
                add_node(
                    attr_iid, "I_SM_Attribute", instanceOID=ioid, value=value
                )
                reference(attr_iid, attribute.oid)
                attach(node_iid, "I_SM_HAS_NODE_PROPERTY", attr_iid)

        for edge in self.data.edges():
            label = edge.label
            if label is None:
                continue
            cached = edge_attr_cache.get(label)
            if cached is None:
                sm_edge = schema.get_edge(label)
                cached = edge_attr_cache[label] = (
                    sm_edge.oid,
                    {a.name: a for a in sm_edge.attributes},
                )
            label_oid, attributes = cached
            edge_iid = f"{ioid}:i-edge:{edge.id}"
            add_node(
                edge_iid, "I_SM_Edge", instanceOID=ioid, sourceOID=edge.id
            )
            reference(edge_iid, label_oid)
            add_edge(
                edge_iid, node_iids[edge.source], "I_SM_FROM",
                edge_id=f"{edge_iid}-[I_SM_FROM]", instanceOID=ioid,
            )
            add_edge(
                edge_iid, node_iids[edge.target], "I_SM_TO",
                edge_id=f"{edge_iid}-[I_SM_TO]", instanceOID=ioid,
            )
            for name, value in edge.properties.items():
                attribute = attributes.get(name)
                if attribute is None:
                    continue
                attr_iid = f"{ioid}:i-eattr:{edge.id}:{name}"
                add_node(
                    attr_iid, "I_SM_Attribute", instanceOID=ioid, value=value
                )
                reference(attr_iid, attribute.oid)
                attach(edge_iid, "I_SM_HAS_EDGE_PROPERTY", attr_iid)
        return graph

    # ------------------------------------------------------------------
    # Flush: I_SM_* constructs -> plain graph (Algorithm 2, line 9)
    # ------------------------------------------------------------------
    @classmethod
    def from_dictionary(
        cls,
        graph: PropertyGraph,
        schema: SuperSchema,
        instance_oid: Any,
        name: str = "instance",
    ) -> "SuperInstance":
        """Decode the ``I_SM_*`` constructs of ``instance_oid`` back into a
        plain typed property graph."""
        node_type_by_oid = {n.oid: n.type_name for n in schema.nodes}
        edge_type_by_oid = {e.oid: e.type_name for e in schema.edges}
        attribute_name_by_oid: Dict[Any, str] = {}
        for node in schema.nodes:
            for attribute in node.attributes:
                attribute_name_by_oid[attribute.oid] = attribute.name
        for edge in schema.edges:
            for attribute in edge.attributes:
                attribute_name_by_oid[attribute.oid] = attribute.name

        def referenced(iid: Any) -> Optional[Any]:
            for edge in graph.out_edges(iid, "SM_REFERENCES"):
                return edge.target
            return None

        def attributes_of(iid: Any, link: str) -> Dict[str, Any]:
            values: Dict[str, Any] = {}
            for edge in graph.out_edges(iid, link):
                attr_node = graph.node(edge.target)
                if attr_node.get("instanceOID") != instance_oid:
                    continue
                target = referenced(edge.target)
                attr_name = attribute_name_by_oid.get(target)
                if attr_name is not None:
                    values[attr_name] = attr_node.get("value")
            return values

        data = PropertyGraph(name)
        plain_id_by_iid: Dict[Any, Any] = {}
        for inode in sorted(graph.nodes("I_SM_Node"), key=lambda n: str(n.id)):
            if inode.get("instanceOID") != instance_oid:
                continue
            type_name = node_type_by_oid.get(referenced(inode.id))
            if type_name is None:
                continue
            plain_id = inode.get("sourceOID")
            if plain_id is None:
                plain_id = inode.id  # derived node: keep the invented OID
            plain_id_by_iid[inode.id] = plain_id
            data.add_node(
                plain_id, type_name,
                **attributes_of(inode.id, "I_SM_HAS_NODE_PROPERTY"),
            )
        for iedge in sorted(graph.nodes("I_SM_Edge"), key=lambda n: str(n.id)):
            if iedge.get("instanceOID") != instance_oid:
                continue
            type_name = edge_type_by_oid.get(referenced(iedge.id))
            if type_name is None:
                continue
            source = target = None
            for e in graph.out_edges(iedge.id, "I_SM_FROM"):
                source = plain_id_by_iid.get(e.target)
            for e in graph.out_edges(iedge.id, "I_SM_TO"):
                target = plain_id_by_iid.get(e.target)
            if source is None or target is None:
                continue
            if not data.has_node(source) or not data.has_node(target):
                continue
            plain_edge_id = iedge.get("sourceOID")
            if plain_edge_id is None:
                plain_edge_id = iedge.id
            data.add_edge(
                source, target, type_name, edge_id=plain_edge_id,
                **attributes_of(iedge.id, "I_SM_HAS_EDGE_PROPERTY"),
            )
        return cls(schema, instance_oid, data)

    def __repr__(self) -> str:
        return (
            f"SuperInstance(schema={self.schema.name!r}, "
            f"oid={self.instance_oid!r}, nodes={self.data.node_count}, "
            f"edges={self.data.edge_count})"
        )
