"""Instance-level constructs (Figure 9) and super-schema instances.

Section 6: "We enrich the super-model dictionary to make it directly
suitable to store instances of super-schemas ... for each super-construct
C an I_C instance super-construct, representing the respective instance
counterpart.  Each instance super-construct is connected to the
respective super-construct by a SM_References edge.  In general, instance
super-constructs only have the implicit OID attributes and instanceOID
... except for I_SM_Attribute, which holds a value attribute."

:class:`SuperInstance` wraps a plain typed property graph (nodes labeled
with the schema's type names) and converts it to/from the ``I_SM_*``
encoding inside a dictionary graph — the load/flush halves of
Algorithm 2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.schema import SuperSchema
from repro.errors import SchemaError
from repro.graph import make_graph
from repro.graph.property_graph import ABSENT, PropertyGraph


class SuperInstance:
    """An instance of a super-schema.

    ``data`` is a plain property graph whose node labels are the schema's
    node type names and whose edge labels are the schema's edge type
    names; properties are attribute values.
    """

    def __init__(self, schema: SuperSchema, instance_oid: Any, data: PropertyGraph):
        self.schema = schema
        self.instance_oid = instance_oid
        self.data = data

    # ------------------------------------------------------------------
    @classmethod
    def from_plain_graph(
        cls,
        schema: SuperSchema,
        graph: PropertyGraph,
        instance_oid: Any,
        strict: bool = True,
    ) -> "SuperInstance":
        """Wrap a plain data graph, checking labels against the schema."""
        if strict:
            known_nodes = {n.type_name for n in schema.nodes}
            known_edges = {e.type_name for e in schema.edges}
            for node in graph.nodes():
                if node.label is not None and node.label not in known_nodes:
                    raise SchemaError(
                        f"node label {node.label!r} is not a type of schema "
                        f"{schema.name!r}"
                    )
            for edge in graph.edges():
                if edge.label is not None and edge.label not in known_edges:
                    raise SchemaError(
                        f"edge label {edge.label!r} is not a type of schema "
                        f"{schema.name!r}"
                    )
        return cls(schema, instance_oid, graph)

    # ------------------------------------------------------------------
    # Load: plain graph -> I_SM_* constructs (Algorithm 2, line 4)
    # ------------------------------------------------------------------
    def to_dictionary(
        self, graph: PropertyGraph, bulk: bool = True
    ) -> PropertyGraph:
        """Encode this instance as ``I_SM_*`` constructs in ``graph``.

        The schema must already be serialized in the same graph (its
        construct OIDs are the ``SM_REFERENCES`` targets).

        ``bulk=True`` (the default) encodes label-at-a-time through the
        graph's column accessors — the registry-scale load path of
        Algorithm 2 — while ``bulk=False`` keeps the per-object loop as
        a differential oracle.  Both produce the same dictionary
        content; only graph insertion order differs (per-label vs
        interleaved).
        """
        if bulk:
            return self._to_dictionary_bulk(graph)
        ioid = self.instance_oid
        schema = self.schema

        # OIDs are inlined f-strings below — same shape construct_oid
        # would produce (``{ioid}:i-node:{id}``), minus a call per fact.
        def reference(source: str, target: str) -> None:
            # Edge ids embed the (fresh) source node id, so no duplicate
            # probe is needed: re-encoding an instance raises in add_node
            # before any edge could repeat.
            graph.add_edge(
                source, target, "SM_REFERENCES",
                edge_id=f"{source}-[SM_REFERENCES]->{target}",
                instanceOID=ioid,
            )

        def attach(owner_iid: str, label: str, attr_iid: str) -> None:
            graph.add_edge(
                owner_iid, attr_iid, label,
                edge_id=f"{owner_iid}-[{label}]->{attr_iid}",
                instanceOID=ioid,
            )

        # Per-label caches: schema lookups and inherited-attribute maps
        # are identical for every node/edge of the same label, and the
        # registry has millions of instances over a handful of labels.
        node_attr_cache: Dict[str, Any] = {}
        edge_attr_cache: Dict[str, Any] = {}
        node_iids: Dict[Any, str] = {}
        add_node = graph.add_node
        add_edge = graph.add_edge
        for node in self.data.nodes():
            label = node.label
            if label is None:
                continue
            cached = node_attr_cache.get(label)
            if cached is None:
                sm_node = schema.get_node(label)
                cached = node_attr_cache[label] = (
                    sm_node.oid,
                    {a.name: a for a in schema.inherited_attributes(sm_node)},
                )
            label_oid, attributes = cached
            node_iid = f"{ioid}:i-node:{node.id}"
            node_iids[node.id] = node_iid
            add_node(
                node_iid, "I_SM_Node", instanceOID=ioid, sourceOID=node.id
            )
            reference(node_iid, label_oid)
            for name, value in node.properties.items():
                attribute = attributes.get(name)
                if attribute is None:
                    continue  # property not modeled by the schema
                attr_iid = f"{ioid}:i-nattr:{node.id}:{name}"
                add_node(
                    attr_iid, "I_SM_Attribute", instanceOID=ioid, value=value
                )
                reference(attr_iid, attribute.oid)
                attach(node_iid, "I_SM_HAS_NODE_PROPERTY", attr_iid)

        for edge in self.data.edges():
            label = edge.label
            if label is None:
                continue
            cached = edge_attr_cache.get(label)
            if cached is None:
                sm_edge = schema.get_edge(label)
                cached = edge_attr_cache[label] = (
                    sm_edge.oid,
                    {a.name: a for a in sm_edge.attributes},
                )
            label_oid, attributes = cached
            edge_iid = f"{ioid}:i-edge:{edge.id}"
            add_node(
                edge_iid, "I_SM_Edge", instanceOID=ioid, sourceOID=edge.id
            )
            reference(edge_iid, label_oid)
            add_edge(
                edge_iid, node_iids[edge.source], "I_SM_FROM",
                edge_id=f"{edge_iid}-[I_SM_FROM]", instanceOID=ioid,
            )
            add_edge(
                edge_iid, node_iids[edge.target], "I_SM_TO",
                edge_id=f"{edge_iid}-[I_SM_TO]", instanceOID=ioid,
            )
            for name, value in edge.properties.items():
                attribute = attributes.get(name)
                if attribute is None:
                    continue
                attr_iid = f"{ioid}:i-eattr:{edge.id}:{name}"
                add_node(
                    attr_iid, "I_SM_Attribute", instanceOID=ioid, value=value
                )
                reference(attr_iid, attribute.oid)
                attach(edge_iid, "I_SM_HAS_EDGE_PROPERTY", attr_iid)
        return graph

    def _to_dictionary_bulk(self, graph: PropertyGraph) -> PropertyGraph:
        """Column-wise encoding core of :meth:`to_dictionary`.

        One :meth:`~repro.graph.property_graph.PropertyGraph.nodes_table`
        / ``edges_table`` call per data label pulls the instance out as
        columns, and one ``add_nodes_bulk`` / ``add_edges_bulk`` call
        per construct family writes the ``I_SM_*`` encoding back — no
        per-element property-dict iteration survives.  The ``ABSENT``
        sentinel keeps the per-object semantics exact: a property whose
        stored value is ``None`` still encodes as an ``I_SM_Attribute``
        with ``value=None``, while a property missing from the element
        produces nothing.
        """
        ioid = self.instance_oid
        schema = self.schema
        data = self.data
        constants = {"instanceOID": ioid}

        def emit_references(sources: List[str], targets: List[str]) -> None:
            graph.add_edges_bulk(
                "SM_REFERENCES",
                [f"{s}-[SM_REFERENCES]->{t}" for s, t in zip(sources, targets)],
                sources, targets, constants=constants,
            )

        def emit_attributes(
            owner_iids: List[str], attr_iids: List[str], values: List[Any],
            attr_oid: str, attach_label: str,
        ) -> None:
            # ``keep_none=True``: a stored None is a real attribute value
            # here (the ABSENT filter already removed missing ones).
            graph.add_nodes_bulk(
                "I_SM_Attribute", attr_iids, ("value",), [values],
                constants=constants, keep_none=True,
            )
            emit_references(attr_iids, [attr_oid] * len(attr_iids))
            graph.add_edges_bulk(
                attach_label,
                [f"{o}-[{attach_label}]->{a}"
                 for o, a in zip(owner_iids, attr_iids)],
                owner_iids, attr_iids, constants=constants,
            )

        for label in sorted(data.node_labels()):
            sm_node = schema.get_node(label)
            attributes = {
                a.name: a for a in schema.inherited_attributes(sm_node)
            }
            names = tuple(attributes)
            ids, columns = data.nodes_table(label, names, default=ABSENT)
            if not ids:
                continue
            node_iids = [f"{ioid}:i-node:{nid}" for nid in ids]
            graph.add_nodes_bulk(
                "I_SM_Node", node_iids, ("sourceOID",), [list(ids)],
                constants=constants,
            )
            emit_references(node_iids, [sm_node.oid] * len(node_iids))
            for name, column in zip(names, columns):
                present = [
                    i for i, value in enumerate(column) if value is not ABSENT
                ]
                if not present:
                    continue
                emit_attributes(
                    [node_iids[i] for i in present],
                    [f"{ioid}:i-nattr:{ids[i]}:{name}" for i in present],
                    [column[i] for i in present],
                    attributes[name].oid, "I_SM_HAS_NODE_PROPERTY",
                )

        for label in sorted(data.edge_labels()):
            sm_edge = schema.get_edge(label)
            attributes = {a.name: a for a in sm_edge.attributes}
            names = tuple(attributes)
            ids, sources, targets, columns = data.edges_table(
                label, names, default=ABSENT
            )
            if not ids:
                continue
            edge_iids = [f"{ioid}:i-edge:{eid}" for eid in ids]
            graph.add_nodes_bulk(
                "I_SM_Edge", edge_iids, ("sourceOID",), [list(ids)],
                constants=constants,
            )
            emit_references(edge_iids, [sm_edge.oid] * len(edge_iids))
            graph.add_edges_bulk(
                "I_SM_FROM",
                [f"{eiid}-[I_SM_FROM]" for eiid in edge_iids],
                edge_iids,
                [f"{ioid}:i-node:{s}" for s in sources],
                constants=constants,
            )
            graph.add_edges_bulk(
                "I_SM_TO",
                [f"{eiid}-[I_SM_TO]" for eiid in edge_iids],
                edge_iids,
                [f"{ioid}:i-node:{t}" for t in targets],
                constants=constants,
            )
            for name, column in zip(names, columns):
                present = [
                    i for i, value in enumerate(column) if value is not ABSENT
                ]
                if not present:
                    continue
                emit_attributes(
                    [edge_iids[i] for i in present],
                    [f"{ioid}:i-eattr:{ids[i]}:{name}" for i in present],
                    [column[i] for i in present],
                    attributes[name].oid, "I_SM_HAS_EDGE_PROPERTY",
                )
        return graph

    # ------------------------------------------------------------------
    # Flush: I_SM_* constructs -> plain graph (Algorithm 2, line 9)
    # ------------------------------------------------------------------
    @classmethod
    def from_dictionary(
        cls,
        graph: PropertyGraph,
        schema: SuperSchema,
        instance_oid: Any,
        name: str = "instance",
    ) -> "SuperInstance":
        """Decode the ``I_SM_*`` constructs of ``instance_oid`` back into a
        plain typed property graph."""
        node_type_by_oid = {n.oid: n.type_name for n in schema.nodes}
        edge_type_by_oid = {e.oid: e.type_name for e in schema.edges}
        attribute_name_by_oid: Dict[Any, str] = {}
        for node in schema.nodes:
            for attribute in node.attributes:
                attribute_name_by_oid[attribute.oid] = attribute.name
        for edge in schema.edges:
            for attribute in edge.attributes:
                attribute_name_by_oid[attribute.oid] = attribute.name

        # Link maps are built once with one bulk edges_table pass per
        # label instead of a filtered out_edges scan per construct.  Per
        # owner, bucket order equals out-edge insertion order, so the
        # decoded property dicts match the per-construct scans exactly.
        refs: Dict[Any, Any] = {}
        _, sources, targets, _ = graph.edges_table("SM_REFERENCES")
        for source, target in zip(sources, targets):
            if source not in refs:  # first reference wins, as before
                refs[source] = target

        def link_map(label: str, last_wins: bool) -> Dict[Any, Any]:
            mapping: Dict[Any, Any] = {}
            _, sources, targets, _ = graph.edges_table(label)
            if last_wins:
                mapping.update(zip(sources, targets))
            else:
                for source, target in zip(sources, targets):
                    mapping.setdefault(source, []).append(target)
            return mapping

        node_prop_links = link_map("I_SM_HAS_NODE_PROPERTY", last_wins=False)
        edge_prop_links = link_map("I_SM_HAS_EDGE_PROPERTY", last_wins=False)

        def attributes_of(iid: Any, links: Dict[Any, Any]) -> Dict[str, Any]:
            values: Dict[str, Any] = {}
            for attr_iid in links.get(iid, ()):
                attr_node = graph.node(attr_iid)
                if attr_node.get("instanceOID") != instance_oid:
                    continue
                attr_name = attribute_name_by_oid.get(refs.get(attr_iid))
                if attr_name is not None:
                    values[attr_name] = attr_node.get("value")
            return values

        data = make_graph(name)
        plain_id_by_iid: Dict[Any, Any] = {}
        node_ids, node_cols = graph.nodes_table(
            "I_SM_Node", ("instanceOID", "sourceOID")
        )
        node_ioids, node_sources = node_cols
        for i in sorted(range(len(node_ids)), key=lambda j: str(node_ids[j])):
            if node_ioids[i] != instance_oid:
                continue
            iid = node_ids[i]
            type_name = node_type_by_oid.get(refs.get(iid))
            if type_name is None:
                continue
            plain_id = node_sources[i]
            if plain_id is None:
                plain_id = iid  # derived node: keep the invented OID
            plain_id_by_iid[iid] = plain_id
            data.add_node(
                plain_id, type_name,
                **attributes_of(iid, node_prop_links),
            )
        from_map = link_map("I_SM_FROM", last_wins=True)
        to_map = link_map("I_SM_TO", last_wins=True)
        edge_ids, edge_cols = graph.nodes_table(
            "I_SM_Edge", ("instanceOID", "sourceOID")
        )
        edge_ioids, edge_sources = edge_cols
        for i in sorted(range(len(edge_ids)), key=lambda j: str(edge_ids[j])):
            if edge_ioids[i] != instance_oid:
                continue
            iid = edge_ids[i]
            type_name = edge_type_by_oid.get(refs.get(iid))
            if type_name is None:
                continue
            source = plain_id_by_iid.get(from_map.get(iid))
            target = plain_id_by_iid.get(to_map.get(iid))
            if source is None or target is None:
                continue
            if not data.has_node(source) or not data.has_node(target):
                continue
            plain_edge_id = edge_sources[i]
            if plain_edge_id is None:
                plain_edge_id = iid
            data.add_edge(
                source, target, type_name, edge_id=plain_edge_id,
                **attributes_of(iid, edge_prop_links),
            )
        return cls(schema, instance_oid, data)

    def __repr__(self) -> str:
        return (
            f"SuperInstance(schema={self.schema.name!r}, "
            f"oid={self.instance_oid!r}, nodes={self.data.node_count}, "
            f"edges={self.data.edge_count})"
        )
