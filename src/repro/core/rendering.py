"""Rendering functions: Gamma_MM, Gamma_SM, and the GSL visual language.

Section 3.1 introduces "an instance rendering function Gamma_M, a
bijection that specifies how to visualize the instances of a model M" —
mapping each construct instance to a *grapheme*, an elementary graphic
item.  This module implements:

- :class:`Grapheme` — the structured, testable rendering target;
- :func:`render_metamodel` (Gamma_MM over Figure 2);
- :func:`supermodel_table` — the tabular form of Gamma_SM printed in
  Figure 3;
- :func:`render_super_schema` (Gamma_SM over a schema: the GSL diagram
  as a grapheme stream, Figure 4);
- :func:`schema_to_dot` — Graphviz DOT text for actual visualization.

Grapheme conventions follow the paper: extensional constructs are solid,
intensional ones dashed; identifying attributes are underlined (rendered
as ``<u>...</u>`` markers in DOT); optional attributes use the hollow
lollipop; generalizations use thick arrows, solid when total and
single-headed when disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.metamodel import META_MODEL, META_MODEL_LINKS
from repro.core.supermodel import SUPER_MODEL_DICTIONARY


@dataclass(frozen=True)
class Grapheme:
    """One elementary graphic item of a GSL diagram."""

    kind: str  # node-box | attribute-lollipop | edge-arrow | generalization-arrow
    text: str
    line_style: str = "solid"  # solid | dashed
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        suffix = f" ({extras})" if extras else ""
        return f"[{self.kind}/{self.line_style}] {self.text}{suffix}"


# ---------------------------------------------------------------------------
# Gamma_MM — Figure 2
# ---------------------------------------------------------------------------


def render_metamodel() -> List[Grapheme]:
    """Render the meta-model (Figure 2) as graphemes."""
    graphemes: List[Grapheme] = []
    for construct in META_MODEL:
        graphemes.append(
            Grapheme("node-box", construct.name, detail={
                "description": construct.description,
            })
        )
        for name, data_type in construct.properties:
            graphemes.append(
                Grapheme(
                    "attribute-lollipop",
                    f"{construct.name}.{name}",
                    detail={"type": data_type},
                )
            )
    for label, source, target in META_MODEL_LINKS:
        graphemes.append(
            Grapheme(
                "edge-arrow",
                f"{source} -[{label}]-> {target}",
                detail={"cardinality": "0..N"},
            )
        )
    return graphemes


# ---------------------------------------------------------------------------
# Gamma_SM — Figure 3 table and schema diagrams
# ---------------------------------------------------------------------------


def supermodel_table() -> str:
    """The Figure 3 dictionary as a fixed-width text table."""
    name_w = max(len(e.name) for e in SUPER_MODEL_DICTIONARY) + 2
    attr_w = max(len(e.attributes) for e in SUPER_MODEL_DICTIONARY) + 2
    lines = [
        f"{'super-construct':<{name_w}}{'attributes':<{attr_w}}grapheme",
        "-" * (name_w + attr_w + 32),
    ]
    for entry in SUPER_MODEL_DICTIONARY:
        grapheme = entry.grapheme
        if not entry.has_explicit_notation:
            grapheme += "  [no explicit notation]"
        lines.append(f"{entry.name:<{name_w}}{entry.attributes:<{attr_w}}{grapheme}")
    return "\n".join(lines)


def render_super_schema(schema) -> List[Grapheme]:
    """Gamma_SM over a super-schema: the GSL diagram as graphemes."""
    graphemes: List[Grapheme] = []
    for node in schema.nodes:
        style = "dashed" if node.is_intensional else "solid"
        graphemes.append(
            Grapheme("node-box", node.type_name, style)
        )
        for attribute in node.attributes:
            graphemes.append(_attribute_grapheme(node.type_name, attribute))
    for edge in schema.edges:
        style = "dashed" if edge.is_intensional else "solid"
        left, right = edge.cardinality_labels()
        graphemes.append(
            Grapheme(
                "edge-arrow",
                f"{edge.source.type_name} -[{edge.type_name}]-> "
                f"{edge.target.type_name}",
                style,
                detail={"source_card": left, "target_card": right},
            )
        )
        for attribute in edge.attributes:
            graphemes.append(_attribute_grapheme(edge.type_name, attribute))
    for generalization in schema.generalizations:
        for child in generalization.children:
            graphemes.append(
                Grapheme(
                    "generalization-arrow",
                    f"{child.type_name} => {generalization.parent.type_name}",
                    "solid" if generalization.is_total else "outlined",
                    detail={
                        "total": generalization.is_total,
                        "disjoint": generalization.is_disjoint,
                        "heads": 1 if generalization.is_disjoint else 2,
                    },
                )
            )
    return graphemes


def _attribute_grapheme(owner: str, attribute) -> Grapheme:
    if attribute.is_id:
        lollipop = "underlined filled"
    elif attribute.is_optional:
        lollipop = "hollow"
    else:
        lollipop = "filled"
    return Grapheme(
        "attribute-lollipop",
        f"{owner}.{attribute.name}",
        "dashed" if attribute.is_intensional else "solid",
        detail={"lollipop": lollipop, "type": attribute.data_type},
    )


# ---------------------------------------------------------------------------
# Graphviz DOT output
# ---------------------------------------------------------------------------


def schema_to_dot(schema, rankdir: str = "LR") -> str:
    """Render a super-schema as Graphviz DOT (GSL diagram, Figure 4)."""
    lines = [
        f'digraph "{schema.name}" {{',
        f"  rankdir={rankdir};",
        "  node [shape=none, fontname=Helvetica];",
        "  edge [fontname=Helvetica, fontsize=10];",
    ]
    for node in schema.nodes:
        lines.append(_dot_node(node))
    for edge in schema.edges:
        style = "dashed" if edge.is_intensional else "solid"
        left, right = edge.cardinality_labels()
        label = edge.type_name
        if edge.attributes:
            label += "\\n" + ", ".join(a.name for a in edge.attributes)
        lines.append(
            f'  "{edge.source.type_name}" -> "{edge.target.type_name}" '
            f'[label="{label}", style={style}, taillabel="{left}", '
            f'headlabel="{right}"];'
        )
    for generalization in schema.generalizations:
        style = "solid" if generalization.is_total else "dashed"
        arrowhead = "normal" if generalization.is_disjoint else "diamond"
        for child in generalization.children:
            lines.append(
                f'  "{child.type_name}" -> "{generalization.parent.type_name}" '
                f"[style={style}, penwidth=2.5, arrowhead={arrowhead}, "
                'color=black];'
            )
    lines.append("}")
    return "\n".join(lines)


def _dot_node(node) -> str:
    style = "dashed" if node.is_intensional else "solid"
    rows = [
        f'<tr><td border="1" style="{style}"><b>{_escape(node.type_name)}</b></td></tr>'
    ]
    for attribute in node.attributes:
        name = _escape(attribute.name)
        if attribute.is_id:
            name = f"<u>{name}</u>"
        if attribute.is_optional:
            name = f"{name}?"
        if attribute.is_intensional:
            name = f"<i>{name}</i>"
        rows.append(f'<tr><td align="left">{name}: {attribute.data_type}</td></tr>')
    table = (
        '<<table border="0" cellborder="1" cellspacing="0">' + "".join(rows)
        + "</table>>"
    )
    return f'  "{node.type_name}" [label={table}];'


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
