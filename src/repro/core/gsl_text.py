"""Textual GSL: a declarative concrete syntax for super-schemas.

The paper's GSL is visual (the KGSE tool); for a code-first library we
complement the programmatic :class:`~repro.core.schema.SuperSchema` API
with an equivalent textual format, so that examples and tests can declare
schemas the way the KGSE would draw them:

.. code-block:: none

    schema CompanyKG oid 123 {
      node Person {
        id fiscalCode: string
        name: string
        optional birthDate: date
      }
      node Business {
        shareholdingCapital: float
        intensional numberOfStakeholders: int
      }
      generalization total disjoint Person -> PhysicalPerson, LegalPerson
      edge HOLDS Person 0..N -> 0..N Share {
        right: string enum("ownership", "bare ownership", "usufruct")
        percentage: float range(0, 1)
      }
      intensional edge CONTROLS Person -> Business
    }

Attribute flags: ``id``, ``optional``, ``intensional``.  Modifiers after
the type: ``unique``, ``enum(v, ...)``, ``range(lo, hi)``,
``format("re")``, ``default(v)``.  Cardinalities default to ``0..N`` on
both sides.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.schema import SuperSchema
from repro.core.supermodel import (
    SMDefaultAttributeModifier,
    SMEnumAttributeModifier,
    SMFormatAttributeModifier,
    SMRangeAttributeModifier,
    SMUniqueAttributeModifier,
)
from repro.errors import ParseError, SchemaError
from repro.lexing import TokenStream

_ATTRIBUTE_FLAGS = {"id", "optional", "intensional"}
_MODIFIER_NAMES = {"unique", "enum", "range", "format", "default"}


def parse_gsl(text: str) -> SuperSchema:
    """Parse one textual GSL schema declaration."""
    stream = TokenStream.from_text(text)
    schema = _schema(stream)
    if not stream.at_eof():
        raise stream.error("trailing content after schema declaration")
    return schema


def to_gsl_text(schema: SuperSchema) -> str:
    """Serialize a super-schema back to the textual GSL format.

    ``parse_gsl(to_gsl_text(s))`` reconstructs an equivalent schema (the
    KGSE save/load round-trip).
    """
    lines = [f"schema {schema.name} oid {_oid_literal(schema.schema_oid)} {{"]
    for node in schema.nodes:
        prefix = "intensional " if node.is_intensional else ""
        lines.append(f"  {prefix}node {node.type_name} {{")
        for attribute in node.attributes:
            lines.append(f"    {_attribute_text(attribute)}")
        lines.append("  }")
    for generalization in schema.generalizations:
        flags = []
        if generalization.is_total:
            flags.append("total")
        flags.append("disjoint" if generalization.is_disjoint else "overlapping")
        children = ", ".join(c.type_name for c in generalization.children)
        lines.append(
            f"  generalization {' '.join(flags)} "
            f"{generalization.parent.type_name} -> {children}"
        )
    for edge in schema.edges:
        prefix = "intensional " if edge.is_intensional else ""
        source_card, target_card = edge.cardinality_labels()
        header = (
            f"  {prefix}edge {edge.type_name} {edge.source.type_name} "
            f"{source_card} -> {target_card} {edge.target.type_name}"
        )
        if edge.attributes:
            lines.append(header + " {")
            for attribute in edge.attributes:
                lines.append(f"    {_attribute_text(attribute)}")
            lines.append("  }")
        else:
            lines.append(header)
    lines.append("}")
    return "\n".join(lines) + "\n"


def _oid_literal(oid: Any) -> str:
    if isinstance(oid, int):
        return str(oid)
    return f'"{oid}"'


def _attribute_text(attribute) -> str:
    flags = []
    if attribute.is_id:
        flags.append("id")
    if attribute.is_optional:
        flags.append("optional")
    if attribute.is_intensional:
        flags.append("intensional")
    parts = flags + [f"{attribute.name}: {attribute.data_type}"]
    for modifier in attribute.modifiers:
        parts.append(_modifier_text(modifier))
    return " ".join(parts)


def _modifier_text(modifier) -> str:
    from repro.core.supermodel import (
        SMDefaultAttributeModifier as _Default,
        SMEnumAttributeModifier as _Enum,
        SMFormatAttributeModifier as _Format,
        SMRangeAttributeModifier as _Range,
        SMUniqueAttributeModifier as _Unique,
    )

    if isinstance(modifier, _Unique):
        return "unique"
    if isinstance(modifier, _Enum):
        values = ", ".join(_constant_text(v) for v in modifier.values)
        return f"enum({values})"
    if isinstance(modifier, _Range):
        return f"range({_constant_text(modifier.minimum)}, " \
               f"{_constant_text(modifier.maximum)})"
    if isinstance(modifier, _Format):
        return f"format({_constant_text(modifier.pattern)})"
    if isinstance(modifier, _Default):
        return f"default({_constant_text(modifier.value)})"
    raise SchemaError(f"unknown modifier {modifier!r}")


def _constant_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _schema(stream: TokenStream) -> SuperSchema:
    stream.expect("IDENT", "schema")
    name = str(stream.expect("IDENT").value)
    schema_oid: Any = name
    if stream.accept("IDENT", "oid"):
        token = stream.current
        if token.kind in ("NUMBER", "STRING", "IDENT"):
            stream.advance()
            schema_oid = token.value
        else:
            raise stream.error("expected a schema OID")
    schema = SuperSchema(name, schema_oid)
    stream.expect_punct("{")

    # Two passes over declarations: nodes first, then edges and
    # generalizations, so forward references work.
    declarations: List[Tuple[str, Any]] = []
    while not stream.at_punct("}"):
        declarations.append(_declaration(stream))
    stream.expect_punct("}")

    for kind, payload in declarations:
        if kind == "node":
            _apply_node(schema, payload)
    for kind, payload in declarations:
        if kind == "edge":
            _apply_edge(schema, payload)
        elif kind == "generalization":
            _apply_generalization(schema, payload)
    return schema


def _declaration(stream: TokenStream):
    intensional = bool(stream.accept("IDENT", "intensional"))
    if stream.accept("IDENT", "node"):
        name = str(stream.expect("IDENT").value)
        attributes = _attribute_block(stream)
        return ("node", (name, intensional, attributes))
    if stream.accept("IDENT", "edge"):
        name = str(stream.expect("IDENT").value)
        source = str(stream.expect("IDENT").value)
        source_card = _cardinality(stream, default="0..N")
        stream.expect_punct("->")
        target_card = _cardinality(stream, default="0..N")
        target = str(stream.expect("IDENT").value)
        attributes = _attribute_block(stream) if stream.at_punct("{") else []
        return (
            "edge",
            (name, source, target, intensional, source_card, target_card, attributes),
        )
    if stream.accept("IDENT", "generalization"):
        if intensional:
            raise stream.error("generalizations cannot be intensional")
        total = bool(stream.accept("IDENT", "total"))
        disjoint = True
        if stream.accept("IDENT", "overlapping"):
            disjoint = False
        elif stream.accept("IDENT", "disjoint"):
            disjoint = True
        # Flags may come in either order.
        if not total:
            total = bool(stream.accept("IDENT", "total"))
        parent = str(stream.expect("IDENT").value)
        stream.expect_punct("->")
        children = [str(stream.expect("IDENT").value)]
        while stream.accept_punct(","):
            children.append(str(stream.expect("IDENT").value))
        return ("generalization", (parent, children, total, disjoint))
    raise stream.error("expected 'node', 'edge', or 'generalization'")


def _cardinality(stream: TokenStream, default: str) -> str:
    """Parse ``min..max`` (lexed as NUMBER '.' '.' NUMBER|IDENT)."""
    if not stream.at("NUMBER"):
        return default
    minimum = stream.advance().value
    stream.expect_punct(".")
    stream.expect_punct(".")
    token = stream.current
    if token.kind == "NUMBER":
        maximum: Any = stream.advance().value
    elif token.kind == "IDENT" and str(token.value) in ("N", "n"):
        stream.advance()
        maximum = "N"
    elif token.kind == "PUNCT" and token.value == "*":
        stream.advance()
        maximum = "N"
    else:
        raise stream.error("expected a maximum cardinality (1, N, or *)")
    return f"{minimum}..{maximum}"


def _attribute_block(stream: TokenStream) -> List[dict]:
    stream.expect_punct("{")
    attributes: List[dict] = []
    while not stream.at_punct("}"):
        attributes.append(_attribute(stream))
    stream.expect_punct("}")
    return attributes


def _attribute(stream: TokenStream) -> dict:
    flags = set()
    while (
        stream.at("IDENT")
        and str(stream.current.value) in _ATTRIBUTE_FLAGS
        and stream.peek().kind == "IDENT"
    ):
        flags.add(str(stream.advance().value))
    name = str(stream.expect("IDENT").value)
    data_type = "string"
    if stream.accept_punct(":"):
        data_type = str(stream.expect("IDENT").value)
    modifiers = []
    while stream.at("IDENT") and str(stream.current.value) in _MODIFIER_NAMES:
        modifiers.append(_modifier(stream))
    return {
        "name": name,
        "data_type": data_type,
        "is_id": "id" in flags,
        "is_optional": "optional" in flags,
        "is_intensional": "intensional" in flags,
        "modifiers": modifiers,
    }


def _modifier(stream: TokenStream):
    name = str(stream.expect("IDENT").value)
    if name == "unique":
        return SMUniqueAttributeModifier()
    stream.expect_punct("(")
    arguments: List[Any] = []
    if not stream.at_punct(")"):
        arguments.append(_constant(stream))
        while stream.accept_punct(","):
            arguments.append(_constant(stream))
    stream.expect_punct(")")
    if name == "enum":
        return SMEnumAttributeModifier(arguments)
    if name == "range":
        if len(arguments) != 2:
            raise stream.error("range(lo, hi) takes exactly two arguments")
        return SMRangeAttributeModifier(arguments[0], arguments[1])
    if name == "format":
        if len(arguments) != 1:
            raise stream.error("format(pattern) takes exactly one argument")
        return SMFormatAttributeModifier(str(arguments[0]))
    if name == "default":
        if len(arguments) != 1:
            raise stream.error("default(value) takes exactly one argument")
        return SMDefaultAttributeModifier(arguments[0])
    raise stream.error(f"unknown modifier {name!r}")


def _constant(stream: TokenStream) -> Any:
    token = stream.current
    if token.kind in ("STRING", "NUMBER"):
        stream.advance()
        return token.value
    if token.kind == "PUNCT" and token.value == "-":
        stream.advance()
        return -stream.expect("NUMBER").value
    if token.kind == "IDENT":
        stream.advance()
        word = str(token.value)
        if word == "true":
            return True
        if word == "false":
            return False
        if word == "none":
            return None
        return word
    raise stream.error("expected a constant")


def _apply_node(schema: SuperSchema, payload) -> None:
    name, intensional, attributes = payload
    node = schema.node(name, intensional)
    for spec in attributes:
        node.attribute(
            spec["name"],
            data_type=spec["data_type"],
            is_id=spec["is_id"],
            is_optional=spec["is_optional"],
            is_intensional=spec["is_intensional"],
            modifiers=spec["modifiers"],
        )


def _apply_edge(schema: SuperSchema, payload) -> None:
    name, source, target, intensional, source_card, target_card, attributes = payload
    edge = schema.edge(
        name, source, target,
        is_intensional=intensional,
        source_card=source_card,
        target_card=target_card,
    )
    for spec in attributes:
        if spec["is_id"]:
            raise SchemaError(f"edge attribute {spec['name']!r} cannot be id")
        edge.attribute(
            spec["name"],
            data_type=spec["data_type"],
            is_optional=spec["is_optional"],
            is_intensional=spec["is_intensional"],
            modifiers=spec["modifiers"],
        )


def _apply_generalization(schema: SuperSchema, payload) -> None:
    parent, children, total, disjoint = payload
    schema.generalization(parent, children, total=total, disjoint=disjoint)
