"""The super-model (Figure 3): the designer-level construct toolkit.

Section 3.2: "The super-model provides the data engineer with a
collection of model-independent conceptual elements: the
super-constructs" — ``SM_Node``, ``SM_Edge``, ``SM_Type``,
``SM_Attribute``, ``SM_AttributeModifier`` (with its concrete modifier
family), ``SM_Generalization``, plus the link super-constructs
(``SM_FROM``, ``SM_TO``, ``SM_PARENT``, ``SM_CHILD``,
``SM_HAS_NODE_TYPE``, ``SM_HAS_EDGE_TYPE``, ``SM_HAS_NODE_PROPERTY``,
``SM_HAS_EDGE_PROPERTY``, ``SM_HAS_MODIFIER``).

This module defines the in-memory classes for the element constructs
(link constructs are realized as object references, and reified as edges
when a schema is serialized into a graph dictionary), together with
:data:`SUPER_MODEL_DICTIONARY` — the declarative content of Figure 3,
each construct annotated with the meta-construct it specializes and its
GSL grapheme.

Cardinality encoding (Section 3.2): for an ``SM_Edge`` from A to B,
``is_fun1`` is true when each A connects to at most one B (right maximum
cardinality 1), ``is_opt1`` when it may connect to none (right minimum
0); ``is_fun2``/``is_opt2`` mirror this for the left side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.metamodel import MM_ENTITY, MM_LINK, MM_PROPERTY
from repro.errors import SchemaError

# ---------------------------------------------------------------------------
# Attribute modifiers
# ---------------------------------------------------------------------------


class SMAttributeModifier:
    """Base class for attribute modifiers (Section 3.2).

    "a proxy for attribute modifiers that are generally used to enrich an
    attribute with additional information, such as formatting or domain
    constraints."
    """

    kind = "SM_AttributeModifier"

    def describe(self) -> str:
        return self.kind

    def payload(self) -> Dict[str, Any]:
        """Serializable modifier payload for the graph dictionary."""
        return {}

    def __repr__(self) -> str:
        payload = ", ".join(f"{k}={v!r}" for k, v in self.payload().items())
        return f"{self.kind}({payload})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SMAttributeModifier)
            and self.kind == other.kind
            and self.payload() == other.payload()
        )

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.payload().items(), key=repr))))


class SMUniqueAttributeModifier(SMAttributeModifier):
    """The attribute value must be unique among same-typed nodes."""

    kind = "SM_UniqueAttributeModifier"


class SMEnumAttributeModifier(SMAttributeModifier):
    """The attribute may only take one of the listed values."""

    kind = "SM_EnumAttributeModifier"

    def __init__(self, values: Sequence[Any]):
        if not values:
            raise SchemaError("enum modifier requires at least one value")
        self.values = tuple(values)

    def payload(self) -> Dict[str, Any]:
        return {"values": list(self.values)}


class SMRangeAttributeModifier(SMAttributeModifier):
    """The attribute must fall within [minimum, maximum] (either open)."""

    kind = "SM_RangeAttributeModifier"

    def __init__(self, minimum: Any = None, maximum: Any = None):
        if minimum is None and maximum is None:
            raise SchemaError("range modifier requires a bound")
        self.minimum = minimum
        self.maximum = maximum

    def payload(self) -> Dict[str, Any]:
        return {"minimum": self.minimum, "maximum": self.maximum}


class SMFormatAttributeModifier(SMAttributeModifier):
    """The attribute must match a format pattern (regular expression)."""

    kind = "SM_FormatAttributeModifier"

    def __init__(self, pattern: str):
        self.pattern = pattern

    def payload(self) -> Dict[str, Any]:
        return {"pattern": self.pattern}


class SMDefaultAttributeModifier(SMAttributeModifier):
    """A default value applied when the attribute is absent."""

    kind = "SM_DefaultAttributeModifier"

    def __init__(self, value: Any):
        self.value = value

    def payload(self) -> Dict[str, Any]:
        return {"value": self.value}


MODIFIER_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        SMUniqueAttributeModifier,
        SMEnumAttributeModifier,
        SMRangeAttributeModifier,
        SMFormatAttributeModifier,
        SMDefaultAttributeModifier,
    )
}


def modifier_from_payload(kind: str, payload: Dict[str, Any]) -> SMAttributeModifier:
    """Rebuild a modifier from its dictionary serialization."""
    cls = MODIFIER_KINDS.get(kind)
    if cls is None:
        raise SchemaError(f"unknown attribute modifier kind {kind!r}")
    if cls is SMUniqueAttributeModifier:
        return cls()
    return cls(**payload)


# ---------------------------------------------------------------------------
# Element constructs
# ---------------------------------------------------------------------------


@dataclass
class SMAttribute:
    """``SM_Attribute``: a non-identity-bearing property of a node/edge.

    "It can be optional (isOpt) or mandatory, identifying (isId) or not."
    """

    name: str
    data_type: str = "string"
    is_id: bool = False
    is_optional: bool = False
    is_intensional: bool = False
    modifiers: List[SMAttributeModifier] = field(default_factory=list)
    oid: Optional[str] = None

    def __post_init__(self):
        if self.is_id and self.is_optional:
            raise SchemaError(
                f"attribute {self.name!r} cannot be both identifying and optional"
            )

    def add_modifier(self, modifier: SMAttributeModifier) -> "SMAttribute":
        self.modifiers.append(modifier)
        return self

    def __repr__(self) -> str:
        flags = []
        if self.is_id:
            flags.append("id")
        if self.is_optional:
            flags.append("optional")
        if self.is_intensional:
            flags.append("intensional")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"SMAttribute({self.name}: {self.data_type}{suffix})"


@dataclass
class SMNode:
    """``SM_Node``: the general notion of entity.

    "It should be used to represent any relevant domain object that is
    characterized by its own identity, SM_Type, and set of distinguishing
    properties."
    """

    type_name: str
    is_intensional: bool = False
    attributes: List[SMAttribute] = field(default_factory=list)
    oid: Optional[str] = None

    def attribute(
        self,
        name: str,
        data_type: str = "string",
        is_id: bool = False,
        is_optional: bool = False,
        is_intensional: bool = False,
        modifiers: Sequence[SMAttributeModifier] = (),
    ) -> SMAttribute:
        """Declare (and return) an attribute of this node."""
        if any(a.name == name for a in self.attributes):
            raise SchemaError(
                f"duplicate attribute {name!r} on node {self.type_name!r}"
            )
        attribute = SMAttribute(
            name, data_type, is_id, is_optional, is_intensional,
            list(modifiers),
        )
        self.attributes.append(attribute)
        return attribute

    def id_attributes(self) -> List[SMAttribute]:
        return [a for a in self.attributes if a.is_id]

    def get_attribute(self, name: str) -> SMAttribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"node {self.type_name!r} has no attribute {name!r}")

    def __repr__(self) -> str:
        mark = "~" if self.is_intensional else ""
        return f"SMNode({mark}{self.type_name}, {len(self.attributes)} attrs)"


@dataclass
class SMEdge:
    """``SM_Edge``: a binary aggregation of two ``SM_Node`` instances."""

    type_name: str
    source: SMNode
    target: SMNode
    is_intensional: bool = False
    is_opt1: bool = True
    is_fun1: bool = False
    is_opt2: bool = True
    is_fun2: bool = False
    attributes: List[SMAttribute] = field(default_factory=list)
    oid: Optional[str] = None

    def attribute(
        self,
        name: str,
        data_type: str = "string",
        is_optional: bool = False,
        is_intensional: bool = False,
        modifiers: Sequence[SMAttributeModifier] = (),
    ) -> SMAttribute:
        """Declare (and return) an attribute of this edge."""
        if any(a.name == name for a in self.attributes):
            raise SchemaError(
                f"duplicate attribute {name!r} on edge {self.type_name!r}"
            )
        attribute = SMAttribute(
            name, data_type, False, is_optional, is_intensional, list(modifiers)
        )
        self.attributes.append(attribute)
        return attribute

    # ------------------------------------------------------------------
    # Cardinalities (Section 3.2 encoding)
    # ------------------------------------------------------------------
    @property
    def multiplicity(self) -> str:
        """Summarize the cardinalities as ``1:1``/``1:N``/``N:1``/``N:M``."""
        left = "1" if self.is_fun2 else "N"
        right = "1" if self.is_fun1 else "N"
        if left == "1" and right == "N":
            return "1:N"
        if left == "N" and right == "1":
            return "N:1"
        if left == "1" and right == "1":
            return "1:1"
        return "N:M"

    @property
    def is_many_to_many(self) -> bool:
        return not self.is_fun1 and not self.is_fun2

    @property
    def is_one_to_many(self) -> bool:
        return not self.is_fun1 and self.is_fun2

    @property
    def is_many_to_one(self) -> bool:
        return self.is_fun1 and not self.is_fun2

    @property
    def is_one_to_one(self) -> bool:
        return self.is_fun1 and self.is_fun2

    def cardinality_labels(self) -> Tuple[str, str]:
        """UML-style labels (source side, target side)."""
        c2 = f"{'0' if self.is_opt2 else '1'}..{'1' if self.is_fun2 else 'N'}"
        c1 = f"{'0' if self.is_opt1 else '1'}..{'1' if self.is_fun1 else 'N'}"
        return c2, c1

    def __repr__(self) -> str:
        mark = "~" if self.is_intensional else ""
        return (
            f"SMEdge({mark}{self.type_name}: {self.source.type_name} "
            f"-{self.multiplicity}-> {self.target.type_name})"
        )


@dataclass
class SMGeneralization:
    """``SM_Generalization``: the specialization-abstraction relationship.

    "total if every instance of the parent is also an instance of a
    child; disjoint if the instances of the parent are instances of a
    single child."
    """

    parent: SMNode
    children: List[SMNode]
    is_total: bool = False
    is_disjoint: bool = True
    oid: Optional[str] = None

    def __post_init__(self):
        if not self.children:
            raise SchemaError(
                f"generalization of {self.parent.type_name!r} has no children"
            )
        if self.parent in self.children:
            raise SchemaError(
                f"{self.parent.type_name!r} cannot be its own child"
            )

    def __repr__(self) -> str:
        kids = ", ".join(c.type_name for c in self.children)
        kind = []
        kind.append("total" if self.is_total else "partial")
        kind.append("disjoint" if self.is_disjoint else "overlapping")
        return f"SMGeneralization({self.parent.type_name} <- [{kids}], {' '.join(kind)})"


# ---------------------------------------------------------------------------
# The Figure 3 dictionary: construct -> (meta-construct, grapheme)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SuperConstructEntry:
    """One row of the Figure 3 super-model dictionary table."""

    name: str
    specializes: str  # the meta-construct
    attributes: str  # attribute summary as printed in the table
    grapheme: str  # textual description of the visual grapheme
    has_explicit_notation: bool = True


SUPER_MODEL_DICTIONARY: Tuple[SuperConstructEntry, ...] = (
    SuperConstructEntry(
        "SM_Node", MM_ENTITY, "isIntensional = false, name from SM_Type",
        "solid named rectangle",
    ),
    SuperConstructEntry(
        "SM_Node", MM_ENTITY, "isIntensional = true, name from SM_Type",
        "dashed named rectangle",
    ),
    SuperConstructEntry(
        "SM_Edge", MM_ENTITY,
        "isIntensional = false, name from SM_Type, cardinalities from isOpt/isFun",
        "solid named arrow with cardinalities",
    ),
    SuperConstructEntry(
        "SM_Edge", MM_ENTITY,
        "isIntensional = true, name from SM_Type, cardinalities from isOpt/isFun",
        "dashed named arrow with cardinalities",
    ),
    SuperConstructEntry("SM_Type", MM_ENTITY, "name", "name label"),
    SuperConstructEntry(
        "SM_HAS_NODE_PROPERTY", MM_LINK, "isIntensional = false",
        "solid lollipop", False,
    ),
    SuperConstructEntry(
        "SM_HAS_EDGE_PROPERTY", MM_LINK, "isIntensional = true",
        "dashed lollipop", False,
    ),
    SuperConstructEntry("SM_FROM", MM_LINK, "", "edge tail attachment", False),
    SuperConstructEntry("SM_TO", MM_LINK, "", "edge head attachment", False),
    SuperConstructEntry(
        "SM_Attribute", MM_PROPERTY, "isOpt = false, isId = false",
        "filled lollipop",
    ),
    SuperConstructEntry(
        "SM_Attribute", MM_PROPERTY, "isOpt = true, isId = false",
        "hollow lollipop",
    ),
    SuperConstructEntry(
        "SM_Attribute", MM_PROPERTY, "isOpt = false, isId = true",
        "underlined filled lollipop",
    ),
    SuperConstructEntry(
        "SM_AttributeModifier", MM_ENTITY, "kind-specific payload",
        "annotation tag", False,
    ),
    SuperConstructEntry(
        "SM_HAS_MODIFIER", MM_LINK, "", "modifier attachment", False,
    ),
    SuperConstructEntry(
        "SM_Generalization", MM_ENTITY, "isTotal = true, isDisjoint = true",
        "single-headed thick solid black arrow",
    ),
    SuperConstructEntry(
        "SM_Generalization", MM_ENTITY, "isTotal = false, isDisjoint = true",
        "single-headed thick outlined arrow",
    ),
    SuperConstructEntry(
        "SM_Generalization", MM_ENTITY, "isTotal = true, isDisjoint = false",
        "double-headed thick solid black arrow",
    ),
    SuperConstructEntry(
        "SM_Generalization", MM_ENTITY, "isTotal = false, isDisjoint = false",
        "double-headed thick outlined arrow",
    ),
    SuperConstructEntry(
        "SM_HAS_NODE_TYPE", MM_LINK, "", "type label attachment", False,
    ),
    SuperConstructEntry(
        "SM_HAS_EDGE_TYPE", MM_LINK, "", "type label attachment", False,
    ),
    SuperConstructEntry("SM_PARENT", MM_LINK, "", "generalization head", False),
    SuperConstructEntry("SM_CHILD", MM_LINK, "", "generalization tail", False),
)

#: Names of all super-constructs (deduplicated, declaration order).
SUPER_CONSTRUCT_NAMES: Tuple[str, ...] = tuple(
    dict.fromkeys(entry.name for entry in SUPER_MODEL_DICTIONARY)
)

#: Link super-constructs (reified as edges in graph dictionaries).
LINK_SUPER_CONSTRUCTS: Tuple[str, ...] = tuple(
    dict.fromkeys(
        entry.name for entry in SUPER_MODEL_DICTIONARY if entry.specializes == MM_LINK
    )
)
