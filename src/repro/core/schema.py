"""Super-schemas: the GSL programmatic design API and their dictionary form.

Section 3.2: the data engineer "assembles instances of super-constructs,
building a super-schema".  :class:`SuperSchema` is that assembly — the
programmatic equivalent of drawing a GSL diagram (the textual GSL format
of :mod:`repro.core.gsl_text` parses into the same objects).

Section 2.2: "KGModel stores super-schemas and schemas into graph
dictionaries".  :meth:`SuperSchema.to_dictionary` serializes a schema
into a property graph whose nodes are labeled with the element
super-constructs (``SM_Node``, ``SM_Type``, ``SM_Attribute``,
``SM_Edge``, ``SM_Generalization``, and modifier kinds) and whose edges
are the link super-constructs (``SM_HAS_NODE_TYPE``, ``SM_FROM``,
``SM_TO``, ``SM_PARENT``, ``SM_CHILD``, ...).  This graph form is what
the SSST's MetaLog mappings operate on (Examples 5.1/5.2), and
:meth:`SuperSchema.from_dictionary` parses it back.

Every construct node carries a ``schemaOID`` property so that several
schemas can share one dictionary and mappings can select theirs, exactly
as in Example 5.1 ("all the body PG node and edge atoms have the
schemaOID attribute, to select the specific super-schema S").
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.oid import construct_oid
from repro.core.supermodel import (
    SMAttribute,
    SMAttributeModifier,
    SMEdge,
    SMGeneralization,
    SMNode,
    modifier_from_payload,
)
from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph

NodeRef = Union[SMNode, str]


def _parse_cardinality(text: str) -> Tuple[bool, bool]:
    """Parse ``"min..max"`` into ``(is_opt, is_fun)``.

    ``min`` is ``0`` or ``1``; ``max`` is ``1`` or ``N``/``n``/``*``.
    """
    try:
        minimum, maximum = text.split("..")
    except ValueError:
        raise SchemaError(f"bad cardinality {text!r}; expected 'min..max'")
    if minimum not in ("0", "1"):
        raise SchemaError(f"bad minimum cardinality in {text!r}")
    if maximum not in ("1", "N", "n", "*"):
        raise SchemaError(f"bad maximum cardinality in {text!r}")
    return minimum == "0", maximum == "1"


class SuperSchema:
    """A super-schema: an instance of the super-model.

    Typical construction (cf. Section 3.3's modeling narrative)::

        schema = SuperSchema("CompanyKG", schema_oid=123)
        person = schema.node("Person")
        person.attribute("fiscalCode", is_id=True)
        business = schema.node("Business")
        schema.generalization(person, [physical, legal], total=True)
        owns = schema.edge("OWNS", person, business, is_intensional=True)
    """

    def __init__(self, name: str, schema_oid: Any = None):
        self.name = name
        self.schema_oid = schema_oid if schema_oid is not None else name
        self._nodes: Dict[str, SMNode] = {}
        self._edges: Dict[str, SMEdge] = {}
        self.generalizations: List[SMGeneralization] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def node(self, type_name: str, is_intensional: bool = False) -> SMNode:
        """Declare (and return) an ``SM_Node`` with a fresh ``SM_Type``."""
        if type_name in self._nodes:
            raise SchemaError(f"duplicate node type {type_name!r}")
        node = SMNode(
            type_name,
            is_intensional,
            oid=construct_oid(self.schema_oid, "node", type_name),
        )
        self._nodes[type_name] = node
        return node

    def edge(
        self,
        type_name: str,
        source: NodeRef,
        target: NodeRef,
        is_intensional: bool = False,
        source_card: str = "0..N",
        target_card: str = "0..N",
    ) -> SMEdge:
        """Declare (and return) an ``SM_Edge`` between two nodes.

        ``target_card`` is the right-hand cardinality (targets per
        source), ``source_card`` the left-hand one, using UML ``min..max``
        notation; they set the paper's ``isOpt1/isFun1`` and
        ``isOpt2/isFun2`` flags respectively.
        """
        if type_name in self._edges:
            raise SchemaError(f"duplicate edge type {type_name!r}")
        source_node = self.resolve(source)
        target_node = self.resolve(target)
        is_opt1, is_fun1 = _parse_cardinality(target_card)
        is_opt2, is_fun2 = _parse_cardinality(source_card)
        edge = SMEdge(
            type_name,
            source_node,
            target_node,
            is_intensional,
            is_opt1,
            is_fun1,
            is_opt2,
            is_fun2,
            oid=construct_oid(self.schema_oid, "edge", type_name),
        )
        self._edges[type_name] = edge
        return edge

    def generalization(
        self,
        parent: NodeRef,
        children: Sequence[NodeRef],
        total: bool = False,
        disjoint: bool = True,
    ) -> SMGeneralization:
        """Declare a generalization of ``parent`` into ``children``."""
        parent_node = self.resolve(parent)
        child_nodes = [self.resolve(c) for c in children]
        generalization = SMGeneralization(
            parent_node,
            child_nodes,
            total,
            disjoint,
            oid=construct_oid(
                self.schema_oid, "gen", parent_node.type_name,
                len(self.generalizations),
            ),
        )
        self.generalizations.append(generalization)
        return generalization

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def resolve(self, ref: NodeRef) -> SMNode:
        """Resolve a node reference (object or type name)."""
        if isinstance(ref, SMNode):
            if self._nodes.get(ref.type_name) is not ref:
                raise SchemaError(
                    f"node {ref.type_name!r} does not belong to schema "
                    f"{self.name!r}"
                )
            return ref
        node = self._nodes.get(ref)
        if node is None:
            raise SchemaError(f"unknown node type {ref!r} in schema {self.name!r}")
        return node

    @property
    def nodes(self) -> List[SMNode]:
        return list(self._nodes.values())

    @property
    def edges(self) -> List[SMEdge]:
        return list(self._edges.values())

    def get_node(self, type_name: str) -> SMNode:
        return self.resolve(type_name)

    def get_edge(self, type_name: str) -> SMEdge:
        edge = self._edges.get(type_name)
        if edge is None:
            raise SchemaError(f"unknown edge type {type_name!r}")
        return edge

    def has_node(self, type_name: str) -> bool:
        return type_name in self._nodes

    def has_edge(self, type_name: str) -> bool:
        return type_name in self._edges

    # ------------------------------------------------------------------
    # Generalization hierarchy navigation
    # ------------------------------------------------------------------
    def parents_of(self, node: NodeRef) -> List[SMNode]:
        node = self.resolve(node)
        return [
            g.parent for g in self.generalizations if node in g.children
        ]

    def children_of(self, node: NodeRef) -> List[SMNode]:
        node = self.resolve(node)
        result: List[SMNode] = []
        for generalization in self.generalizations:
            if generalization.parent is node:
                result.extend(generalization.children)
        return result

    def ancestors_of(self, node: NodeRef) -> List[SMNode]:
        """All strict ancestors, nearest first (cycle-safe)."""
        node = self.resolve(node)
        result: List[SMNode] = []
        seen: Set[str] = {node.type_name}
        frontier = [node]
        while frontier:
            current = frontier.pop(0)
            for parent in self.parents_of(current):
                if parent.type_name not in seen:
                    seen.add(parent.type_name)
                    result.append(parent)
                    frontier.append(parent)
        return result

    def descendants_of(self, node: NodeRef) -> List[SMNode]:
        """All strict descendants, nearest first (cycle-safe)."""
        node = self.resolve(node)
        result: List[SMNode] = []
        seen: Set[str] = {node.type_name}
        frontier = [node]
        while frontier:
            current = frontier.pop(0)
            for child in self.children_of(current):
                if child.type_name not in seen:
                    seen.add(child.type_name)
                    result.append(child)
                    frontier.append(child)
        return result

    def leaves_under(self, node: NodeRef) -> List[SMNode]:
        """Descendants (or the node itself) with no children."""
        node = self.resolve(node)
        candidates = [node] + self.descendants_of(node)
        return [c for c in candidates if not self.children_of(c)]

    def inherited_attributes(self, node: NodeRef) -> List[SMAttribute]:
        """The node's own attributes plus everything inherited, own first."""
        node = self.resolve(node)
        result = list(node.attributes)
        names = {a.name for a in result}
        for ancestor in self.ancestors_of(node):
            for attribute in ancestor.attributes:
                if attribute.name not in names:
                    names.add(attribute.name)
                    result.append(attribute)
        return result

    def identifier_of(self, node: NodeRef) -> List[SMAttribute]:
        """The identifying attributes (own or inherited)."""
        return [a for a in self.inherited_attributes(node) if a.is_id]

    # ------------------------------------------------------------------
    # Validation (delegates to repro.core.validation)
    # ------------------------------------------------------------------
    def validate(self, strict: bool = True) -> List[str]:
        from repro.core.validation import validate_super_schema

        return validate_super_schema(self, strict=strict)

    def ensure_attribute_oids(self) -> None:
        """Assign the (deterministic) OIDs of attributes not yet minted.

        :meth:`to_dictionary` assigns attribute OIDs lazily as it
        serializes; anything that references ``attribute.oid`` before the
        schema is first stored (the SSST views do) must call this first
        so both paths agree on the same OIDs.
        """
        soid = self.schema_oid
        for node in self.nodes:
            for attribute in node.attributes:
                if attribute.oid is None:
                    attribute.oid = construct_oid(
                        soid, "attr", node.type_name, attribute.name
                    )
        for edge in self.edges:
            for attribute in edge.attributes:
                if attribute.oid is None:
                    attribute.oid = construct_oid(
                        soid, "attr", edge.type_name, attribute.name
                    )

    # ------------------------------------------------------------------
    # Graph-dictionary serialization
    # ------------------------------------------------------------------
    def to_dictionary(
        self, graph: Optional[PropertyGraph] = None, bulk: bool = True
    ) -> PropertyGraph:
        """Serialize this super-schema into a graph dictionary.

        ``bulk=True`` (the default) collects every construct family into
        column lists and writes them with one ``add_nodes_bulk`` /
        ``add_edges_bulk`` call per label; ``bulk=False`` keeps the
        per-object loop as a differential oracle.  Both produce the same
        dictionary content (node/edge sets, labels, properties).
        """
        graph = graph if graph is not None else PropertyGraph("super-model-dictionary")
        if bulk:
            return self._to_dictionary_bulk(graph)
        soid = self.schema_oid

        def link(source: str, target: str, label: str) -> None:
            edge_id = f"{source}-[{label}]->{target}"
            if not graph.has_edge(edge_id):
                graph.add_edge(source, target, label, edge_id=edge_id, schemaOID=soid)

        def add_attribute(owner_oid: str, attribute: SMAttribute, link_label: str,
                          owner_name: str) -> None:
            if attribute.oid is None:
                attribute.oid = construct_oid(soid, "attr", owner_name, attribute.name)
            graph.add_node(
                attribute.oid,
                "SM_Attribute",
                schemaOID=soid,
                name=attribute.name,
                type=attribute.data_type,
                isOpt=attribute.is_optional,
                isId=attribute.is_id,
                isIntensional=attribute.is_intensional,
            )
            link(owner_oid, attribute.oid, link_label)
            for i, modifier in enumerate(attribute.modifiers):
                modifier_oid = construct_oid(
                    soid, "mod", owner_name, attribute.name, i
                )
                graph.add_node(
                    modifier_oid,
                    modifier.kind,
                    schemaOID=soid,
                    payload=json.dumps(modifier.payload(), default=str),
                )
                link(attribute.oid, modifier_oid, "SM_HAS_MODIFIER")

        for node in self.nodes:
            graph.add_node(
                node.oid, "SM_Node", schemaOID=soid,
                isIntensional=node.is_intensional,
            )
            type_oid = construct_oid(soid, "type", node.type_name)
            graph.add_node(type_oid, "SM_Type", schemaOID=soid, name=node.type_name)
            link(node.oid, type_oid, "SM_HAS_NODE_TYPE")
            for attribute in node.attributes:
                add_attribute(node.oid, attribute, "SM_HAS_NODE_PROPERTY",
                              node.type_name)

        for edge in self.edges:
            graph.add_node(
                edge.oid, "SM_Edge", schemaOID=soid,
                isIntensional=edge.is_intensional,
                isOpt1=edge.is_opt1, isFun1=edge.is_fun1,
                isOpt2=edge.is_opt2, isFun2=edge.is_fun2,
            )
            type_oid = construct_oid(soid, "type", edge.type_name)
            if not graph.has_node(type_oid):
                graph.add_node(type_oid, "SM_Type", schemaOID=soid,
                               name=edge.type_name)
            link(edge.oid, type_oid, "SM_HAS_EDGE_TYPE")
            link(edge.oid, edge.source.oid, "SM_FROM")
            link(edge.oid, edge.target.oid, "SM_TO")
            for attribute in edge.attributes:
                add_attribute(edge.oid, attribute, "SM_HAS_EDGE_PROPERTY",
                              edge.type_name)

        for generalization in self.generalizations:
            graph.add_node(
                generalization.oid, "SM_Generalization", schemaOID=soid,
                isTotal=generalization.is_total,
                isDisjoint=generalization.is_disjoint,
            )
            link(generalization.oid, generalization.parent.oid, "SM_PARENT")
            for child in generalization.children:
                link(generalization.oid, child.oid, "SM_CHILD")

        return graph

    def _to_dictionary_bulk(self, graph: PropertyGraph) -> PropertyGraph:
        """Column-wise serialization core of :meth:`to_dictionary`.

        Rows are collected per construct family and written label-at-a-
        time; links dedup on their deterministic edge id (first mention
        wins, matching the per-object ``has_edge`` guard).
        """
        soid = self.schema_oid
        self.ensure_attribute_oids()

        # label -> edge_id -> (source, target); insertion-ordered dedup.
        links: Dict[str, Dict[str, Tuple[str, str]]] = {}

        def link(source: str, target: str, label: str) -> None:
            links.setdefault(label, {}).setdefault(
                f"{source}-[{label}]->{target}", (source, target)
            )

        attr_rows: List[Tuple[str, str, str, bool, bool, bool]] = []
        modifier_rows: Dict[str, List[Tuple[str, str]]] = {}

        def collect_attribute(owner_oid: str, attribute: SMAttribute,
                              link_label: str, owner_name: str) -> None:
            attr_rows.append((
                attribute.oid, attribute.name, attribute.data_type,
                attribute.is_optional, attribute.is_id,
                attribute.is_intensional,
            ))
            link(owner_oid, attribute.oid, link_label)
            for i, modifier in enumerate(attribute.modifiers):
                modifier_oid = construct_oid(
                    soid, "mod", owner_name, attribute.name, i
                )
                modifier_rows.setdefault(modifier.kind, []).append(
                    (modifier_oid, json.dumps(modifier.payload(), default=str))
                )
                link(attribute.oid, modifier_oid, "SM_HAS_MODIFIER")

        node_rows: List[Tuple[str, bool]] = []
        # type_oid -> name; a dict because an edge type sharing a node
        # type's name maps to the same SM_Type node (the per-object path
        # guards this with has_node).
        type_rows: Dict[str, str] = {}
        for node in self.nodes:
            node_rows.append((node.oid, node.is_intensional))
            type_oid = construct_oid(soid, "type", node.type_name)
            type_rows.setdefault(type_oid, node.type_name)
            link(node.oid, type_oid, "SM_HAS_NODE_TYPE")
            for attribute in node.attributes:
                collect_attribute(node.oid, attribute, "SM_HAS_NODE_PROPERTY",
                                  node.type_name)

        edge_rows: List[Tuple[str, bool, bool, bool, bool, bool]] = []
        for edge in self.edges:
            edge_rows.append((
                edge.oid, edge.is_intensional,
                edge.is_opt1, edge.is_fun1, edge.is_opt2, edge.is_fun2,
            ))
            type_oid = construct_oid(soid, "type", edge.type_name)
            type_rows.setdefault(type_oid, edge.type_name)
            link(edge.oid, type_oid, "SM_HAS_EDGE_TYPE")
            link(edge.oid, edge.source.oid, "SM_FROM")
            link(edge.oid, edge.target.oid, "SM_TO")
            for attribute in edge.attributes:
                collect_attribute(edge.oid, attribute, "SM_HAS_EDGE_PROPERTY",
                                  edge.type_name)

        gen_rows: List[Tuple[str, bool, bool]] = []
        for generalization in self.generalizations:
            gen_rows.append((
                generalization.oid,
                generalization.is_total, generalization.is_disjoint,
            ))
            link(generalization.oid, generalization.parent.oid, "SM_PARENT")
            for child in generalization.children:
                link(generalization.oid, child.oid, "SM_CHILD")

        constants = {"schemaOID": soid}
        if node_rows:
            cols = list(zip(*node_rows))
            graph.add_nodes_bulk(
                "SM_Node", list(cols[0]), ("isIntensional",),
                [list(cols[1])], constants=constants,
            )
        if type_rows:
            graph.add_nodes_bulk(
                "SM_Type", list(type_rows), ("name",),
                [list(type_rows.values())], constants=constants,
            )
        if attr_rows:
            cols = list(zip(*attr_rows))
            graph.add_nodes_bulk(
                "SM_Attribute", list(cols[0]),
                ("name", "type", "isOpt", "isId", "isIntensional"),
                [list(c) for c in cols[1:]], constants=constants,
            )
        for kind, rows in modifier_rows.items():
            cols = list(zip(*rows))
            graph.add_nodes_bulk(
                kind, list(cols[0]), ("payload",), [list(cols[1])],
                constants=constants,
            )
        if edge_rows:
            cols = list(zip(*edge_rows))
            graph.add_nodes_bulk(
                "SM_Edge", list(cols[0]),
                ("isIntensional", "isOpt1", "isFun1", "isOpt2", "isFun2"),
                [list(c) for c in cols[1:]], constants=constants,
            )
        if gen_rows:
            cols = list(zip(*gen_rows))
            graph.add_nodes_bulk(
                "SM_Generalization", list(cols[0]),
                ("isTotal", "isDisjoint"),
                [list(c) for c in cols[1:]], constants=constants,
            )
        for label, rows in links.items():
            sources = [pair[0] for pair in rows.values()]
            targets = [pair[1] for pair in rows.values()]
            graph.add_edges_bulk(
                label, list(rows), sources, targets, constants=constants,
            )
        return graph

    @classmethod
    def from_dictionary(
        cls, graph: PropertyGraph, schema_oid: Any, name: Optional[str] = None
    ) -> "SuperSchema":
        """Parse a super-schema back from its graph-dictionary form."""
        schema = cls(name or str(schema_oid), schema_oid)

        def type_name_of(construct_oid_: Any, link_label: str) -> str:
            names = sorted(
                str(graph.node(edge.target).get("name"))
                for edge in graph.out_edges(construct_oid_, link_label)
            )
            if not names:
                raise SchemaError(
                    f"construct {construct_oid_!r} has no {link_label} link"
                )
            if len(names) > 1:
                # Multi-typed construct (an SSST intermediate schema with
                # accumulated ancestor types): the node's own type is the
                # one whose name appears in the construct's deterministic
                # Skolem provenance.
                marker = str(construct_oid_)
                for name in names:
                    if f":node:{name}" in marker or f":edge:{name}" in marker:
                        return name
            return names[0]

        def attributes_of(owner_oid: Any, link_label: str) -> List[SMAttribute]:
            attributes: List[SMAttribute] = []
            for edge in graph.out_edges(owner_oid, link_label):
                data = graph.node(edge.target)
                attribute = SMAttribute(
                    name=str(data.get("name")),
                    data_type=str(data.get("type", "string")),
                    is_id=bool(data.get("isId", False)),
                    is_optional=bool(data.get("isOpt", False)),
                    is_intensional=bool(data.get("isIntensional", False)),
                    oid=data.id,
                )
                for modifier_edge in graph.out_edges(edge.target, "SM_HAS_MODIFIER"):
                    modifier_node = graph.node(modifier_edge.target)
                    payload = json.loads(modifier_node.get("payload", "{}"))
                    attribute.modifiers.append(
                        modifier_from_payload(modifier_node.label, payload)
                    )
                attributes.append(attribute)
            attributes.sort(key=lambda a: str(a.oid))
            return attributes

        node_by_oid: Dict[Any, SMNode] = {}
        for data in sorted(graph.nodes("SM_Node"), key=lambda n: str(n.id)):
            if data.get("schemaOID") != schema_oid:
                continue
            type_name = type_name_of(data.id, "SM_HAS_NODE_TYPE")
            node = schema.node(type_name, bool(data.get("isIntensional", False)))
            node.oid = data.id
            node.attributes.extend(attributes_of(data.id, "SM_HAS_NODE_PROPERTY"))
            node_by_oid[data.id] = node

        for data in sorted(graph.nodes("SM_Edge"), key=lambda n: str(n.id)):
            if data.get("schemaOID") != schema_oid:
                continue
            type_name = type_name_of(data.id, "SM_HAS_EDGE_TYPE")
            source = target = None
            for edge in graph.out_edges(data.id, "SM_FROM"):
                source = node_by_oid.get(edge.target)
            for edge in graph.out_edges(data.id, "SM_TO"):
                target = node_by_oid.get(edge.target)
            if source is None or target is None:
                raise SchemaError(
                    f"edge construct {data.id!r} has dangling endpoints"
                )
            sm_edge = SMEdge(
                type_name, source, target,
                bool(data.get("isIntensional", False)),
                bool(data.get("isOpt1", True)), bool(data.get("isFun1", False)),
                bool(data.get("isOpt2", True)), bool(data.get("isFun2", False)),
                oid=data.id,
            )
            sm_edge.attributes.extend(attributes_of(data.id, "SM_HAS_EDGE_PROPERTY"))
            if type_name in schema._edges:
                # SSST intermediate schemas duplicate edge types through
                # edge inheritance; disambiguate with a stable suffix.
                suffix = 2
                while f"{type_name}~{suffix}" in schema._edges:
                    suffix += 1
                type_name = f"{type_name}~{suffix}"
                sm_edge.type_name = type_name
            schema._edges[type_name] = sm_edge

        for data in sorted(graph.nodes("SM_Generalization"), key=lambda n: str(n.id)):
            if data.get("schemaOID") != schema_oid:
                continue
            parent = None
            children: List[SMNode] = []
            for edge in graph.out_edges(data.id, "SM_PARENT"):
                parent = node_by_oid.get(edge.target)
            for edge in sorted(
                graph.out_edges(data.id, "SM_CHILD"), key=lambda e: str(e.target)
            ):
                child = node_by_oid.get(edge.target)
                if child is not None:
                    children.append(child)
            if parent is None or not children:
                raise SchemaError(
                    f"generalization {data.id!r} is missing parent or children"
                )
            generalization = SMGeneralization(
                parent, children,
                bool(data.get("isTotal", False)),
                bool(data.get("isDisjoint", True)),
                oid=data.id,
            )
            schema.generalizations.append(generalization)

        return schema

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph textual summary (useful in examples and logs)."""
        intensional_nodes = sum(1 for n in self.nodes if n.is_intensional)
        intensional_edges = sum(1 for e in self.edges if e.is_intensional)
        return (
            f"SuperSchema {self.name!r} (OID {self.schema_oid!r}): "
            f"{len(self.nodes)} nodes ({intensional_nodes} intensional), "
            f"{len(self.edges)} edges ({intensional_edges} intensional), "
            f"{len(self.generalizations)} generalizations"
        )

    def __repr__(self) -> str:
        return (
            f"SuperSchema({self.name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)}, generalizations="
            f"{len(self.generalizations)})"
        )
