"""KGModel core: the meta-level stack, GSL, and graph dictionaries."""

from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.core.gsl_text import parse_gsl, to_gsl_text
from repro.core.instances import SuperInstance
from repro.core.metamodel import (
    META_CONSTRUCTS,
    META_MODEL,
    MetaConstruct,
    meta_construct,
    metamodel_dictionary,
)
from repro.core.oid import construct_oid, fresh_oid
from repro.core.rendering import (
    Grapheme,
    render_metamodel,
    render_super_schema,
    schema_to_dot,
    supermodel_table,
)
from repro.core.schema import SuperSchema
from repro.core.supermodel import (
    LINK_SUPER_CONSTRUCTS,
    SUPER_CONSTRUCT_NAMES,
    SUPER_MODEL_DICTIONARY,
    SMAttribute,
    SMAttributeModifier,
    SMDefaultAttributeModifier,
    SMEdge,
    SMEnumAttributeModifier,
    SMFormatAttributeModifier,
    SMGeneralization,
    SMNode,
    SMRangeAttributeModifier,
    SMUniqueAttributeModifier,
)
from repro.core.validation import validate_super_schema

__all__ = [
    "GraphDictionary",
    "dictionary_catalog",
    "parse_gsl",
    "to_gsl_text",
    "SuperInstance",
    "META_CONSTRUCTS",
    "META_MODEL",
    "MetaConstruct",
    "meta_construct",
    "metamodel_dictionary",
    "construct_oid",
    "fresh_oid",
    "Grapheme",
    "render_metamodel",
    "render_super_schema",
    "schema_to_dot",
    "supermodel_table",
    "SuperSchema",
    "LINK_SUPER_CONSTRUCTS",
    "SUPER_CONSTRUCT_NAMES",
    "SUPER_MODEL_DICTIONARY",
    "SMAttribute",
    "SMAttributeModifier",
    "SMDefaultAttributeModifier",
    "SMEdge",
    "SMEnumAttributeModifier",
    "SMFormatAttributeModifier",
    "SMGeneralization",
    "SMNode",
    "SMRangeAttributeModifier",
    "SMUniqueAttributeModifier",
    "validate_super_schema",
]
