"""The meta-model (Figure 2): the top of the KGModel representation stack.

Section 3.1: "At the highest level of our model representation stack, we
find the meta-model, comprising the basic building blocks of any semantic
data model: entities, links between them, and their properties."

The three meta-constructs are ``MM_Entity`` (abstract named domain
objects), ``MM_Property`` (name and type), and ``MM_Link`` (relationships
``A -> B`` between entities).  Figure 2 visualizes the meta-model itself
as a property graph; :func:`metamodel_dictionary` builds exactly that
graph, which is also what the rendering function Gamma_MM consumes.

Every construct of the super-model (Figure 3) declares which
meta-construct it specializes — see
:data:`repro.core.supermodel.SUPER_MODEL_DICTIONARY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.property_graph import PropertyGraph

#: The three meta-construct names.
MM_ENTITY = "MM_Entity"
MM_LINK = "MM_Link"
MM_PROPERTY = "MM_Property"

META_CONSTRUCTS: Tuple[str, ...] = (MM_ENTITY, MM_LINK, MM_PROPERTY)


@dataclass(frozen=True)
class MetaConstruct:
    """One meta-construct with its declared properties."""

    name: str
    description: str
    properties: Tuple[Tuple[str, str], ...] = ()  # (name, type)


#: Declarative content of Figure 2.
META_MODEL: Tuple[MetaConstruct, ...] = (
    MetaConstruct(
        MM_ENTITY,
        "an abstract named object of the domain",
        (("oid", "oid"), ("name", "string")),
    ),
    MetaConstruct(
        MM_LINK,
        "a connection A -> B between entities",
        (("oid", "oid"), ("name", "string"),
         ("cardinalityMin", "int"), ("cardinalityMax", "int")),
    ),
    MetaConstruct(
        MM_PROPERTY,
        "a named, typed property of an entity or link",
        (("oid", "oid"), ("name", "string"), ("type", "string")),
    ),
)

#: The structural links of Figure 2: MM_Entities own MM_Properties,
#: MM_Links connect MM_Entities (source/target) and own MM_Properties.
META_MODEL_LINKS: Tuple[Tuple[str, str, str], ...] = (
    ("MM_HAS_PROPERTY", MM_ENTITY, MM_PROPERTY),
    ("MM_HAS_PROPERTY", MM_LINK, MM_PROPERTY),
    ("MM_SOURCE", MM_LINK, MM_ENTITY),
    ("MM_TARGET", MM_LINK, MM_ENTITY),
)


def metamodel_dictionary() -> PropertyGraph:
    """Build the Figure 2 property graph of the meta-model itself.

    Nodes are the meta-constructs (with their declared properties stored
    as node properties in the lollipop spirit); edges are the structural
    links with UML-style cardinality annotations.
    """
    graph = PropertyGraph("meta-model")
    for construct in META_MODEL:
        graph.add_node(
            construct.name,
            construct.name,
            description=construct.description,
            properties=[name for name, _ in construct.properties],
        )
    for label, source, target in META_MODEL_LINKS:
        graph.add_edge(source, target, label, cardinality="0..N")
    return graph


def meta_construct(name: str) -> MetaConstruct:
    """Look up a meta-construct by name."""
    for construct in META_MODEL:
        if construct.name == name:
            return construct
    raise KeyError(f"unknown meta-construct {name!r}")
