"""Graph dictionaries: where schemas (and instances) live as graphs.

Section 2.2: "KGModel stores super-schemas and schemas into graph
dictionaries, associated to the super-model and to each of the models."
A :class:`GraphDictionary` wraps one property graph that can hold many
super-schemas (selected by ``schemaOID``), the intermediate schemas the
SSST produces, the target-model schemas, and instance-level constructs.

Because the SSST's MetaLog mappings run over this graph through MTV, the
dictionary also fixes the *catalog* (attribute order per construct
label): :func:`dictionary_catalog` declares every super-model construct
label and its property list, so mapping programs compile against stable
positions even before any construct of that label exists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.schema import SuperSchema
from repro.errors import SchemaError
from repro.graph import make_graph
from repro.metalog.analysis import GraphCatalog

#: Node construct labels of the super-model dictionary and their ordered
#: property lists (alphabetical, matching GraphCatalog.from_graph).
SUPER_MODEL_NODE_PROPERTIES: Dict[str, List[str]] = {
    "SM_Node": ["isIntensional", "schemaOID"],
    "SM_Type": ["name", "schemaOID"],
    "SM_Attribute": ["isId", "isIntensional", "isOpt", "name", "schemaOID", "type"],
    "SM_Edge": [
        "isFun1", "isFun2", "isIntensional", "isOpt1", "isOpt2", "schemaOID",
    ],
    "SM_Generalization": ["isDisjoint", "isTotal", "schemaOID"],
    "SM_UniqueAttributeModifier": ["payload", "schemaOID"],
    "SM_EnumAttributeModifier": ["payload", "schemaOID"],
    "SM_RangeAttributeModifier": ["payload", "schemaOID"],
    "SM_FormatAttributeModifier": ["payload", "schemaOID"],
    "SM_DefaultAttributeModifier": ["payload", "schemaOID"],
}

#: Edge construct labels (the link super-constructs) — all carry the
#: schema OID only.
SUPER_MODEL_EDGE_PROPERTIES: Dict[str, List[str]] = {
    "SM_HAS_NODE_TYPE": ["schemaOID"],
    "SM_HAS_EDGE_TYPE": ["schemaOID"],
    "SM_HAS_NODE_PROPERTY": ["schemaOID"],
    "SM_HAS_EDGE_PROPERTY": ["schemaOID"],
    "SM_FROM": ["schemaOID"],
    "SM_TO": ["schemaOID"],
    "SM_PARENT": ["schemaOID"],
    "SM_CHILD": ["schemaOID"],
    "SM_HAS_MODIFIER": ["schemaOID"],
}

#: Instance-level construct labels (Figure 9).
INSTANCE_NODE_PROPERTIES: Dict[str, List[str]] = {
    # sourceOID is our (documented) extension: it remembers the OID the
    # element had in the source system D, so flushing restores it.
    "I_SM_Node": ["instanceOID", "sourceOID"],
    "I_SM_Edge": ["instanceOID", "sourceOID"],
    "I_SM_Attribute": ["instanceOID", "value"],
}

INSTANCE_EDGE_PROPERTIES: Dict[str, List[str]] = {
    "SM_REFERENCES": ["instanceOID"],
    "I_SM_FROM": ["instanceOID"],
    "I_SM_TO": ["instanceOID"],
    "I_SM_HAS_NODE_PROPERTY": ["instanceOID"],
    "I_SM_HAS_EDGE_PROPERTY": ["instanceOID"],
}


def dictionary_catalog(include_instances: bool = True) -> GraphCatalog:
    """A fresh catalog declaring every super-model construct label."""
    catalog = GraphCatalog()
    for label, names in SUPER_MODEL_NODE_PROPERTIES.items():
        catalog.extend_node(label, names)
    for label, names in SUPER_MODEL_EDGE_PROPERTIES.items():
        catalog.extend_edge(label, names)
    if include_instances:
        for label, names in INSTANCE_NODE_PROPERTIES.items():
            catalog.extend_node(label, names)
        for label, names in INSTANCE_EDGE_PROPERTIES.items():
            catalog.extend_edge(label, names)
    return catalog


class GraphDictionary:
    """A named dictionary of schemas stored as one property graph."""

    def __init__(self, name: str = "super-model-dictionary",
                 columnar: Optional[bool] = None):
        # The dictionary graph is the registry-scale store; it defaults
        # to the columnar backend (REPRO_GRAPH_BACKEND overrides).
        self.graph = make_graph(name, columnar=columnar)
        self._schema_names: Dict[Any, str] = {}

    def store(self, schema: SuperSchema, bulk: bool = True) -> Any:
        """Serialize a super-schema into the dictionary; returns its OID."""
        if schema.schema_oid in self._schema_names:
            raise SchemaError(
                f"schema OID {schema.schema_oid!r} already stored in "
                f"{self.graph.name!r}"
            )
        schema.to_dictionary(self.graph, bulk=bulk)
        self._schema_names[schema.schema_oid] = schema.name
        return schema.schema_oid

    def register(self, schema: SuperSchema) -> None:
        """Record a schema as present without serializing it again.

        Used when the dictionary graph was restored from a checkpoint:
        the schema's constructs are already in the graph, so
        :meth:`store` would fail on duplicate OIDs.
        """
        self._schema_names.setdefault(schema.schema_oid, schema.name)

    def load(self, schema_oid: Any) -> SuperSchema:
        """Parse a super-schema back from the dictionary."""
        name = self._schema_names.get(schema_oid)
        return SuperSchema.from_dictionary(self.graph, schema_oid, name)

    def schema_oids(self) -> List[Any]:
        """OIDs of the schemas explicitly stored through :meth:`store`.

        (The graph may hold further schemas produced by SSST runs; those
        are discoverable via :meth:`discover_schema_oids`.)
        """
        return list(self._schema_names)

    def discover_schema_oids(self) -> List[Any]:
        """All distinct ``schemaOID`` values present in the graph."""
        oids = {
            node.get("schemaOID")
            for node in self.graph.nodes()
            if node.get("schemaOID") is not None
        }
        return sorted(oids, key=str)

    def catalog(self) -> GraphCatalog:
        """Catalog for running MetaLog programs over this dictionary."""
        catalog = dictionary_catalog()
        catalog.merge(GraphCatalog.from_graph(self.graph))
        return catalog

    def __repr__(self) -> str:
        return (
            f"GraphDictionary({self.graph.name!r}, "
            f"schemas={sorted(map(str, self._schema_names))}, "
            f"nodes={self.graph.node_count})"
        )
