"""Well-formedness validation of super-schemas.

The paper's design guidelines (Section 3.2) imply structural invariants
that a GSL diagram must satisfy before the SSST can translate it:

- every ``SM_Node`` "always has one single identifier, composed of a set
  of identifying attributes" — we require it on every generalization
  root (children inherit the parent's identifier);
- generalization hierarchies are acyclic and single-parent per
  generalization (a node may participate in several generalizations as a
  parent, but being a child of two different parents is flagged);
- edge endpoints belong to the schema; attribute names are unique per
  construct; enum/range modifiers are internally consistent;
- intensional constructs may freely reference extensional ones, but an
  extensional edge must not connect intensional nodes (ground data cannot
  reference derived nodes).
"""

from __future__ import annotations

from typing import List, Set

from repro.core.supermodel import (
    SMEnumAttributeModifier,
    SMRangeAttributeModifier,
)
from repro.errors import SchemaError


def validate_super_schema(schema, strict: bool = True) -> List[str]:
    """Validate ``schema``; returns the problem list (raises when strict)."""
    problems: List[str] = []
    problems.extend(_check_generalizations(schema))
    problems.extend(_check_identifiers(schema))
    problems.extend(_check_edges(schema))
    problems.extend(_check_attributes(schema))
    if strict and problems:
        raise SchemaError(
            f"super-schema {schema.name!r} is not well-formed: "
            + "; ".join(problems)
        )
    return problems


def _check_generalizations(schema) -> List[str]:
    problems: List[str] = []
    # Acyclicity: no node may be its own ancestor.  ancestors_of() is
    # cycle-safe (it never revisits the start node), so a cycle shows up
    # as the node being a parent of one of its ancestors.
    for node in schema.nodes:
        ancestors = schema.ancestors_of(node)
        if any(node in schema.parents_of(ancestor) for ancestor in ancestors):
            problems.append(
                f"generalization cycle through {node.type_name!r}"
            )
            break
    # Multiple inheritance is flagged (the PG mapping would duplicate).
    child_counts = {}
    for generalization in schema.generalizations:
        for child in generalization.children:
            child_counts[child.type_name] = child_counts.get(child.type_name, 0) + 1
    for type_name, count in sorted(child_counts.items()):
        if count > 1:
            problems.append(
                f"node {type_name!r} is a child in {count} generalizations"
            )
    return problems


def _check_identifiers(schema) -> List[str]:
    """Every generalization root (and free-standing node) needs an id."""
    problems: List[str] = []
    for node in schema.nodes:
        if node.is_intensional:
            continue  # derived nodes get OIDs from Skolem functors
        if schema.parents_of(node):
            continue  # children inherit the parent's identifier
        if not node.id_attributes():
            problems.append(
                f"node {node.type_name!r} has no identifying attribute"
            )
    return problems


def _check_edges(schema) -> List[str]:
    problems: List[str] = []
    node_objects = set(id(n) for n in schema.nodes)
    for edge in schema.edges:
        for endpoint, role in ((edge.source, "source"), (edge.target, "target")):
            if id(endpoint) not in node_objects:
                problems.append(
                    f"edge {edge.type_name!r} has a {role} outside the schema"
                )
        if not edge.is_intensional:
            if edge.source.is_intensional or edge.target.is_intensional:
                problems.append(
                    f"extensional edge {edge.type_name!r} touches an "
                    "intensional node"
                )
    return problems


def _check_attributes(schema) -> List[str]:
    problems: List[str] = []
    owners = [(n.type_name, n.attributes) for n in schema.nodes]
    owners += [(e.type_name, e.attributes) for e in schema.edges]
    for owner_name, attributes in owners:
        seen: Set[str] = set()
        for attribute in attributes:
            if attribute.name in seen:
                problems.append(
                    f"duplicate attribute {attribute.name!r} on {owner_name!r}"
                )
            seen.add(attribute.name)
            for modifier in attribute.modifiers:
                if isinstance(modifier, SMRangeAttributeModifier):
                    if (
                        modifier.minimum is not None
                        and modifier.maximum is not None
                        and modifier.minimum > modifier.maximum
                    ):
                        problems.append(
                            f"empty range on {owner_name}.{attribute.name}"
                        )
                if isinstance(modifier, SMEnumAttributeModifier):
                    if len(set(modifier.values)) != len(modifier.values):
                        problems.append(
                            f"duplicate enum values on {owner_name}.{attribute.name}"
                        )
    return problems
