"""Exception hierarchy for the KGModel reproduction.

Every error raised by this library derives from :class:`KGModelError`, so
client code can catch a single exception type at the API boundary.  The
subclasses mirror the subsystems: the graph substrate, the two languages
(Vadalog and MetaLog), the meta-level design layer, the translators, and
the deployment backends.
"""

from __future__ import annotations


class KGModelError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(KGModelError):
    """Invalid operation on a property graph (unknown node, bad arity...)."""


class ParseError(KGModelError):
    """A concrete-syntax program could not be parsed.

    Carries the offending position so tooling can point at the error.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class VadalogError(KGModelError):
    """Semantic error in a Vadalog program (unsafe rule, bad stratification...)."""


class WardednessError(VadalogError):
    """The program falls outside the decidable warded fragment."""


class EvaluationError(VadalogError):
    """Runtime failure during chase-based evaluation."""


class ResourceLimitError(EvaluationError):
    """A hard evaluation limit was hit (iteration cap, null budget...).

    Unlike a plain :class:`EvaluationError`, the partial evaluation
    statistics survive on ``stats`` so callers can see how far the run
    got before it was cut off; ``resource`` names the exhausted limit
    (``"iterations"``, ``"nulls"``, ``"time"``, or ``"facts"``) and
    ``limit`` its configured value.
    """

    def __init__(self, message, resource=None, limit=None, stats=None):
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.stats = stats


class MetaLogError(KGModelError):
    """Semantic error in a MetaLog program."""


class TranslationError(KGModelError):
    """MTV or SSST failed to translate a program or a schema."""


class SchemaError(KGModelError):
    """Ill-formed super-schema or schema (validation failure)."""


class ModelError(KGModelError):
    """Unknown target model, construct, or mapping strategy."""


class DeploymentError(KGModelError):
    """A target system rejected a schema or an instance."""


class IntegrityError(DeploymentError):
    """A constraint (key, foreign key, domain, uniqueness) was violated."""


class TransientDeploymentError(DeploymentError):
    """A deployment operation failed for a *transient* reason.

    Transient failures (a dropped connection, a lock timeout, an injected
    chaos fault) are the retryable class: a
    :class:`~repro.deploy.resilience.RetryPolicy` catches exactly this
    type, rolls the in-flight batch back, and tries again.  Everything
    else — :class:`IntegrityError` in particular — is permanent and
    propagates immediately.
    """


class RetryExhaustedError(DeploymentError):
    """Every attempt allowed by a retry policy failed.

    ``attempts`` counts the tries made and ``last_error`` keeps the final
    transient failure (also chained as ``__cause__``), so callers can
    tell a genuinely unreachable target from a too-tight policy.
    """

    def __init__(self, message, attempts=None, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CheckpointError(KGModelError):
    """A materialization checkpoint is unreadable or inconsistent."""


class StreamError(KGModelError):
    """The streaming ingestion pipeline hit an unrecoverable condition.

    Per-record problems (malformed feed lines, constraint-violating
    changes) are quarantined, not raised; this type covers the
    pipeline-level failures that must stop the stream: a corrupt delta
    log, a checkpoint written for different inputs, or a sink that can
    no longer accept batches.
    """
