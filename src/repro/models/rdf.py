"""An RDF-S target model.

Section 5 mentions RDF stores among the deployment targets ("for RDF
stores, schemas can be rendered as RDF-S documents").  This model shows
the *model awareness* of the framework from the opposite direction to the
PG mapping: RDFS natively supports generalization (``rdfs:subClassOf``),
so the Eliminate phase removes nothing and the SM_Generalization
construct survives the translation as SUBCLASS_OF links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.graph.property_graph import PropertyGraph
from repro.models.base import ConstructSpec, Model


@dataclass
class RDFClass:
    """An ``rdfs:Class`` of the translated schema."""

    oid: Any
    name: str


@dataclass
class RDFDatatypeProperty:
    """A datatype property with its domain class."""

    oid: Any
    name: str
    data_type: str
    domain: str


@dataclass
class RDFObjectProperty:
    """An object property with domain and range classes."""

    oid: Any
    name: str
    domain: str
    range: str


@dataclass
class RDFSchema:
    """A schema of the RDF-S model."""

    schema_oid: Any
    classes: List[RDFClass] = field(default_factory=list)
    datatype_properties: List[RDFDatatypeProperty] = field(default_factory=list)
    object_properties: List[RDFObjectProperty] = field(default_factory=list)
    subclass_of: List[Tuple[str, str]] = field(default_factory=list)

    def class_names(self) -> Set[str]:
        return {c.name for c in self.classes}

    def summary(self) -> str:
        return (
            f"RDFSchema({self.schema_oid!r}): {len(self.classes)} classes, "
            f"{len(self.datatype_properties)} datatype properties, "
            f"{len(self.object_properties)} object properties, "
            f"{len(self.subclass_of)} subClassOf axioms"
        )


class RDFModel(Model):
    """RDF-S model: classes, properties, and native subclassing."""

    name = "rdf"

    constructs = (
        ConstructSpec("RDFClass", "SM_Node"),
        ConstructSpec("RDFDatatypeProperty", "SM_Attribute"),
        ConstructSpec("RDFObjectProperty", "SM_Edge"),
        ConstructSpec("DOMAIN", "SM_FROM", is_link=True),
        ConstructSpec("RANGE", "SM_TO", is_link=True),
        ConstructSpec("SUBCLASS_OF", "SM_Generalization", is_link=True),
    )

    node_properties = {
        "RDFClass": ["name", "schemaOID"],
        "RDFDatatypeProperty": ["name", "schemaOID", "type"],
        "RDFObjectProperty": ["name", "schemaOID"],
    }
    edge_properties = {
        "DOMAIN": ["schemaOID"],
        "RANGE": ["schemaOID"],
        "SUBCLASS_OF": ["schemaOID"],
    }

    def parse_schema(self, graph: PropertyGraph, schema_oid: Any) -> RDFSchema:
        schema = RDFSchema(schema_oid)
        class_name_by_oid: Dict[Any, str] = {}
        for node in sorted(graph.nodes("RDFClass"), key=lambda n: str(n.id)):
            if node.get("schemaOID") != schema_oid:
                continue
            name = str(node.get("name"))
            schema.classes.append(RDFClass(node.id, name))
            class_name_by_oid[node.id] = name

        def one_target(oid: Any, label: str) -> Optional[str]:
            for edge in graph.out_edges(oid, label):
                return class_name_by_oid.get(edge.target)
            return None

        for node in sorted(graph.nodes("RDFDatatypeProperty"), key=lambda n: str(n.id)):
            if node.get("schemaOID") != schema_oid:
                continue
            domain = one_target(node.id, "DOMAIN")
            if domain is None:
                raise ModelError(f"datatype property {node.id!r} has no domain")
            schema.datatype_properties.append(
                RDFDatatypeProperty(
                    node.id, str(node.get("name")),
                    str(node.get("type", "string")), domain,
                )
            )
        for node in sorted(graph.nodes("RDFObjectProperty"), key=lambda n: str(n.id)):
            if node.get("schemaOID") != schema_oid:
                continue
            domain = one_target(node.id, "DOMAIN")
            range_ = one_target(node.id, "RANGE")
            if domain is None or range_ is None:
                raise ModelError(f"object property {node.id!r} is dangling")
            schema.object_properties.append(
                RDFObjectProperty(node.id, str(node.get("name")), domain, range_)
            )
        for edge in graph.edges("SUBCLASS_OF"):
            if edge.get("schemaOID") != schema_oid:
                continue
            child = class_name_by_oid.get(edge.source)
            parent = class_name_by_oid.get(edge.target)
            if child and parent:
                schema.subclass_of.append((child, parent))
        schema.classes.sort(key=lambda c: c.name)
        schema.datatype_properties.sort(key=lambda p: (p.domain, p.name))
        schema.object_properties.sort(key=lambda p: (p.name, p.domain))
        schema.subclass_of.sort()
        return schema


#: Singleton used by the repository.
RDF_MODEL = RDFModel()
