"""Translation mappings: the Eliminate/Copy MetaLog programs of Section 5.

Each mapping module exposes functions producing MetaLog *text* for a
given (source schema OID, intermediate OID, target OID) triple — the
programs are then compiled by MTV and executed by the Vadalog engine over
the graph dictionary, exactly as Algorithm 1 prescribes.
"""

from __future__ import annotations

from typing import Any


def metalog_const(value: Any) -> str:
    """Render a Python value as a MetaLog constant literal."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return '"' + str(value).replace("\\", "\\\\").replace('"', '\\"') + '"'


def intermediate_oid(schema_oid: Any) -> str:
    """Default OID for the intermediate super-schema S⁻."""
    return f"{schema_oid}-"
