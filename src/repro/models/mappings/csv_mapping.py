"""The super-model to CSV mapping M(CSV).

The Eliminate phase is shared with the relational mapping (per-member
generalizations, normalized reference edges, reified M:N edges); the
Copy phase then *loses* every constraint the format cannot hold: a file
per S⁻ node with its attributes and reference columns — no foreign-key
construct survives.
"""

from __future__ import annotations

from typing import Any

from repro.models.mappings import metalog_const
from repro.models.mappings.relational_mapping import eliminate_relational

#: The CSV Eliminate is exactly the relational one.
eliminate_csv = eliminate_relational


def copy_to_csv(inter_oid: Any, target_oid: Any) -> str:
    """Copy phase: downcast S⁻ into CSV files and columns."""
    i = metalog_const(inter_oid)
    t = metalog_const(target_oid)
    return f"""
% ---- Copy.StoreFiles ---------------------------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w)
  -> exists f = skCSVF(n) :
     (f: CSVFile; schemaOID: {t}, name: w).

% ---- Copy.StoreColumns (node attributes) --------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty, isId: d)
  -> exists f = skCSVF(n), h = skCSVH(n, a), c = skCSVC(n, a) :
     (f) [h: HAS_COLUMN; schemaOID: {t}]
       (c: CSVColumn; schemaOID: {t}, name: w, type: ty, isId: d).

% ---- Copy.StoreReferenceColumns ------------------------------------------------
% Reference edges lose their constraint: only the prefixed columns stay.
(e: SM_Edge; schemaOID: {i})
    [: SM_HAS_EDGE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w),
(e) [: SM_FROM; schemaOID: {i}] (n: SM_Node; schemaOID: {i}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isId: d),
fw = concat(w, "_", aw)
  -> exists f = skCSVF(n), h = skCSVH2(e, a), c = skCSVC2(e, a) :
     (f) [h: HAS_COLUMN; schemaOID: {t}]
       (c: CSVColumn; schemaOID: {t}, name: fw, type: aty, isId: d).
"""
