"""The super-model to RDF-S mapping M(RDF).

RDFS natively supports generalization (``rdfs:subClassOf``), attributes
(datatype properties), and arbitrary-cardinality relationships (object
properties), so the Eliminate phase is a pure copy — no super-construct
needs to be encoded away.  This exercises the framework's model
awareness from the opposite direction to the PG and relational mappings.
"""

from __future__ import annotations

from typing import Any

from repro.models.mappings import metalog_const


def eliminate_rdf(source_oid: Any, inter_oid: Any) -> str:
    """Eliminate phase: copy every construct unchanged (nothing to erase)."""
    s = metalog_const(source_oid)
    i = metalog_const(inter_oid)
    return f"""
% ---- Eliminate.CopyNodes ----------------------------------------------------
(n: SM_Node; schemaOID: {s}, isIntensional: b)
    [: SM_HAS_NODE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skN(n), h = skHNT(n, t), l = skT(t) :
     (x: SM_Node; schemaOID: {i}, isIntensional: b)
       [h: SM_HAS_NODE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w).

% ---- Eliminate.CopyNodeAttributes -------------------------------------------
(n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skN(n), h = skHNP(n, a), l = skA(n, a) :
     (x) [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

% ---- Eliminate.CopyEdges ------------------------------------------------------
(e: SM_Edge; schemaOID: {s}, isIntensional: b, isOpt1: o1, isFun1: f1,
 isOpt2: o2, isFun2: f2)
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w),
(e) [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s})
  -> exists x = skE(e), xn = skN(n), xm = skN(m), f = skFR(e), g = skTO(e),
     h = skHET(e), l = skT(t) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: b, isOpt1: o1, isFun1: f1,
      isOpt2: o2, isFun2: f2)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xn),
     (x) [g: SM_TO; schemaOID: {i}] (xm).

% ---- Eliminate.CopyGeneralizations (survive: RDFS has subClassOf) -----------
(g: SM_Generalization; schemaOID: {s}, isTotal: tt, isDisjoint: dd)
    [: SM_CHILD; schemaOID: {s}] (c: SM_Node; schemaOID: {s}),
(g) [: SM_PARENT; schemaOID: {s}] (p: SM_Node; schemaOID: {s})
  -> exists x = skG(g), xc = skN(c), xp = skN(p), hc = skGC(g, c),
     hp = skGP(g) :
     (x: SM_Generalization; schemaOID: {i}, isTotal: tt, isDisjoint: dd)
       [hc: SM_CHILD; schemaOID: {i}] (xc),
     (x) [hp: SM_PARENT; schemaOID: {i}] (xp).
"""


def copy_to_rdf(inter_oid: Any, target_oid: Any) -> str:
    """Copy phase: downcast into RDF-S constructs."""
    i = metalog_const(inter_oid)
    t = metalog_const(target_oid)
    return f"""
% ---- Copy.StoreClasses --------------------------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w)
  -> exists x = skRDFC(n) :
     (x: RDFClass; schemaOID: {t}, name: w).

% ---- Copy.StoreDatatypeProperties ---------------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty)
  -> exists x = skRDFC(n), l = skRDFD(n, a), h = skRDFDH(n, a) :
     (l: RDFDatatypeProperty; schemaOID: {t}, name: w, type: ty)
       [h: DOMAIN; schemaOID: {t}] (x).

% ---- Copy.StoreObjectProperties -------------------------------------------------
(e: SM_Edge; schemaOID: {i})
    [: SM_HAS_EDGE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w),
(e) [: SM_FROM; schemaOID: {i}] (n: SM_Node; schemaOID: {i}),
(e) [: SM_TO; schemaOID: {i}] (m: SM_Node; schemaOID: {i})
  -> exists x = skRDFO(e), xn = skRDFC(n), xm = skRDFC(m), f = skRDFOD(e),
     g = skRDFOR(e) :
     (x: RDFObjectProperty; schemaOID: {t}, name: w)
       [f: DOMAIN; schemaOID: {t}] (xn),
     (x) [g: RANGE; schemaOID: {t}] (xm).

% ---- Copy.StoreSubClassOf ---------------------------------------------------------
(g: SM_Generalization; schemaOID: {i})
    [: SM_CHILD; schemaOID: {i}] (c: SM_Node; schemaOID: {i}),
(g) [: SM_PARENT; schemaOID: {i}] (p: SM_Node; schemaOID: {i})
  -> exists xc = skRDFC(c), xp = skRDFC(p), h = skRDFS(g, c) :
     (xc) [h: SUBCLASS_OF; schemaOID: {t}] (xp).
"""
