"""The super-model to property-graph mapping M(PG) (Section 5.2).

Two implementation strategies are provided, reflecting the paper's
remark that "whether SM_Generalization should be implemented via
child-parent edges or node tagging is an example of different tactics":

- ``multi-label`` (the strategy Section 5.2 details): generalizations are
  deleted; nodes accumulate ancestor types as extra labels
  (DeleteGeneralizations 1), inherit ancestor attributes
  (DeleteGeneralizations 2), and inherit incident edges
  (DeleteGeneralizations 3/4);
- ``child-edges``: generalizations become explicit ``IS_A`` edges and no
  accumulation/inheritance takes place.

Every rule carries the ``schemaOID`` selector on every atom, as the paper
prescribes (Example 5.1, "to select the specific super-schema S"), which
also keeps the programs non-recursive despite reading and writing the
same construct labels.  Skolem functors mint all target OIDs (linker
Skolem functors, Section 4), so reruns are deterministic and copies
deduplicate.

Of the modifier family only ``SM_UniqueAttributeModifier`` survives into
the PG model (the only constraint the target supports, Section 5.2); the
other modifiers are eliminated.
"""

from __future__ import annotations

from typing import Any

from repro.models.mappings import metalog_const


def eliminate_multilabel(source_oid: Any, inter_oid: Any) -> str:
    """Eliminate phase, ``multi-label`` strategy."""
    s = metalog_const(source_oid)
    i = metalog_const(inter_oid)
    star = (
        f"([:SM_CHILD; schemaOID: {s}]- . [:SM_PARENT; schemaOID: {s}])*"
    )
    return f"""
% ---- Eliminate.CopyNodes (with their own type) -------------------------
(n: SM_Node; schemaOID: {s}, isIntensional: b)
    [r: SM_HAS_NODE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skN(n), h = skHNT(n, t), l = skT(t) :
     (x: SM_Node; schemaOID: {i}, isIntensional: b)
       [h: SM_HAS_NODE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w).

% ---- Eliminate.DeleteGeneralizations (1): type accumulation ------------
(n: SM_Node; schemaOID: {s}) {star} (a: SM_Node; schemaOID: {s})
    [r: SM_HAS_NODE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skN(n), h = skHNT(n, t), l = skT(t) :
     (x: SM_Node; schemaOID: {i})
       [h: SM_HAS_NODE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w).

% ---- Eliminate.CopyAttributes (own node attributes) ---------------------
(n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skN(n), h = skHNP(n, a), l = skA(n, a) :
     (x: SM_Node; schemaOID: {i})
       [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

% ---- Eliminate.DeleteGeneralizations (2): attribute inheritance ---------
(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skN(c), h = skHNP(c, a), l = skA(c, a) :
     (x: SM_Node; schemaOID: {i})
       [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

% ---- Eliminate.CopyEdges -------------------------------------------------
(e: SM_Edge; schemaOID: {s}, isIntensional: b, isOpt1: o1, isFun1: f1,
 isOpt2: o2, isFun2: f2)
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w),
(e) [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s})
  -> exists x = skE(e, n, m), xn = skN(n), xm = skN(m), f = skFR(e, n, m),
     g = skTO(e, n, m), h = skHET(e, n, m), l = skT(t) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: b, isOpt1: o1, isFun1: f1,
      isOpt2: o2, isFun2: f2)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xn),
     (x) [g: SM_TO; schemaOID: {i}] (xm).

% ---- Eliminate.CopyEdgeAttributes ----------------------------------------
(e: SM_Edge; schemaOID: {s})
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skE(e, n, m), h = skHEP(e, n, m, a), l = skAE(e, n, m, a) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

% ---- Eliminate.DeleteGeneralizations (3): outgoing-edge inheritance -----
(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_FROM; schemaOID: {s}]-
    (e: SM_Edge; schemaOID: {s}, isIntensional: b, isOpt1: o1, isFun1: f1,
     isOpt2: o2, isFun2: f2)
    [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skE(e, c, m), xc = skN(c), xm = skN(m), f = skFR(e, c, m),
     g = skTO(e, c, m), h = skHET(e, c, m), l = skT(t) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: b, isOpt1: o1, isFun1: f1,
      isOpt2: o2, isFun2: f2)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xc),
     (x) [g: SM_TO; schemaOID: {i}] (xm).

% ---- Eliminate.DeleteGeneralizations (3'): incoming-edge inheritance ----
(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_TO; schemaOID: {s}]-
    (e: SM_Edge; schemaOID: {s}, isIntensional: b, isOpt1: o1, isFun1: f1,
     isOpt2: o2, isFun2: f2)
    [: SM_FROM; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skE(e, m, c), xc = skN(c), xm = skN(m), f = skFR(e, m, c),
     g = skTO(e, m, c), h = skHET(e, m, c), l = skT(t) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: b, isOpt1: o1, isFun1: f1,
      isOpt2: o2, isFun2: f2)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xm),
     (x) [g: SM_TO; schemaOID: {i}] (xc).

% ---- Eliminate.DeleteGeneralizations (4): inherited-edge attributes -----
(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_FROM; schemaOID: {s}]- (e: SM_Edge; schemaOID: {s})
    [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skE(e, c, m), h = skHEP(e, c, m, a), l = skAE(e, c, m, a) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_TO; schemaOID: {s}]- (e: SM_Edge; schemaOID: {s})
    [: SM_FROM; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skE(e, m, c), h = skHEP(e, m, c, a), l = skAE(e, m, c, a) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

% ---- Eliminate.CopyUniqueAttributeModifier (own attributes) -------------
(n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s})
    [: SM_HAS_MODIFIER; schemaOID: {s}]
    (mo: SM_UniqueAttributeModifier; schemaOID: {s}, payload: p)
  -> exists l = skA(n, a), x = skMO(n, a, mo), h = skHM(n, a, mo) :
     (l) [h: SM_HAS_MODIFIER; schemaOID: {i}]
       (x: SM_UniqueAttributeModifier; schemaOID: {i}, payload: p).

% ---- Eliminate.CopyUniqueAttributeModifier (inherited attributes) -------
(c: SM_Node; schemaOID: {s}) {star} (n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s})
    [: SM_HAS_MODIFIER; schemaOID: {s}]
    (mo: SM_UniqueAttributeModifier; schemaOID: {s}, payload: p)
  -> exists l = skA(c, a), x = skMO(c, a, mo), h = skHM(c, a, mo) :
     (l) [h: SM_HAS_MODIFIER; schemaOID: {i}]
       (x: SM_UniqueAttributeModifier; schemaOID: {i}, payload: p).
"""


def eliminate_child_edges(source_oid: Any, inter_oid: Any) -> str:
    """Eliminate phase, ``child-edges`` strategy.

    Generalizations become explicit ``IS_A`` edges; no type accumulation
    or attribute/edge inheritance happens.
    """
    s = metalog_const(source_oid)
    i = metalog_const(inter_oid)
    # Reuse the copy rules of the multi-label strategy, minus every
    # DeleteGeneralizations rule, plus the IS_A reification.
    base = eliminate_multilabel(source_oid, inter_oid)
    kept = []
    skip = False
    for block in base.split("% ----"):
        if not block.strip():
            continue
        title = block.splitlines()[0]
        if "DeleteGeneralizations" in title:
            continue
        kept.append("% ----" + block)
    kept.append(f"""
% ---- Eliminate.GeneralizationsToEdges (child-edges tactic) --------------
(g: SM_Generalization; schemaOID: {s})
    [: SM_CHILD; schemaOID: {s}] (c: SM_Node; schemaOID: {s}),
(g) [: SM_PARENT; schemaOID: {s}] (p: SM_Node; schemaOID: {s})
  -> exists x = skGE(g, c), xc = skN(c), xp = skN(p), f = skGF(g, c),
     t = skGT(g, c), h = skGH(g, c), l = skGL(g) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: false, isOpt1: false,
      isFun1: true, isOpt2: true, isFun2: false)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: "IS_A"),
     (x) [f: SM_FROM; schemaOID: {i}] (xc),
     (x) [t: SM_TO; schemaOID: {i}] (xp).
""")
    return "".join(kept)


def copy_to_pg(inter_oid: Any, target_oid: Any) -> str:
    """Copy phase: downcast S⁻ into the PG model (both strategies)."""
    i = metalog_const(inter_oid)
    t = metalog_const(target_oid)
    return f"""
% ---- Copy.StoreNodes ------------------------------------------------------
(n: SM_Node; schemaOID: {i}, isIntensional: b)
  -> exists x = skPGN(n) :
     (x: Node; schemaOID: {t}, isIntensional: b).

% ---- Copy.StoreLabels -----------------------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w)
  -> exists x = skPGN(n), h = skPGHL(n, ty), l = skPGL(ty) :
     (x) [h: HAS_LABEL; schemaOID: {t}] (l: Label; schemaOID: {t}, name: w).

% ---- Copy.StoreRelationships ----------------------------------------------
(e: SM_Edge; schemaOID: {i}, isIntensional: b)
    [: SM_HAS_EDGE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w),
(e) [: SM_FROM; schemaOID: {i}] (n: SM_Node; schemaOID: {i}),
(e) [: SM_TO; schemaOID: {i}] (m: SM_Node; schemaOID: {i})
  -> exists x = skPGR(e), xn = skPGN(n), xm = skPGN(m), f = skPGF(e),
     g = skPGT(e) :
     (x: Relationship; schemaOID: {t}, name: w, isIntensional: b)
       [f: FROM; schemaOID: {t}] (xn),
     (x) [g: TO; schemaOID: {t}] (xm).

% ---- Copy.StoreProperties (node properties) --------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
     isIntensional: ii)
  -> exists x = skPGN(n), h = skPGHP(n, a), l = skPGP(n, a) :
     (x) [h: HAS_PROPERTY; schemaOID: {t}]
       (l: Property; schemaOID: {t}, name: w, type: ty, isOpt: o,
        isIntensional: ii).

% ---- Copy.StoreProperties (relationship properties) ------------------------
(e: SM_Edge; schemaOID: {i})
    [: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
     isIntensional: ii)
  -> exists x = skPGR(e), h = skPGHPE(e, a), l = skPGPE(e, a) :
     (x) [h: HAS_PROPERTY; schemaOID: {t}]
       (l: Property; schemaOID: {t}, name: w, type: ty, isOpt: o,
        isIntensional: ii).

% ---- Copy.StoreUniquePropertyModifiers -------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i})
    [: SM_HAS_MODIFIER; schemaOID: {i}]
    (mo: SM_UniqueAttributeModifier; schemaOID: {i})
  -> exists l = skPGP(n, a), x = skPGM(n, a, mo), h = skPGHM(n, a, mo) :
     (l) [h: HAS_MODIFIER; schemaOID: {t}]
       (x: UniquePropertyModifier; schemaOID: {t}).
"""
