"""The super-model to relational mapping M(REL) (Section 5.3).

"Intuitively, the elimination phase simplifies generalizations and
many-to-many edges into one-to-many edges, which can be directly
converted into relational foreign keys in the copy phase.  ...  we use a
relation for each generalization member, connecting each child relation
to the respective parent relation via foreign keys."

Normalization convention in S⁻: every surviving ``SM_Edge`` is a
*reference edge* whose **source** holds the foreign-key columns and whose
**target** is the referenced relation.  Accordingly:

- many-to-one edges (``isFun1 = true``) are copied as-is;
- one-to-many edges (``isFun1 = false, isFun2 = true``) are flipped;
- many-to-many edges are reified into a bridge node with two reference
  edges (DeleteManyToManyEdges);
- each generalization child gets an ``isA_<child>`` reference edge to its
  parent, whose copied key attributes keep ``isId = true`` so they double
  as the child relation's primary key (the per-member strategy).

The target's key columns are attached to every reference edge during
Eliminate (own and inherited identifiers — the identifying attributes may
live on an ancestor), so the Copy phase can translate uniformly.

Deviation note: the paper's DeleteManyToManyEdges prescribes fixed flags
``isFun1 = false`` on the two bridge edges; since each bridge row
references exactly one row per side we record them as functional
(``isFun1 = true, isOpt1 = false``), which we believe is the intended
reading.
"""

from __future__ import annotations

from typing import Any

from repro.models.mappings import metalog_const


def eliminate_relational(source_oid: Any, inter_oid: Any) -> str:
    """Eliminate phase of M(REL)."""
    s = metalog_const(source_oid)
    i = metalog_const(inter_oid)
    star = f"([:SM_CHILD; schemaOID: {s}]- . [:SM_PARENT; schemaOID: {s}])*"

    def ref_edge_rules(name: str, match_flags: str, src: str, tgt: str,
                       holder: str, opt_var: str) -> str:
        """Rules for one non-M:N edge case.

        ``src``/``tgt`` are body variables for the normalized reference
        direction; ``holder`` is the side that receives the original edge
        attributes (always the normalized source); ``opt_var`` is the
        original flag that says whether the reference may be absent (it
        becomes the nullability of the foreign-key columns).
        """
        return f"""
% ---- Eliminate.{name}: the normalized reference edge ---------------------
(e: SM_Edge; schemaOID: {s}, isIntensional: b, isOpt1: o1, isOpt2: o2{match_flags})
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w),
(e) [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s})
  -> exists x = skE(e), xs = skN({src}), xt = skN({tgt}), f = skFR(e),
     g = skTO(e), h = skHET(e), l = skT(t) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: b, isOpt1: {opt_var},
      isFun1: true, isOpt2: true, isFun2: false)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xs),
     (x) [g: SM_TO; schemaOID: {i}] (xt).

% ---- Eliminate.{name}: attach the target's own key attributes ------------
(e: SM_Edge; schemaOID: {s}, isOpt1: o1, isOpt2: o2{match_flags})
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
({tgt}) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skE(e), h = skHEP(e, ia), l = skAFK(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty,
        isOpt: {opt_var}, isId: false, isIntensional: false).

% ---- Eliminate.{name}: attach the target's inherited key attributes ------
(e: SM_Edge; schemaOID: {s}, isOpt1: o1, isOpt2: o2{match_flags})
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
({tgt}) {star} (anc: SM_Node; schemaOID: {s}),
(anc) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skE(e), h = skHEP(e, ia), l = skAFK(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty,
        isOpt: {opt_var}, isId: false, isIntensional: false).

% ---- Eliminate.{name}: move edge attributes onto the holder --------------
(e: SM_Edge; schemaOID: {s}{match_flags})
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: aw, type: aty, isOpt: o,
     isIntensional: ii)
  -> exists xh = skN({holder}), h = skHNPe(e, a), l = skAEh(e, a) :
     (xh) [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: o,
        isId: false, isIntensional: ii).
"""

    return f"""
% ---- Eliminate.CopyNodes (with their own type) ----------------------------
(n: SM_Node; schemaOID: {s}, isIntensional: b)
    [r: SM_HAS_NODE_TYPE; schemaOID: {s}]
    (t: SM_Type; schemaOID: {s}, name: w)
  -> exists x = skN(n), h = skHNT(n, t), l = skT(t) :
     (x: SM_Node; schemaOID: {i}, isIntensional: b)
       [h: SM_HAS_NODE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w).

% ---- Eliminate.CopyNodeAttributes (own only: per-member strategy) ---------
(n: SM_Node; schemaOID: {s})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: ii)
  -> exists x = skN(n), h = skHNP(n, a), l = skA(n, a) :
     (x) [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o,
        isId: d, isIntensional: ii).

{ref_edge_rules("CopyManyToOneEdges", ", isFun1: true", "n", "m", "n", "o1")}

{ref_edge_rules("FlipOneToManyEdges", ", isFun1: false, isFun2: true", "m", "n", "m", "o2")}

% ---- Eliminate.DeleteManyToManyEdges (1): the bridge node ------------------
(e: SM_Edge; schemaOID: {s}, isIntensional: b, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w)
  -> exists p = skRE(e), h = skRHT(e), l = skT(t) :
     (p: SM_Node; schemaOID: {i}, isIntensional: b)
       [h: SM_HAS_NODE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w).

% ---- Eliminate.DeleteManyToManyEdges (1'): edge attributes to the bridge ---
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_PROPERTY; schemaOID: {s}]
    (a: SM_Attribute; schemaOID: {s}, name: aw, type: aty, isOpt: o,
     isIntensional: ii)
  -> exists p = skRE(e), h = skHNPb(e, a), l = skAb(e, a) :
     (p) [h: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: o,
        isId: false, isIntensional: ii).

% ---- Eliminate.DeleteManyToManyEdges (2): fk to the target side ------------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w),
(e) [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
wm = concat(w, "_tgt")
  -> exists p = skRE(e), x = skFKtgt(e), xm = skN(m), f = skFRt(e),
     g = skTOt(e), h = skHETt(e), l = skTt(e) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: false, isOpt1: false,
      isFun1: true, isOpt2: true, isFun2: false)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: wm),
     (x) [f: SM_FROM; schemaOID: {i}] (p),
     (x) [g: SM_TO; schemaOID: {i}] (xm).

% ---- Eliminate.DeleteManyToManyEdges (2'): its key attributes (own) --------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(m) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skFKtgt(e), h = skHEPt(e, ia), l = skAFKt(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: false, isIntensional: false).

% ---- Eliminate.DeleteManyToManyEdges (2''): inherited key attributes -------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_TO; schemaOID: {s}] (m: SM_Node; schemaOID: {s}),
(m) {star} (anc: SM_Node; schemaOID: {s}),
(anc) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skFKtgt(e), h = skHEPt(e, ia), l = skAFKt(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: false, isIntensional: false).

% ---- Eliminate.DeleteManyToManyEdges (3): fk to the source side ------------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_TYPE; schemaOID: {s}] (t: SM_Type; schemaOID: {s}, name: w),
(e) [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
wn = concat(w, "_src")
  -> exists p = skRE(e), x = skFKsrc(e), xn = skN(n), f = skFRs(e),
     g = skTOs(e), h = skHETs(e), l = skTs(e) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: false, isOpt1: false,
      isFun1: true, isOpt2: true, isFun2: false)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: wn),
     (x) [f: SM_FROM; schemaOID: {i}] (p),
     (x) [g: SM_TO; schemaOID: {i}] (xn).

% ---- Eliminate.DeleteManyToManyEdges (3'): its key attributes (own) --------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(n) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skFKsrc(e), h = skHEPs(e, ia), l = skAFKs(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: false, isIntensional: false).

% ---- Eliminate.DeleteManyToManyEdges (3''): inherited key attributes -------
(e: SM_Edge; schemaOID: {s}, isFun1: false, isFun2: false)
    [: SM_FROM; schemaOID: {s}] (n: SM_Node; schemaOID: {s}),
(n) {star} (anc: SM_Node; schemaOID: {s}),
(anc) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skFKsrc(e), h = skHEPs(e, ia), l = skAFKs(e, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: false, isIntensional: false).

% ---- Eliminate.DeleteGeneralizations: the per-member isA reference edge ----
(g: SM_Generalization; schemaOID: {s})
    [: SM_CHILD; schemaOID: {s}] (c: SM_Node; schemaOID: {s}),
(g) [: SM_PARENT; schemaOID: {s}] (p: SM_Node; schemaOID: {s}),
(c) [: SM_HAS_NODE_TYPE; schemaOID: {s}] (ct: SM_Type; schemaOID: {s}, name: cw),
w = concat("isA_", cw)
  -> exists x = skGE(g, c), xc = skN(c), xp = skN(p), f = skGF(g, c),
     t = skGT(g, c), h = skGH(g, c), l = skGL(g, c) :
     (x: SM_Edge; schemaOID: {i}, isIntensional: false, isOpt1: false,
      isFun1: true, isOpt2: true, isFun2: false)
       [h: SM_HAS_EDGE_TYPE; schemaOID: {i}]
       (l: SM_Type; schemaOID: {i}, name: w),
     (x) [f: SM_FROM; schemaOID: {i}] (xc),
     (x) [t: SM_TO; schemaOID: {i}] (xp).

% ---- Eliminate.DeleteGeneralizations: parent key attributes (own) ----------
% isId stays true: these foreign-key fields double as the child's primary
% key in the per-member strategy.
(g: SM_Generalization; schemaOID: {s})
    [: SM_CHILD; schemaOID: {s}] (c: SM_Node; schemaOID: {s}),
(g) [: SM_PARENT; schemaOID: {s}] (p: SM_Node; schemaOID: {s}),
(p) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skGE(g, c), h = skGHP(g, c, ia), l = skGA(g, c, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: true, isIntensional: false).

% ---- Eliminate.DeleteGeneralizations: parent key attributes (inherited) ----
(g: SM_Generalization; schemaOID: {s})
    [: SM_CHILD; schemaOID: {s}] (c: SM_Node; schemaOID: {s}),
(g) [: SM_PARENT; schemaOID: {s}] (p: SM_Node; schemaOID: {s}),
(p) {star} (anc: SM_Node; schemaOID: {s}),
(anc) [: SM_HAS_NODE_PROPERTY; schemaOID: {s}]
    (ia: SM_Attribute; schemaOID: {s}, isId: true, name: aw, type: aty)
  -> exists x = skGE(g, c), h = skGHP(g, c, ia), l = skGA(g, c, ia) :
     (x) [h: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
       (l: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isOpt: false,
        isId: true, isIntensional: false).
"""


def copy_to_relational(inter_oid: Any, target_oid: Any) -> str:
    """Copy phase: downcast S⁻ into the relational model."""
    i = metalog_const(inter_oid)
    t = metalog_const(target_oid)
    return f"""
% ---- Copy.StorePredicatesAndRelations --------------------------------------
(n: SM_Node; schemaOID: {i}, isIntensional: b)
    [: SM_HAS_NODE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w)
  -> exists x = skRP(n), r = skRR(ty), h = skRHR(n, ty) :
     (x: Predicate; schemaOID: {t}, isIntensional: b)
       [h: HAS_RELATION; schemaOID: {t}]
       (r: Relation; schemaOID: {t}, name: w).

% ---- Copy.StoreNodeAttributes (fields) -------------------------------------
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty, isOpt: o, isId: d,
     isIntensional: false)
  -> exists x = skRP(n), h = skRHF(n, a), l = skRF(n, a) :
     (x) [h: HAS_FIELD; schemaOID: {t}]
       (l: Field; schemaOID: {t}, name: w, type: ty, isOpt: o, isId: d).

% Intensional attributes become nullable columns: their values only
% appear once the intensional component is materialized (Section 6).
(n: SM_Node; schemaOID: {i})
    [: SM_HAS_NODE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: w, type: ty, isId: d,
     isIntensional: true)
  -> exists x = skRP(n), h = skRHF(n, a), l = skRF(n, a) :
     (x) [h: HAS_FIELD; schemaOID: {t}]
       (l: Field; schemaOID: {t}, name: w, type: ty, isOpt: true, isId: d).

% ---- Copy.StoreForeignKeys --------------------------------------------------
(e: SM_Edge; schemaOID: {i})
    [: SM_HAS_EDGE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w),
(e) [: SM_FROM; schemaOID: {i}] (n: SM_Node; schemaOID: {i}),
(e) [: SM_TO; schemaOID: {i}] (m: SM_Node; schemaOID: {i})
  -> exists x = skRFK(e), xn = skRP(n), xm = skRP(m), f = skRFF(e),
     g = skRFT(e) :
     (x: ForeignKey; schemaOID: {t}, name: w)
       [f: FK_FROM; schemaOID: {t}] (xn),
     (x) [g: FK_TO; schemaOID: {t}] (xm).

% ---- Copy.StoreForeignKeyFields ---------------------------------------------
% The fields materializing the reference live on the source predicate and
% are linked to the ForeignKey through HAS_SOURCE_FIELD; names are
% prefixed with the fk name to avoid clashes.
(e: SM_Edge; schemaOID: {i})
    [: SM_HAS_EDGE_TYPE; schemaOID: {i}]
    (ty: SM_Type; schemaOID: {i}, name: w),
(e) [: SM_FROM; schemaOID: {i}] (n: SM_Node; schemaOID: {i}),
(e) [: SM_HAS_EDGE_PROPERTY; schemaOID: {i}]
    (a: SM_Attribute; schemaOID: {i}, name: aw, type: aty, isId: d, isOpt: ao),
fw = concat(w, "_", aw)
  -> exists x = skRFK(e), xn = skRP(n), h = skRHF2(e, a), hs = skRHSF(e, a),
     l = skRF2(e, a) :
     (xn) [h: HAS_FIELD; schemaOID: {t}]
       (l: Field; schemaOID: {t}, name: fw, type: aty, isOpt: ao, isId: d),
     (x) [hs: HAS_SOURCE_FIELD; schemaOID: {t}] (l).
"""
