"""The relational target model (Figure 7).

"Relations specialize SM_Type.  Each Relation is characterized by a set
of Fields, that specialize SM_Attribute.  A Predicate is a construct
(SM_Node) that connects a Relation to its Fields.  ForeignKeys
(SM_Edges) constrain a set of Fields of the source relation (referred to
via HAS_SOURCE_FIELDS) to take only values from the identifier of the
target relation."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.graph.property_graph import PropertyGraph
from repro.models.base import ConstructSpec, Model


@dataclass
class Column:
    """One field of a relation."""

    name: str
    data_type: str = "string"
    optional: bool = False
    is_pk: bool = False


@dataclass
class Table:
    """One relation with its fields."""

    name: str
    columns: List[Column] = field(default_factory=list)
    intensional: bool = False

    def primary_key(self) -> List[str]:
        return [c.name for c in self.columns if c.is_pk]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise ModelError(f"table {self.name!r} has no column {name!r}")


@dataclass
class ForeignKey:
    """A referential constraint between two relations."""

    name: str
    source_table: str
    source_columns: List[str]
    target_table: str
    target_columns: List[str]


@dataclass
class RelationalSchema:
    """A schema of the relational model, parsed from the dictionary."""

    schema_oid: Any
    tables: Dict[str, Table] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise ModelError(f"unknown table {name!r}")
        return table

    def summary(self) -> str:
        columns = sum(len(t.columns) for t in self.tables.values())
        return (
            f"RelationalSchema({self.schema_oid!r}): {len(self.tables)} "
            f"tables, {columns} columns, {len(self.foreign_keys)} foreign keys"
        )


class RelationalModel(Model):
    """The Figure 7 relational model."""

    name = "relational"

    constructs = (
        ConstructSpec("Predicate", "SM_Node"),
        ConstructSpec("Relation", "SM_Type"),
        ConstructSpec("Field", "SM_Attribute"),
        ConstructSpec("ForeignKey", "SM_Edge"),
        ConstructSpec("HAS_RELATION", "SM_HAS_NODE_TYPE", is_link=True),
        ConstructSpec("HAS_FIELD", "SM_HAS_NODE_PROPERTY", is_link=True),
        ConstructSpec("FK_FROM", "SM_FROM", is_link=True),
        ConstructSpec("FK_TO", "SM_TO", is_link=True),
        ConstructSpec("HAS_SOURCE_FIELD", "SM_HAS_EDGE_PROPERTY", is_link=True),
    )

    node_properties = {
        "Predicate": ["isIntensional", "schemaOID"],
        "Relation": ["name", "schemaOID"],
        "Field": ["isId", "isOpt", "name", "schemaOID", "type"],
        "ForeignKey": ["name", "schemaOID"],
    }
    edge_properties = {
        "HAS_RELATION": ["schemaOID"],
        "HAS_FIELD": ["schemaOID"],
        "FK_FROM": ["schemaOID"],
        "FK_TO": ["schemaOID"],
        "HAS_SOURCE_FIELD": ["schemaOID"],
    }

    def parse_schema(self, graph: PropertyGraph, schema_oid: Any) -> RelationalSchema:
        schema = RelationalSchema(schema_oid)
        table_by_predicate: Dict[Any, str] = {}

        for predicate in sorted(graph.nodes("Predicate"), key=lambda n: str(n.id)):
            if predicate.get("schemaOID") != schema_oid:
                continue
            relation_name: Optional[str] = None
            for edge in graph.out_edges(predicate.id, "HAS_RELATION"):
                data = graph.node(edge.target)
                if data.get("schemaOID") == schema_oid:
                    relation_name = str(data.get("name"))
            if relation_name is None:
                raise ModelError(
                    f"predicate {predicate.id!r} has no relation"
                )
            columns: List[Column] = []
            for edge in graph.out_edges(predicate.id, "HAS_FIELD"):
                data = graph.node(edge.target)
                if data.get("schemaOID") != schema_oid:
                    continue
                columns.append(
                    Column(
                        name=str(data.get("name")),
                        data_type=str(data.get("type", "string")),
                        optional=bool(data.get("isOpt", False)),
                        is_pk=bool(data.get("isId", False)),
                    )
                )
            columns.sort(key=lambda c: (not c.is_pk, c.name))
            table = Table(
                relation_name, columns,
                intensional=bool(predicate.get("isIntensional", False)),
            )
            if relation_name in schema.tables:
                raise ModelError(f"duplicate relation {relation_name!r}")
            schema.tables[relation_name] = table
            table_by_predicate[predicate.id] = relation_name

        for fk_node in sorted(graph.nodes("ForeignKey"), key=lambda n: str(n.id)):
            if fk_node.get("schemaOID") != schema_oid:
                continue
            source = target = None
            for edge in graph.out_edges(fk_node.id, "FK_FROM"):
                source = table_by_predicate.get(edge.target)
            for edge in graph.out_edges(fk_node.id, "FK_TO"):
                target = table_by_predicate.get(edge.target)
            if source is None or target is None:
                raise ModelError(f"foreign key {fk_node.id!r} is dangling")
            fk_name = str(fk_node.get("name"))
            source_columns: List[str] = []
            for edge in graph.out_edges(fk_node.id, "HAS_SOURCE_FIELD"):
                data = graph.node(edge.target)
                if data.get("schemaOID") == schema_oid:
                    source_columns.append(str(data.get("name")))
            source_columns.sort()
            # The referenced columns are the target relation's primary key
            # (source fields are alphabetical "<fkName>_<keyAttr>" copies,
            # so the orders line up for composite keys too).  When the
            # target has no key the prefix-stripped names are kept as a
            # best-effort description.
            target_columns = schema.tables[target].primary_key()
            if len(target_columns) != len(source_columns):
                prefix = f"{fk_name}_"
                target_columns = [
                    name[len(prefix):] if name.startswith(prefix) else name
                    for name in source_columns
                ]
            schema.foreign_keys.append(
                ForeignKey(fk_name, source, source_columns, target, target_columns)
            )
        schema.foreign_keys.sort(
            key=lambda fk: (fk.source_table, fk.name, fk.target_table)
        )
        return schema


#: Singleton used by the repository.
RELATIONAL_MODEL = RelationalModel()
