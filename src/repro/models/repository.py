"""The mapping repository (REPO of Algorithm 1).

"After individuating a set of candidate mappings for M from a rule
repository (line 1), the system involves the data engineer (line 2) who
refines the choice on the basis of the desired implementation strategy"
— and "the data engineer is not responsible for the design of the
mappings, and only selects them from a pre-built library of translations
in KGModel".

:func:`default_repository` builds that pre-built library: the PG mapping
with its two generalization tactics, the relational mapping, and the
RDF-S mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.models.base import Model
from repro.models.mappings import intermediate_oid
from repro.models.mappings.pg_mapping import (
    copy_to_pg,
    eliminate_child_edges,
    eliminate_multilabel,
)
from repro.models.mappings.csv_mapping import copy_to_csv, eliminate_csv
from repro.models.mappings.rdf_mapping import copy_to_rdf, eliminate_rdf
from repro.models.mappings.relational_mapping import (
    copy_to_relational,
    eliminate_relational,
)
from repro.models.csvmodel import CSV_MODEL
from repro.models.property_graph import PROPERTY_GRAPH_MODEL
from repro.models.rdf import RDF_MODEL
from repro.models.relational import RELATIONAL_MODEL


@dataclass(frozen=True)
class Mapping:
    """A translation mapping M(M) = (Eliminate, Copy) for one model."""

    model: Model
    strategy: str
    description: str
    eliminate: Callable[[Any, Any], str]
    copy: Callable[[Any, Any], str]

    def programs(
        self, source_oid: Any, target_oid: Any, inter_oid: Any = None
    ) -> Tuple[str, str, Any]:
        """Return (eliminate text, copy text, intermediate OID)."""
        inter = inter_oid if inter_oid is not None else intermediate_oid(source_oid)
        return self.eliminate(source_oid, inter), self.copy(inter, target_oid), inter

    def __repr__(self) -> str:
        return f"Mapping({self.model.name!r}, strategy={self.strategy!r})"


class MappingRepository:
    """The pre-built library of translations (Algorithm 1's REPO)."""

    def __init__(self):
        self._mappings: Dict[str, List[Mapping]] = {}
        self._models: Dict[str, Model] = {}

    def register(self, mapping: Mapping, default: bool = False) -> None:
        bucket = self._mappings.setdefault(mapping.model.name, [])
        if any(m.strategy == mapping.strategy for m in bucket):
            raise ModelError(
                f"duplicate strategy {mapping.strategy!r} for model "
                f"{mapping.model.name!r}"
            )
        if default:
            bucket.insert(0, mapping)
        else:
            bucket.append(mapping)
        self._models[mapping.model.name] = mapping.model

    def model(self, model_name: str) -> Model:
        model = self._models.get(model_name)
        if model is None:
            raise ModelError(
                f"unknown target model {model_name!r}; known: "
                f"{sorted(self._models)}"
            )
        return model

    def candidates(self, model_name: str) -> List[Mapping]:
        """Line 1 of Algorithm 1: candidate mappings for a target model."""
        candidates = self._mappings.get(model_name)
        if not candidates:
            raise ModelError(
                f"no mappings registered for model {model_name!r}; known: "
                f"{sorted(self._mappings)}"
            )
        return list(candidates)

    def select(self, model_name: str, strategy: Optional[str] = None) -> Mapping:
        """Line 2 of Algorithm 1: pick the implementation strategy.

        Without an explicit ``strategy`` the first (default) candidate is
        used — the programmatic stand-in for prompting the data engineer.
        """
        candidates = self.candidates(model_name)
        if strategy is None:
            return candidates[0]
        for mapping in candidates:
            if mapping.strategy == strategy:
                return mapping
        raise ModelError(
            f"model {model_name!r} has no strategy {strategy!r}; available: "
            f"{[m.strategy for m in candidates]}"
        )

    def models(self) -> List[str]:
        return sorted(self._models)


def default_repository() -> MappingRepository:
    """The library shipped with KGModel."""
    repo = MappingRepository()
    repo.register(
        Mapping(
            PROPERTY_GRAPH_MODEL,
            "multi-label",
            "delete generalizations by type accumulation, attribute and "
            "edge inheritance (Section 5.2)",
            eliminate_multilabel,
            copy_to_pg,
        ),
        default=True,
    )
    repo.register(
        Mapping(
            PROPERTY_GRAPH_MODEL,
            "child-edges",
            "reify generalizations as IS_A relationships (alternative "
            "tactic, Section 5.1)",
            eliminate_child_edges,
            copy_to_pg,
        )
    )
    repo.register(
        Mapping(
            RELATIONAL_MODEL,
            "per-member",
            "a relation per generalization member with foreign keys; "
            "many-to-many edges reified (Section 5.3)",
            eliminate_relational,
            copy_to_relational,
        ),
        default=True,
    )
    repo.register(
        Mapping(
            RDF_MODEL,
            "rdfs",
            "pure copy: RDFS natively supports generalization",
            eliminate_rdf,
            copy_to_rdf,
        ),
        default=True,
    )
    repo.register(
        Mapping(
            CSV_MODEL,
            "flat-files",
            "relational elimination, then constraint-free flat files "
            "(Section 2.2's 'plain CSV files' model)",
            eliminate_csv,
            copy_to_csv,
        ),
        default=True,
    )
    return repo
