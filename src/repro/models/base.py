"""Target models as specializations of the super-model (Section 5).

"A model is represented in KGModel by specializing and renaming a subset
of the super-constructs" (Section 5.1).  A :class:`Model` therefore
declares:

- its *construct table* — each model construct with the super-construct
  it instantiates (the ``Node: SM_Node`` suffixes of Figures 5 and 7);
- the *dictionary catalog* for its construct labels (attribute order for
  the MetaLog mappings that write them);
- a parser that reads a translated schema (an instance of the model
  stored in the dictionary graph by the SSST's Copy phase) into a
  convenient typed object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.graph.property_graph import PropertyGraph
from repro.metalog.analysis import GraphCatalog


@dataclass(frozen=True)
class ConstructSpec:
    """One model construct and the super-construct it instantiates."""

    name: str
    specializes: str
    is_link: bool = False

    def __str__(self) -> str:
        return f"{self.name}: {self.specializes}"


class Model:
    """Base class for target models.

    Subclasses set :attr:`name`, :attr:`constructs`,
    :attr:`node_properties`, and :attr:`edge_properties`, and implement
    :meth:`parse_schema`.
    """

    name: str = "abstract"
    constructs: Tuple[ConstructSpec, ...] = ()
    node_properties: Dict[str, List[str]] = {}
    edge_properties: Dict[str, List[str]] = {}

    def catalog(self) -> GraphCatalog:
        """Catalog declaring this model's construct labels."""
        catalog = GraphCatalog()
        for label, names in self.node_properties.items():
            catalog.extend_node(label, names)
        for label, names in self.edge_properties.items():
            catalog.extend_edge(label, names)
        return catalog

    def construct_table(self) -> str:
        """The Figure 5/7-style table: construct -> super-construct."""
        width = max((len(c.name) for c in self.constructs), default=10) + 2
        lines = [f"{'construct':<{width}}specializes", "-" * (width + 24)]
        for construct in self.constructs:
            lines.append(f"{construct.name:<{width}}{construct.specializes}")
        return "\n".join(lines)

    def parse_schema(self, graph: PropertyGraph, schema_oid: Any):
        """Parse a translated schema out of the dictionary graph."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Model({self.name!r}, {len(self.constructs)} constructs)"
