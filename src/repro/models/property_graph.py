"""The property-graph target model (Figure 5).

"An essential PG model implemented using KGModel super-model.  Each
construct name is suffixed with the name of the super-construct it
instantiates (e.g., Node: SM_Node)."

The model we target is the one Section 5.2 describes: "labeled nodes and
edges.  Nodes can be tagged with multiple labels, and a uniqueness
constraint can be imposed on attributes.  Plus, there is no support for
generalizations."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ModelError
from repro.graph.property_graph import PropertyGraph
from repro.models.base import ConstructSpec, Model


@dataclass
class PGProperty:
    """A property declared on a node class or relationship class."""

    name: str
    data_type: str = "string"
    optional: bool = False
    unique: bool = False
    intensional: bool = False


@dataclass
class PGNodeClass:
    """One node construct of the translated schema: its labels and
    properties.  Multi-labeling is how the PG mapping encodes erased
    generalizations (type accumulation, Section 5.2)."""

    oid: Any
    labels: List[str] = field(default_factory=list)
    properties: List[PGProperty] = field(default_factory=list)
    intensional: bool = False

    @property
    def primary_label(self) -> str:
        """The most specific label (the node's own type)."""
        return self.labels[0] if self.labels else ""


@dataclass
class PGRelationshipClass:
    """One relationship construct: name, endpoint classes, properties."""

    oid: Any
    name: str
    source_oid: Any
    target_oid: Any
    properties: List[PGProperty] = field(default_factory=list)
    intensional: bool = False


@dataclass
class PGSchema:
    """A schema of the PG model, parsed back from the dictionary graph."""

    schema_oid: Any
    node_classes: List[PGNodeClass] = field(default_factory=list)
    relationship_classes: List[PGRelationshipClass] = field(default_factory=list)

    def node_class_by_label(self, label: str) -> PGNodeClass:
        for node_class in self.node_classes:
            if node_class.primary_label == label:
                return node_class
        raise ModelError(f"no node class with primary label {label!r}")

    def node_class_by_oid(self, oid: Any) -> PGNodeClass:
        for node_class in self.node_classes:
            if node_class.oid == oid:
                return node_class
        raise ModelError(f"no node class with OID {oid!r}")

    def labels(self) -> Set[str]:
        result: Set[str] = set()
        for node_class in self.node_classes:
            result |= set(node_class.labels)
        return result

    def relationship_names(self) -> Set[str]:
        return {r.name for r in self.relationship_classes}

    def unique_constraints(self) -> List[Tuple[str, str]]:
        """(label, property) pairs carrying a uniqueness constraint."""
        result: List[Tuple[str, str]] = []
        for node_class in self.node_classes:
            for prop in node_class.properties:
                if prop.unique:
                    result.append((node_class.primary_label, prop.name))
        return sorted(result)

    def summary(self) -> str:
        return (
            f"PGSchema({self.schema_oid!r}): {len(self.node_classes)} node "
            f"classes, {len(self.relationship_classes)} relationship "
            f"classes, {len(self.unique_constraints())} unique constraints"
        )


class PropertyGraphModel(Model):
    """The Figure 5 PG model."""

    name = "property-graph"

    constructs = (
        ConstructSpec("Node", "SM_Node"),
        ConstructSpec("Label", "SM_Type"),
        ConstructSpec("Relationship", "SM_Edge"),
        ConstructSpec("Property", "SM_Attribute"),
        ConstructSpec("UniquePropertyModifier", "SM_UniqueAttributeModifier"),
        ConstructSpec("HAS_LABEL", "SM_HAS_NODE_TYPE", is_link=True),
        ConstructSpec("FROM", "SM_FROM", is_link=True),
        ConstructSpec("TO", "SM_TO", is_link=True),
        ConstructSpec("HAS_PROPERTY", "SM_HAS_NODE_PROPERTY", is_link=True),
        ConstructSpec("HAS_MODIFIER", "SM_HAS_MODIFIER", is_link=True),
    )

    node_properties = {
        "Node": ["isIntensional", "schemaOID"],
        "Label": ["name", "schemaOID"],
        "Relationship": ["isIntensional", "name", "schemaOID"],
        "Property": ["isIntensional", "isOpt", "name", "schemaOID", "type"],
        "UniquePropertyModifier": ["schemaOID"],
    }
    edge_properties = {
        "HAS_LABEL": ["schemaOID"],
        "FROM": ["schemaOID"],
        "TO": ["schemaOID"],
        "HAS_PROPERTY": ["schemaOID"],
        "HAS_MODIFIER": ["schemaOID"],
    }

    def parse_schema(self, graph: PropertyGraph, schema_oid: Any) -> PGSchema:
        schema = PGSchema(schema_oid)

        def properties_of(owner: Any) -> List[PGProperty]:
            properties: List[PGProperty] = []
            for edge in graph.out_edges(owner, "HAS_PROPERTY"):
                data = graph.node(edge.target)
                if data.get("schemaOID") != schema_oid:
                    continue
                unique = any(
                    graph.node(m.target).get("schemaOID") == schema_oid
                    for m in graph.out_edges(edge.target, "HAS_MODIFIER")
                )
                properties.append(
                    PGProperty(
                        name=str(data.get("name")),
                        data_type=str(data.get("type", "string")),
                        optional=bool(data.get("isOpt", False)),
                        unique=unique,
                        intensional=bool(data.get("isIntensional", False)),
                    )
                )
            properties.sort(key=lambda p: p.name)
            return properties

        for node in sorted(graph.nodes("Node"), key=lambda n: str(n.id)):
            if node.get("schemaOID") != schema_oid:
                continue
            labels: List[str] = []
            for edge in graph.out_edges(node.id, "HAS_LABEL"):
                label_node = graph.node(edge.target)
                if label_node.get("schemaOID") == schema_oid:
                    labels.append(str(label_node.get("name")))
            # Primary label first: the one minted by the node's own type is
            # the one whose Skolem provenance matches; order
            # deterministically with the primary (shortest provenance)
            # first when detectable, else sorted.
            labels.sort()
            primary = _primary_label(graph, node.id, schema_oid)
            if primary is not None and primary in labels:
                labels.remove(primary)
                labels.insert(0, primary)
            schema.node_classes.append(
                PGNodeClass(
                    oid=node.id,
                    labels=labels,
                    properties=properties_of(node.id),
                    intensional=bool(node.get("isIntensional", False)),
                )
            )

        for relationship in sorted(graph.nodes("Relationship"), key=lambda n: str(n.id)):
            if relationship.get("schemaOID") != schema_oid:
                continue
            source_oid = target_oid = None
            for edge in graph.out_edges(relationship.id, "FROM"):
                source_oid = edge.target
            for edge in graph.out_edges(relationship.id, "TO"):
                target_oid = edge.target
            schema.relationship_classes.append(
                PGRelationshipClass(
                    oid=relationship.id,
                    name=str(relationship.get("name")),
                    source_oid=source_oid,
                    target_oid=target_oid,
                    properties=properties_of(relationship.id),
                    intensional=bool(relationship.get("isIntensional", False)),
                )
            )
        schema.node_classes.sort(key=lambda c: c.primary_label)
        schema.relationship_classes.sort(key=lambda r: (r.name, str(r.oid)))
        return schema


def _primary_label(graph: PropertyGraph, node_oid: Any, schema_oid: Any) -> Optional[str]:
    """Infer the node's own label from Skolem provenance when possible.

    The Copy mapping mints node OIDs with ``skPGN(n)`` where ``n`` is the
    S⁻ node whose own-type OID embeds the original type name
    (``<schema>:type:<TypeName>`` via ``skT``); we exploit that
    deterministic OID structure, falling back to None when provenance is
    opaque.
    """
    value = node_oid
    # Unwrap SkolemValue chains: skPGN(skN(original-node-oid)).
    for _ in range(4):
        arguments = getattr(value, "arguments", None)
        if arguments and len(arguments) >= 1:
            value = arguments[0]
        else:
            break
    text = str(value)
    marker = ":node:"
    if marker in text:
        return text.split(marker, 1)[1]
    return None


#: Singleton used by the repository.
PROPERTY_GRAPH_MODEL = PropertyGraphModel()
