"""The CSV target model.

Section 2.2 lists, among the models a KG can be cast into, "non-graph-
like models that are frequently used to serialize graphs, such as the
relational data model, plain CSV files, and so on".  The CSV model is
the relational layout stripped of every constraint the format cannot
express: files specialize ``SM_Type``, columns specialize
``SM_Attribute`` (keeping only a documentation-level ``isId`` marker),
and foreign keys degrade to bare reference columns — the information
loss that model awareness (Section 1) predicts for weaker targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ModelError
from repro.graph.property_graph import PropertyGraph
from repro.models.base import ConstructSpec, Model


@dataclass
class CSVColumn:
    """One column of a CSV file (``isId`` is documentation only)."""

    name: str
    data_type: str = "string"
    is_id: bool = False


@dataclass
class CSVFile:
    """One file with its ordered header."""

    name: str
    columns: List[CSVColumn] = field(default_factory=list)

    def header(self) -> List[str]:
        return [c.name for c in self.columns]


@dataclass
class CSVSchema:
    """A schema of the CSV model."""

    schema_oid: Any
    files: Dict[str, CSVFile] = field(default_factory=dict)

    def file(self, name: str) -> CSVFile:
        csv_file = self.files.get(name)
        if csv_file is None:
            raise ModelError(f"unknown CSV file {name!r}")
        return csv_file

    def summary(self) -> str:
        columns = sum(len(f.columns) for f in self.files.values())
        return (
            f"CSVSchema({self.schema_oid!r}): {len(self.files)} files, "
            f"{columns} columns (no enforceable constraints)"
        )


class CSVModel(Model):
    """CSV files: the weakest target in the library."""

    name = "csv"

    constructs = (
        ConstructSpec("CSVFile", "SM_Type"),
        ConstructSpec("CSVColumn", "SM_Attribute"),
        ConstructSpec("HAS_COLUMN", "SM_HAS_NODE_PROPERTY", is_link=True),
    )

    node_properties = {
        "CSVFile": ["name", "schemaOID"],
        "CSVColumn": ["isId", "name", "schemaOID", "type"],
    }
    edge_properties = {
        "HAS_COLUMN": ["schemaOID"],
    }

    def parse_schema(self, graph: PropertyGraph, schema_oid: Any) -> CSVSchema:
        schema = CSVSchema(schema_oid)
        for file_node in sorted(graph.nodes("CSVFile"), key=lambda n: str(n.id)):
            if file_node.get("schemaOID") != schema_oid:
                continue
            name = str(file_node.get("name"))
            columns: List[CSVColumn] = []
            for edge in graph.out_edges(file_node.id, "HAS_COLUMN"):
                data = graph.node(edge.target)
                if data.get("schemaOID") != schema_oid:
                    continue
                columns.append(
                    CSVColumn(
                        name=str(data.get("name")),
                        data_type=str(data.get("type", "string")),
                        is_id=bool(data.get("isId", False)),
                    )
                )
            columns.sort(key=lambda c: (not c.is_id, c.name))
            if name in schema.files:
                raise ModelError(f"duplicate CSV file {name!r}")
            schema.files[name] = CSVFile(name, columns)
        return schema


#: Singleton used by the repository.
CSV_MODEL = CSVModel()
