"""Target models and their translation mappings (Section 5)."""

from repro.models.base import ConstructSpec, Model
from repro.models.csvmodel import CSV_MODEL, CSVColumn, CSVFile, CSVModel, CSVSchema
from repro.models.property_graph import (
    PGNodeClass,
    PGProperty,
    PGRelationshipClass,
    PGSchema,
    PROPERTY_GRAPH_MODEL,
    PropertyGraphModel,
)
from repro.models.rdf import (
    RDF_MODEL,
    RDFClass,
    RDFDatatypeProperty,
    RDFModel,
    RDFObjectProperty,
    RDFSchema,
)
from repro.models.relational import (
    Column,
    ForeignKey,
    RELATIONAL_MODEL,
    RelationalModel,
    RelationalSchema,
    Table,
)
from repro.models.repository import Mapping, MappingRepository, default_repository

__all__ = [
    "ConstructSpec",
    "Model",
    "CSV_MODEL",
    "CSVColumn",
    "CSVFile",
    "CSVModel",
    "CSVSchema",
    "PGNodeClass",
    "PGProperty",
    "PGRelationshipClass",
    "PGSchema",
    "PROPERTY_GRAPH_MODEL",
    "PropertyGraphModel",
    "RDF_MODEL",
    "RDFClass",
    "RDFDatatypeProperty",
    "RDFModel",
    "RDFObjectProperty",
    "RDFSchema",
    "Column",
    "ForeignKey",
    "RELATIONAL_MODEL",
    "RelationalModel",
    "RelationalSchema",
    "Table",
    "Mapping",
    "MappingRepository",
    "default_repository",
]
