"""In-memory property graph, following the paper's formal definition.

Section 4 of the paper defines a (regular) property graph as a tuple
``G = (N, E, mu, lambda, sigma)`` where ``N`` is a finite set of nodes,
``E`` a finite set of edges disjoint from ``N``, ``mu : E -> N x N`` the
incidence function, ``lambda`` a partial labelling of nodes and edges, and
``sigma`` a partial property-assignment function.

This module provides :class:`PropertyGraph`, the storage substrate used
throughout the reproduction: it backs the graph dictionaries of the
meta-level stack (super-schemas and schemas are themselves stored as
property graphs), the extensional component of the Company KG, and the
in-memory graph store of :mod:`repro.deploy`.

The implementation keeps adjacency indexes (by node, by label) so that the
MetaLog-to-relational extraction of Section 4 and the statistics of
Section 2.1 run in time linear in the size of the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeploymentError, GraphError

#: Sentinel distinguishing "property absent on the element" from a stored
#: ``None`` value in the bulk table accessors (``nodes_table``/``edges_table``).
ABSENT = object()


@dataclass(frozen=True, slots=True)
class Node:
    """A node of a property graph.

    Nodes are identified by an internal OID (``id``), carry at most one
    label (``lambda`` is a partial function in the paper's definition) and
    a dictionary of properties (``sigma``).
    """

    id: Any
    label: Optional[str] = None
    properties: Dict[str, Any] = field(default_factory=dict, compare=False)

    def get(self, name: str, default: Any = None) -> Any:
        """Return property ``name`` or ``default`` when absent."""
        return self.properties.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.properties[name]


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed edge of a property graph.

    ``source``/``target`` store node OIDs (the incidence function ``mu``),
    ``label`` the partial labelling, and ``properties`` the ``sigma``
    assignments of the edge.
    """

    id: Any
    source: Any
    target: Any
    label: Optional[str] = None
    properties: Dict[str, Any] = field(default_factory=dict, compare=False)

    def get(self, name: str, default: Any = None) -> Any:
        """Return property ``name`` or ``default`` when absent."""
        return self.properties.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.properties[name]


class PropertyGraph:
    """A mutable, directed, labeled property graph.

    The class exposes the vocabulary of the paper (nodes, edges, labels,
    properties) plus the indexed accessors the rest of the library needs:

    - ``nodes_by_label`` / ``edges_by_label`` for the PG-to-relational
      mapping of MTV (Section 4, step 1);
    - ``out_edges`` / ``in_edges`` for path-pattern navigation and for the
      degree statistics of Section 2.1.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._nodes: Dict[Any, Node] = {}
        self._edges: Dict[Any, Edge] = {}
        self._out: Dict[Any, List[Any]] = {}
        self._in: Dict[Any, List[Any]] = {}
        # Label buckets are insertion-ordered dicts (value always None):
        # membership/removal stay O(1) like a set, but per-label iteration
        # follows insertion order, so extraction order is deterministic.
        self._nodes_by_label: Dict[str, Dict[Any, None]] = {}
        self._edges_by_label: Dict[str, Dict[Any, None]] = {}
        self._auto_id = 1
        # Bumped by every deletion; insertion marks embed the epoch at
        # capture time so a popitem rollback can detect that the
        # "tail == post-mark additions" assumption has been broken.
        self._mutation_epoch = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: Any = None,
        label: Optional[str] = None,
        **properties: Any,
    ) -> Node:
        """Add a node and return it.

        When ``node_id`` is omitted a fresh integer OID is generated.
        Re-adding an existing OID is an error: nodes are identified by OID
        (use :meth:`set_node_property` to update).
        """
        if node_id is None:
            node_id = self._fresh_id("n")
        if node_id in self._nodes:
            raise GraphError(f"node {node_id!r} already exists in {self.name!r}")
        node = Node(node_id, label, dict(properties))
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        if label is not None:
            self._nodes_by_label.setdefault(label, {})[node_id] = None
        return node

    def add_edge(
        self,
        source: Any,
        target: Any,
        label: Optional[str] = None,
        edge_id: Any = None,
        **properties: Any,
    ) -> Edge:
        """Add a directed edge ``source -> target`` and return it.

        Both endpoints must already exist (``mu`` is total on ``E``).
        """
        if source not in self._nodes:
            raise GraphError(f"unknown source node {source!r} in {self.name!r}")
        if target not in self._nodes:
            raise GraphError(f"unknown target node {target!r} in {self.name!r}")
        if edge_id is None:
            edge_id = self._fresh_id("e")
        if edge_id in self._edges:
            raise GraphError(f"edge {edge_id!r} already exists in {self.name!r}")
        edge = Edge(edge_id, source, target, label, dict(properties))
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        if label is not None:
            self._edges_by_label.setdefault(label, {})[edge_id] = None
        return edge

    def _fresh_id(self, prefix: str) -> str:
        while True:
            candidate = f"{prefix}{self._auto_id}"
            self._auto_id += 1
            if candidate not in self._nodes and candidate not in self._edges:
                return candidate

    # ------------------------------------------------------------------
    # Insertion marks (structural savepoints)
    # ------------------------------------------------------------------
    def insertion_mark(self) -> Tuple[int, int, int]:
        """Capture the ``(node_count, edge_count, mutation_epoch)`` watermark.

        Valid for :meth:`rollback_to_mark` only while every mutation since
        the mark is an *insertion* (``add_node`` / ``add_edge``): node and
        edge dicts are insertion-ordered, so the tail past the watermark
        is exactly the post-mark additions.  The deploy stores satisfy
        this (they never remove during a load), which makes a savepoint
        O(1) instead of one undo closure per mutation.

        The embedded mutation epoch makes the assumption *checked* rather
        than trusted: ``remove_node`` / ``remove_edge`` bump the graph's
        epoch, so a mark taken before an interleaved deletion no longer
        matches and :meth:`rollback_to_mark` refuses it instead of
        silently popping unrelated elements.
        """
        return (len(self._nodes), len(self._edges), self._mutation_epoch)

    def rollback_to_mark(self, mark: Tuple[int, int, int]) -> int:
        """Remove everything inserted after :meth:`insertion_mark`.

        Edges are popped before nodes so incidence stays total; returns
        the number of elements removed.  Raises
        :class:`~repro.errors.DeploymentError` when the mark is *stale* —
        a deletion happened after it was taken, so the insertion-ordered
        tail no longer corresponds to the post-mark additions and a
        popitem rollback would corrupt the store.
        """
        node_mark, edge_mark, epoch = mark
        if epoch != self._mutation_epoch:
            raise DeploymentError(
                f"stale insertion mark for graph {self.name!r}: "
                f"{self._mutation_epoch - epoch} deletion(s) interleaved "
                f"since the mark was taken; a structural rollback would "
                f"remove the wrong elements (use an undo-log transaction "
                f"when deletions can occur)"
            )
        undone = 0
        while len(self._edges) > edge_mark:
            edge_id, edge = self._edges.popitem()
            self._out[edge.source].remove(edge_id)
            self._in[edge.target].remove(edge_id)
            if edge.label is not None:
                self._edges_by_label[edge.label].pop(edge_id, None)
            undone += 1
        while len(self._nodes) > node_mark:
            node_id, node = self._nodes.popitem()
            del self._out[node_id]
            del self._in[node_id]
            if node.label is not None:
                self._nodes_by_label[node.label].pop(node_id, None)
            undone += 1
        return undone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_node_property(self, node_id: Any, name: str, value: Any) -> None:
        """Assign ``sigma(node, name) = value``."""
        self.node(node_id).properties[name] = value

    def set_edge_property(self, edge_id: Any, name: str, value: Any) -> None:
        """Assign ``sigma(edge, name) = value``."""
        self.edge(edge_id).properties[name] = value

    def remove_edge(self, edge_id: Any) -> None:
        """Remove an edge; endpoints are untouched."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise GraphError(f"unknown edge {edge_id!r} in {self.name!r}")
        self._mutation_epoch += 1
        self._out[edge.source].remove(edge_id)
        self._in[edge.target].remove(edge_id)
        if edge.label is not None:
            self._edges_by_label[edge.label].pop(edge_id, None)

    def remove_node(self, node_id: Any) -> None:
        """Remove a node together with all its incident edges."""
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id!r} in {self.name!r}")
        for edge_id in list(self._out[node_id]) + list(self._in[node_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        self._mutation_epoch += 1
        node = self._nodes.pop(node_id)
        del self._out[node_id]
        del self._in[node_id]
        if node.label is not None:
            self._nodes_by_label[node.label].pop(node_id, None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: Any) -> Node:
        """Return the node with the given OID."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r} in {self.name!r}") from None

    def edge(self, edge_id: Any) -> Edge:
        """Return the edge with the given OID."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id!r} in {self.name!r}") from None

    def has_node(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: Any) -> bool:
        return edge_id in self._edges

    def nodes(self, label: Optional[str] = None) -> Iterator[Node]:
        """Iterate over nodes, optionally restricted to one label."""
        if label is None:
            yield from self._nodes.values()
        else:
            for node_id in self._nodes_by_label.get(label, ()):
                yield self._nodes[node_id]

    def edges(self, label: Optional[str] = None) -> Iterator[Edge]:
        """Iterate over edges, optionally restricted to one label."""
        if label is None:
            yield from self._edges.values()
        else:
            for edge_id in self._edges_by_label.get(label, ()):
                yield self._edges[edge_id]

    def out_edges(self, node_id: Any, label: Optional[str] = None) -> Iterator[Edge]:
        """Iterate over the outgoing edges of a node."""
        for edge_id in self._out.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def in_edges(self, node_id: Any, label: Optional[str] = None) -> Iterator[Edge]:
        """Iterate over the incoming edges of a node."""
        for edge_id in self._in.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def successors(self, node_id: Any, label: Optional[str] = None) -> Iterator[Node]:
        """Iterate over nodes reachable through one outgoing edge."""
        for edge in self.out_edges(node_id, label):
            yield self._nodes[edge.target]

    def predecessors(self, node_id: Any, label: Optional[str] = None) -> Iterator[Node]:
        """Iterate over nodes reaching this node through one edge."""
        for edge in self.in_edges(node_id, label):
            yield self._nodes[edge.source]

    def node_labels(self) -> Tuple[str, ...]:
        """Return the node labels in use, as a sorted tuple.

        Sorted (not a ``set``) so that callers iterating the labels get a
        deterministic order regardless of hash seeding — the same
        sorted-label rule the flush/extraction paths follow.
        """
        return tuple(sorted(
            label for label, ids in self._nodes_by_label.items() if ids
        ))

    def edge_labels(self) -> Tuple[str, ...]:
        """Return the edge labels in use, as a sorted tuple."""
        return tuple(sorted(
            label for label, ids in self._edges_by_label.items() if ids
        ))

    def out_degree(self, node_id: Any) -> int:
        return len(self._out.get(node_id, ()))

    def in_degree(self, node_id: Any) -> int:
        return len(self._in.get(node_id, ()))

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:
        return (
            f"PropertyGraph({self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def find_nodes(self, label: Optional[str] = None, **properties: Any) -> Iterator[Node]:
        """Iterate over nodes matching a label and exact property values."""
        for node in self.nodes(label):
            if all(node.properties.get(k) == v for k, v in properties.items()):
                yield node

    def find_edges(
        self,
        label: Optional[str] = None,
        source: Any = None,
        target: Any = None,
        **properties: Any,
    ) -> Iterator[Edge]:
        """Iterate over edges matching label, endpoints, and properties."""
        if source is not None:
            candidates: Iterable[Edge] = self.out_edges(source, label)
        elif target is not None:
            candidates = self.in_edges(target, label)
        else:
            candidates = self.edges(label)
        for edge in candidates:
            if target is not None and edge.target != target:
                continue
            if source is not None and edge.source != source:
                continue
            if all(edge.properties.get(k) == v for k, v in properties.items()):
                yield edge

    def degrees(self) -> Dict[Any, Tuple[int, int]]:
        """Return ``{node_id: (in_degree, out_degree)}`` in one pass."""
        out = self._out
        return {
            node_id: (len(in_ids), len(out[node_id]))
            for node_id, in_ids in self._in.items()
        }

    def adjacency(self, label: Optional[str] = None) -> Dict[Any, List[Any]]:
        """Return ``{node_id: [successor ids]}`` in one edge pass.

        Every node appears as a key (possibly with an empty list), so the
        result can drive traversals without extra membership checks.
        """
        edges = self._edges
        adj: Dict[Any, List[Any]] = {node_id: [] for node_id in self._nodes}
        if label is None:
            for edge in edges.values():
                adj[edge.source].append(edge.target)
        else:
            for edge_id in self._edges_by_label.get(label, ()):
                edge = edges[edge_id]
                adj[edge.source].append(edge.target)
        return adj

    # ------------------------------------------------------------------
    # Bulk (columnar) accessors
    # ------------------------------------------------------------------
    # These four methods are the graph side of the columnar fast path:
    # the PG<->relational boundary of Section 4 moves whole labels at a
    # time as parallel column lists, so neither side pays a per-element
    # Python attribute/dict lookup or a per-fact ``has_node`` probe.

    def nodes_table(
        self,
        label: str,
        names: Iterable[str] = (),
        default: Any = None,
    ) -> Tuple[List[Any], List[List[Any]]]:
        """Return ``(ids, columns)`` for every node with ``label``.

        ``columns`` holds one list per property name in ``names``, aligned
        with ``ids``; a property absent on a node yields ``default`` (pass
        :data:`ABSENT` to distinguish a stored ``None`` from a missing
        property).  Row order is node insertion order — deterministic for
        any deterministic construction sequence.
        """
        bucket = self._nodes_by_label.get(label)
        if not bucket:
            return [], [[] for _ in names]
        nodes = self._nodes
        ids = list(bucket)
        props = [nodes[node_id].properties for node_id in ids]
        columns = [[p.get(name, default) for p in props] for name in names]
        return ids, columns

    def edges_table(
        self,
        label: str,
        names: Iterable[str] = (),
        default: Any = None,
    ) -> Tuple[List[Any], List[Any], List[Any], List[List[Any]]]:
        """Return ``(ids, sources, targets, columns)`` for edges with ``label``.

        Same contract as :meth:`nodes_table`, plus the two endpoint
        columns of the incidence function ``mu``.
        """
        bucket = self._edges_by_label.get(label)
        if not bucket:
            return [], [], [], [[] for _ in names]
        store = self._edges
        edges = [store[edge_id] for edge_id in bucket]
        ids = [e.id for e in edges]
        sources = [e.source for e in edges]
        targets = [e.target for e in edges]
        columns = [[e.properties.get(name, default) for e in edges] for name in names]
        return ids, sources, targets, columns

    def add_nodes_bulk(
        self,
        label: Optional[str],
        ids: List[Any],
        names: Tuple[str, ...] = (),
        columns: Iterable[List[Any]] = (),
        constants: Optional[Dict[str, Any]] = None,
        keep_none: bool = False,
    ) -> None:
        """Add many nodes with one shared label in a single column pass.

        ``columns`` provides one aligned value list per name in ``names``;
        ``None`` cells are dropped unless ``keep_none`` (matching the
        per-object convention that an unassigned property is absent, not
        ``None``).  ``constants`` adds the same extra properties to every
        node.  All OIDs must be fresh — duplicates raise
        :class:`~repro.errors.GraphError` with the store unchanged, the
        same contract as :meth:`add_node`.
        """
        if not ids:
            return
        nodes = self._nodes
        seen = set(ids)
        clash = nodes.keys() & seen
        if clash:
            bad = sorted(clash, key=str)[0]
            raise GraphError(
                f"node {bad!r} already exists in {self.name!r}"
            )
        if len(seen) != len(ids):
            dup = [i for i in ids if ids.count(i) > 1]
            raise GraphError(
                f"duplicate node OID {dup[0]!r} in bulk add to {self.name!r}"
            )
        if names:
            rows = zip(*columns)
            if keep_none:
                prop_iter = (dict(zip(names, row)) for row in rows)
            else:
                prop_iter = (
                    {n: v for n, v in zip(names, row) if v is not None}
                    for row in rows
                )
        else:
            prop_iter = ({} for _ in ids)
        out, inn = self._out, self._in
        if constants:
            const = dict(constants)
            for node_id, props in zip(ids, prop_iter):
                props.update(const)
                nodes[node_id] = Node(node_id, label, props)
                out[node_id] = []
                inn[node_id] = []
        else:
            for node_id, props in zip(ids, prop_iter):
                nodes[node_id] = Node(node_id, label, props)
                out[node_id] = []
                inn[node_id] = []
        if label is not None:
            bucket = self._nodes_by_label.setdefault(label, {})
            for node_id in ids:
                bucket[node_id] = None

    def add_edges_bulk(
        self,
        label: Optional[str],
        ids: List[Any],
        sources: List[Any],
        targets: List[Any],
        names: Tuple[str, ...] = (),
        columns: Iterable[List[Any]] = (),
        constants: Optional[Dict[str, Any]] = None,
        keep_none: bool = False,
    ) -> None:
        """Add many edges with one shared label in a single column pass.

        Same contract as :meth:`add_nodes_bulk`; every endpoint must
        already exist (``mu`` stays total), checked up front via one set
        difference instead of two probes per edge.
        """
        if not ids:
            return
        edges = self._edges
        nodes = self._nodes
        missing = set(sources).union(targets).difference(nodes)
        if missing:
            bad = sorted(missing, key=str)[0]
            raise GraphError(f"unknown source node {bad!r} in {self.name!r}")
        seen = set(ids)
        clash = edges.keys() & seen
        if clash:
            bad = sorted(clash, key=str)[0]
            raise GraphError(
                f"edge {bad!r} already exists in {self.name!r}"
            )
        if len(seen) != len(ids):
            dup = [i for i in ids if ids.count(i) > 1]
            raise GraphError(
                f"duplicate edge OID {dup[0]!r} in bulk add to {self.name!r}"
            )
        if names:
            rows = zip(*columns)
            if keep_none:
                prop_iter = (dict(zip(names, row)) for row in rows)
            else:
                prop_iter = (
                    {n: v for n, v in zip(names, row) if v is not None}
                    for row in rows
                )
        else:
            prop_iter = ({} for _ in ids)
        out, inn = self._out, self._in
        if constants:
            const = dict(constants)
            for edge_id, source, target, props in zip(
                ids, sources, targets, prop_iter
            ):
                props.update(const)
                edges[edge_id] = Edge(edge_id, source, target, label, props)
                out[source].append(edge_id)
                inn[target].append(edge_id)
        else:
            for edge_id, source, target, props in zip(
                ids, sources, targets, prop_iter
            ):
                edges[edge_id] = Edge(edge_id, source, target, label, props)
                out[source].append(edge_id)
                inn[target].append(edge_id)
        if label is not None:
            bucket = self._edges_by_label.setdefault(label, {})
            for edge_id in ids:
                bucket[edge_id] = None

    def existing_node_ids(self, ids: Iterable[Any]) -> Set[Any]:
        """Return the subset of ``ids`` already present as node OIDs.

        One C-level set intersection, replacing per-id ``has_node`` probes
        on bulk write-back paths.
        """
        return self._nodes.keys() & set(ids)

    def existing_edge_ids(self, ids: Iterable[Any]) -> Set[Any]:
        """Return the subset of ``ids`` already present as edge OIDs."""
        return self._edges.keys() & set(ids)

    def copy(self, name: Optional[str] = None) -> "PropertyGraph":
        """Return a deep-enough copy (properties are shallow-copied dicts).

        Internal state is reconstructed directly — the invariants already
        hold in ``self``, so re-validating through ``add_node``/``add_edge``
        would only burn time on large graphs.
        """
        clone = PropertyGraph(name or self.name)
        clone._nodes = {
            node_id: Node(node.id, node.label, dict(node.properties))
            for node_id, node in self._nodes.items()
        }
        clone._edges = {
            edge_id: Edge(
                edge.id, edge.source, edge.target, edge.label, dict(edge.properties)
            )
            for edge_id, edge in self._edges.items()
        }
        clone._out = {node_id: list(ids) for node_id, ids in self._out.items()}
        clone._in = {node_id: list(ids) for node_id, ids in self._in.items()}
        clone._nodes_by_label = {
            label: dict(ids) for label, ids in self._nodes_by_label.items()
        }
        clone._edges_by_label = {
            label: dict(ids) for label, ids in self._edges_by_label.items()
        }
        clone._auto_id = self._auto_id
        clone._mutation_epoch = self._mutation_epoch
        return clone

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` for analysis interop."""
        import networkx as nx

        nxg = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            nxg.add_node(node.id, label=node.label, **node.properties)
        for edge in self._edges.values():
            nxg.add_edge(
                edge.source, edge.target, key=edge.id, label=edge.label, **edge.properties
            )
        return nxg

    @classmethod
    def from_networkx(cls, nxg, name: Optional[str] = None) -> "PropertyGraph":
        """Build a property graph from any NetworkX directed graph."""
        graph = cls(name or getattr(nxg, "name", "graph") or "graph")
        for node_id, data in nxg.nodes(data=True):
            attrs = dict(data)
            label = attrs.pop("label", None)
            graph.add_node(node_id, label, **attrs)
        for source, target, data in nxg.edges(data=True):
            attrs = dict(data)
            label = attrs.pop("label", None)
            attrs.pop("key", None)
            graph.add_edge(source, target, label, **attrs)
        return graph
