"""Property-graph serialization: a small JSON interchange format.

Used by the CLI and the examples to persist instances:

.. code-block:: json

    {
      "name": "companies",
      "nodes": [{"id": "b1", "label": "Business", "properties": {...}}],
      "edges": [{"id": "e1", "source": "b1", "target": "b2",
                 "label": "OWNS", "properties": {"percentage": 0.6}}]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO, Union

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph


def graph_to_json(graph: PropertyGraph, indent: int = 2) -> str:
    """Serialize a property graph to the JSON interchange format."""
    payload: Dict[str, Any] = {
        "name": graph.name,
        "nodes": [
            {"id": node.id, "label": node.label, "properties": node.properties}
            for node in sorted(graph.nodes(), key=lambda n: str(n.id))
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "properties": edge.properties,
            }
            for edge in sorted(graph.edges(), key=lambda e: str(e.id))
        ],
    }
    return json.dumps(payload, indent=indent, default=str)


def graph_from_json(text: str) -> PropertyGraph:
    """Parse the JSON interchange format back into a property graph."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc
    from repro.graph import make_graph  # io loads before the package init

    graph = make_graph(payload.get("name", "graph"))
    for node in payload.get("nodes", []):
        graph.add_node(node["id"], node.get("label"), **node.get("properties", {}))
    for edge in payload.get("edges", []):
        graph.add_edge(
            edge["source"], edge["target"], edge.get("label"),
            edge_id=edge.get("id"), **edge.get("properties", {}),
        )
    return graph


def save_graph(graph: PropertyGraph, path: str) -> None:
    """Write the JSON interchange format to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph_to_json(graph))


def load_graph(path: str) -> PropertyGraph:
    """Read the JSON interchange format from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(handle.read())
