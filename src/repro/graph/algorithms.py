"""Graph algorithms used by the Section 2.1 statistics and the baselines.

Implemented from scratch (no NetworkX dependency on the hot paths) so that
the statistics benchmark exercises our own substrate:

- Tarjan strongly connected components (iterative, recursion-free);
- weakly connected components via union-find;
- local clustering coefficient on the underlying simple undirected graph;
- reachability / descendant sets used by the financial baselines.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.graph.property_graph import PropertyGraph


def strongly_connected_components(graph: PropertyGraph) -> List[List[Any]]:
    """Return the SCCs of ``graph`` (Tarjan's algorithm, iterative).

    Each component is a list of node OIDs; components are returned in
    reverse topological order of the condensation, as Tarjan produces them.
    """
    index: Dict[Any, int] = {}
    lowlink: Dict[Any, int] = {}
    on_stack: Set[Any] = set()
    stack: List[Any] = []
    components: List[List[Any]] = []
    counter = [0]
    adjacency = graph.adjacency()

    for root in adjacency:
        if root in index:
            continue
        # Iterative DFS: work items are (node, iterator over successors).
        work: List[Tuple[Any, Any]] = [(root, None)]
        while work:
            node_id, successor_iter = work.pop()
            if successor_iter is None:
                index[node_id] = lowlink[node_id] = counter[0]
                counter[0] += 1
                stack.append(node_id)
                on_stack.add(node_id)
                successor_iter = iter(adjacency[node_id])
            advanced = False
            for target in successor_iter:
                if target not in index:
                    work.append((node_id, successor_iter))
                    work.append((target, None))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node_id] = min(lowlink[node_id], index[target])
            if advanced:
                continue
            if lowlink[node_id] == index[node_id]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node_id:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node_id])
    return components


class _UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self):
        self.parent: Dict[Any, Any] = {}
        self.size: Dict[Any, int] = {}

    def add(self, item: Any) -> None:
        if item not in self.parent:
            self.parent[item] = item
            self.size[item] = 1

    def find(self, item: Any) -> Any:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: Any, b: Any) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def weakly_connected_components(graph: PropertyGraph) -> List[List[Any]]:
    """Return the WCCs of ``graph`` (union-find over undirected edges)."""
    uf = _UnionFind()
    for node in graph.nodes():
        uf.add(node.id)
    for edge in graph.edges():
        uf.union(edge.source, edge.target)
    groups: Dict[Any, List[Any]] = {}
    for node in graph.nodes():
        groups.setdefault(uf.find(node.id), []).append(node.id)
    return list(groups.values())


def _undirected_neighbours(graph: PropertyGraph) -> Dict[Any, Set[Any]]:
    """Neighbour sets of the simple undirected version (no self-loops)."""
    neighbours: Dict[Any, Set[Any]] = {node.id: set() for node in graph.nodes()}
    for edge in graph.edges():
        if edge.source == edge.target:
            continue
        neighbours[edge.source].add(edge.target)
        neighbours[edge.target].add(edge.source)
    return neighbours


def clustering_coefficient(graph: PropertyGraph) -> float:
    """Average local clustering coefficient of the undirected simple graph.

    This is the statistic the paper reports (~0.0086 for the Bank of Italy
    shareholding graph).  Nodes of degree < 2 contribute 0 to the average,
    as in the standard definition.
    """
    neighbours = _undirected_neighbours(graph)
    if not neighbours:
        return 0.0
    total = 0.0
    for node_id, nbrs in neighbours.items():
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for u in nbrs:
            # Count each neighbour pair once by comparing against the set.
            links += len(neighbours[u] & nbrs)
        # Each triangle edge was counted twice (once from each endpoint).
        total += links / (k * (k - 1))
    return total / len(neighbours)


def descendants(graph: PropertyGraph, start: Any, label: str = None) -> Set[Any]:
    """Nodes reachable from ``start`` via directed edges (``start`` excluded
    unless it lies on a cycle through itself)."""
    seen: Set[Any] = set()
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for edge in graph.out_edges(current, label):
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return seen


def ancestors(graph: PropertyGraph, start: Any, label: str = None) -> Set[Any]:
    """Nodes that can reach ``start`` via directed edges."""
    seen: Set[Any] = set()
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for edge in graph.in_edges(current, label):
            if edge.source not in seen:
                seen.add(edge.source)
                frontier.append(edge.source)
    return seen


def topological_order(graph: PropertyGraph) -> List[Any]:
    """Kahn topological sort; raises ``ValueError`` on a cyclic graph."""
    adjacency = graph.adjacency()
    indegree = {node_id: in_deg for node_id, (in_deg, _) in graph.degrees().items()}
    queue = [node_id for node_id, deg in indegree.items() if deg == 0]
    order: List[Any] = []
    while queue:
        node_id = queue.pop()
        order.append(node_id)
        for target in adjacency[node_id]:
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if len(order) != graph.node_count:
        raise ValueError("graph contains a cycle")
    return order
