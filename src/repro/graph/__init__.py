"""Property-graph substrate: storage, algorithms, and statistics."""

from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.graph.statistics import GraphStatistics, PAPER_STATISTICS, summarize
from repro.graph.powerlaw import PowerLawFit, fit_power_law

__all__ = [
    "Edge",
    "Node",
    "PropertyGraph",
    "GraphStatistics",
    "PAPER_STATISTICS",
    "summarize",
    "PowerLawFit",
    "fit_power_law",
]
