"""Property-graph substrate: storage, algorithms, and statistics.

Two interchangeable backing stores implement the same graph API:

* :class:`PropertyGraph` — one frozen ``Node``/``Edge`` dataclass per
  element (the original implementation, kept as the differential
  oracle, mirroring ``Engine(columnar=False)``);
* :class:`ColumnarPropertyGraph` — interned code columns + int-indexed
  adjacency with lazy views (the production store at registry scale).

:func:`make_graph` selects between them; the default is columnar and
can be overridden per call or process-wide with the
``REPRO_GRAPH_BACKEND`` environment variable (``object`` | ``columnar``).
"""

import os
from typing import Optional, Union

from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.graph.columnar_graph import ColumnarPropertyGraph, EdgeView, NodeView
from repro.graph.statistics import GraphStatistics, PAPER_STATISTICS, summarize
from repro.graph.powerlaw import PowerLawFit, fit_power_law

#: Environment override for the default graph backend.
GRAPH_BACKEND_ENV = "REPRO_GRAPH_BACKEND"

#: Either backing store (they are duck-type equivalent, no common base).
AnyPropertyGraph = Union[PropertyGraph, ColumnarPropertyGraph]


def default_graph_backend() -> bool:
    """True when the columnar backend is the process default."""
    return os.environ.get(GRAPH_BACKEND_ENV, "columnar").lower() != "object"


def make_graph(name: str = "graph",
               columnar: Optional[bool] = None) -> AnyPropertyGraph:
    """Construct a property graph on the selected backing store.

    ``columnar=None`` defers to :func:`default_graph_backend` (columnar
    unless ``REPRO_GRAPH_BACKEND=object``); pass an explicit bool to pin
    a backend — differential tests pin both and compare.
    """
    if columnar is None:
        columnar = default_graph_backend()
    if columnar:
        return ColumnarPropertyGraph(name)
    return PropertyGraph(name)


__all__ = [
    "Edge",
    "Node",
    "NodeView",
    "EdgeView",
    "PropertyGraph",
    "ColumnarPropertyGraph",
    "AnyPropertyGraph",
    "GRAPH_BACKEND_ENV",
    "default_graph_backend",
    "make_graph",
    "GraphStatistics",
    "PAPER_STATISTICS",
    "summarize",
    "PowerLawFit",
    "fit_power_law",
]
