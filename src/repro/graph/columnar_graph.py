"""Columnar backing store for the property graph.

The object-backed :class:`~repro.graph.property_graph.PropertyGraph`
spends ~0.5 KB of Python object headers per element (a frozen ``Node``
or ``Edge`` dataclass, its properties dict, two adjacency list slots,
dict entries in the OID index and label bucket).  At registry scale the
dictionary graph is the memory wall: ROADMAP puts the 500k+-company
graph at GBs of per-object overhead even though the *data* is a few
dozen megabytes of interned strings and floats.

:class:`ColumnarPropertyGraph` keeps the same API but stores the graph
as columns, reusing the dictionary-encoding machinery of
:mod:`repro.vadalog.columnar`:

* one :class:`~repro.vadalog.columnar.ValueInterner` per graph maps
  every property value to a small integer code (append-only, so codes
  stay valid across copies and snapshots);
* nodes and edges get dense integer ids (``nid``/``eid``) in insertion
  order; OID, label code, liveness, and the incidence endpoints are
  parallel arrays indexed by them;
* per-label *property matrices*: one :class:`_Table` per label holding
  the member ids plus one ``array('i')`` code column per property name,
  with ``-1`` encoding "property absent on this element" (the bulk
  accessors' :data:`~repro.graph.property_graph.ABSENT`) and codes
  ``<= -2`` boxing the rare unhashable value the interner cannot key;
* adjacency is CSR-in-spirit but incrementally maintainable: per-node
  head/tail cursors into per-edge next/prev links — four ints per node
  and four per edge buy O(1) insert *and* O(1) unlink while iterating
  ``out_edges``/``in_edges`` in exactly the object backend's insertion
  order.

The API yields lazy :class:`NodeView`/:class:`EdgeView` objects whose
``.properties`` is a write-through dict (:class:`_PropsDict`): callers
that mutate ``node.properties`` in place (MTV updates, the deploy graph
store) hit the columns underneath, so algorithms, statistics, the
materializer, and the deploy backends run unchanged.  The object
implementation stays selectable as the differential oracle, mirroring
``Engine(columnar=False)``; ``tests/test_columnar_graph.py`` holds the
battery proving both backends bit-identical through the full pipeline.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DeploymentError, GraphError
from repro.graph.property_graph import ABSENT, PropertyGraph
from repro.vadalog.columnar import ValueInterner

__all__ = ["ColumnarPropertyGraph", "NodeView", "EdgeView"]

#: Typecode of every structural column (labels, rows, endpoints,
#: adjacency links, property codes): C ``int``, 4 bytes — half of
#: ``'q'``.  Interner codes and dense ids stay far below 2**31 (two
#: billion distinct values would exhaust memory long before the codes
#: overflow); if that ever changes, ``array('i')`` raises
#: ``OverflowError`` instead of silently wrapping.
_IDX = "i"
_IDX_BYTES = array(_IDX).itemsize
assert _IDX_BYTES == 4

#: Code for "property absent on this element" in table columns.
_ABSENT_CODE = -1

#: Label code for unlabeled elements (they still need a property table).
_NO_LABEL = -1


class _Table:
    """Property matrix of one label: member ids + one code column per name.

    ``rows`` holds nids (or eids) in insertion order — within one label
    that is exactly the object backend's label-bucket order.  Columns
    are aligned with ``rows`` and backfilled with :data:`_ABSENT_CODE`
    when a name first appears after rows already exist.
    """

    __slots__ = ("rows", "names", "name_index", "cols")

    def __init__(self) -> None:
        self.rows: List[int] = []
        self.names: List[str] = []
        self.name_index: Dict[str, int] = {}
        self.cols: List[array] = []

    def col(self, name: str) -> array:
        """Column for ``name``, created (and backfilled) on first use."""
        index = self.name_index.get(name)
        if index is None:
            index = len(self.names)
            self.name_index[name] = index
            self.names.append(name)
            column = array(_IDX, bytes(_IDX_BYTES * len(self.rows)))
            if self.rows:  # bytes() zero-fills; absent is -1
                for i in range(len(self.rows)):
                    column[i] = _ABSENT_CODE
            self.cols.append(column)
            return column
        return self.cols[index]

    def append_row(self, element: int) -> int:
        row = len(self.rows)
        self.rows.append(element)
        for column in self.cols:
            column.append(_ABSENT_CODE)
        return row

    def pop_row(self, element: int) -> None:
        """Drop the last row (rollback path; rows append in id order)."""
        assert self.rows and self.rows[-1] == element
        self.rows.pop()
        for column in self.cols:
            column.pop()

    def copy(self) -> "_Table":
        clone = _Table()
        clone.rows = list(self.rows)
        clone.names = list(self.names)
        clone.name_index = dict(self.name_index)
        clone.cols = [array(_IDX, column) for column in self.cols]
        return clone


class _OidIndex:
    """OID -> dense-id map backed by the interner plus sorted code arrays.

    A plain ``dict`` costs ~90 bytes per entry (hash, key pointer, boxed
    id) — at registry scale the two OID indexes were the largest
    columnar-graph allocation.  OIDs are already interned, and a graph
    assigns at most one live dense id per OID, so the map reduces to a
    pair of parallel ``array('i')`` buffers (interner code sorted
    ascending, dense id) probed with ``bisect``, ~8 bytes per entry.
    Recent inserts live in a small dict overlay that is merged into the
    sorted arrays geometrically — the same amortization as
    :class:`~repro.vadalog.columnar.ColumnarRelation`'s row table.

    Deleting tombstones the id slot (``-1``); re-adding the same OID
    reuses its code, landing back in the overlay or the tombstoned
    slot.  Lookup semantics follow the interner's exact codes, which
    match dict hashing for every OID family the oracle battery covers
    (``1``/``1.0`` share a slot either way); interning keys through the
    shared dictionary means an OID string stored by the graph and
    referenced by a relation is indexed once, not twice.
    """

    __slots__ = ("_interner", "_codes", "_ids", "_overlay", "_size")

    def __init__(self, interner: ValueInterner) -> None:
        self._interner = interner
        self._codes = array(_IDX)  # interner codes, sorted ascending
        self._ids = array(_IDX)  # parallel dense ids; -1 = deleted
        self._overlay: Dict[int, int] = {}  # code -> id since last merge
        self._size = 0

    def _slot(self, code: int) -> int:
        codes = self._codes
        pos = bisect_left(codes, code)
        if pos < len(codes) and codes[pos] == code:
            return pos
        return -1

    def get(self, oid: Any, default: Optional[int] = None) -> Optional[int]:
        code = self._interner.probe(oid)
        if code is None:
            return default
        dense = self._overlay.get(code)
        if dense is not None:
            return dense
        pos = self._slot(code)
        if pos >= 0:
            dense = self._ids[pos]
            if dense >= 0:
                return dense
        return default

    def __contains__(self, oid: Any) -> bool:
        return self.get(oid) is not None

    def __getitem__(self, oid: Any) -> int:
        dense = self.get(oid)
        if dense is None:
            raise KeyError(oid)
        return dense

    def __setitem__(self, oid: Any, dense: int) -> None:
        code = self._interner.encode(oid)
        overlay = self._overlay
        if code in overlay:
            overlay[code] = dense
            return
        pos = self._slot(code)
        if pos >= 0:
            if self._ids[pos] < 0:
                self._size += 1
            self._ids[pos] = dense
            return
        overlay[code] = dense
        self._size += 1
        if len(overlay) >= 1024 and 3 * len(overlay) >= len(self._codes):
            self._merge()

    def __delitem__(self, oid: Any) -> None:
        code = self._interner.probe(oid)
        if code is not None:
            if code in self._overlay:
                del self._overlay[code]
                self._size -= 1
                return
            pos = self._slot(code)
            if pos >= 0 and self._ids[pos] >= 0:
                self._ids[pos] = -1
                self._size -= 1
                return
        raise KeyError(oid)

    def pop(self, oid: Any, default: Optional[int] = None) -> Optional[int]:
        dense = self.get(oid)
        if dense is not None:
            del self[oid]
            return dense
        return default

    def __len__(self) -> int:
        return self._size

    def intersection(self, oids: Iterable[Any]) -> set:
        """The subset of ``oids`` present in the index (deduplicated)."""
        return {oid for oid in set(oids) if oid in self}

    def copy(self) -> "_OidIndex":
        clone = _OidIndex(self._interner)
        clone._codes = array(_IDX, self._codes)
        clone._ids = array(_IDX, self._ids)
        clone._overlay = dict(self._overlay)
        clone._size = self._size
        return clone

    def _merge(self) -> None:
        """Fold the overlay into the sorted arrays; drop tombstones.

        Overlay codes are never present in the sorted arrays (inserts
        probe the table first), so this is a duplicate-free two-pointer
        merge, O(table + overlay).
        """
        pairs = sorted(self._overlay.items())
        old_codes = self._codes
        old_ids = self._ids
        merged_codes = array(_IDX)
        merged_ids = array(_IDX)
        pos = 0
        total = len(old_codes)
        for code, dense in pairs:
            while pos < total and old_codes[pos] < code:
                if old_ids[pos] >= 0:
                    merged_codes.append(old_codes[pos])
                    merged_ids.append(old_ids[pos])
                pos += 1
            merged_codes.append(code)
            merged_ids.append(dense)
        while pos < total:
            if old_ids[pos] >= 0:
                merged_codes.append(old_codes[pos])
                merged_ids.append(old_ids[pos])
            pos += 1
        self._codes = merged_codes
        self._ids = merged_ids
        self._overlay = {}


class _PropsDict(dict):
    """A node/edge properties dict that writes through to the columns.

    Materialized lazily from the element's table row; every mutator
    updates both the dict (so reads and ``==`` keep plain-dict
    semantics) and the backing column, so ``node.properties[k] = v``
    behaves exactly as it does on the object backend, where the dict
    *is* the storage.
    """

    __slots__ = ("_graph", "_table", "_row")

    def __init__(self, graph: "ColumnarPropertyGraph", table: _Table,
                 row: int, contents: Dict[str, Any]):
        super().__init__(contents)
        self._graph = graph
        self._table = table
        self._row = row

    def __setitem__(self, name: str, value: Any) -> None:
        self._table.col(name)[self._row] = self._graph._encode(value)
        super().__setitem__(name, value)

    def __delitem__(self, name: str) -> None:
        super().__delitem__(name)  # raises KeyError before touching columns
        self._table.col(name)[self._row] = _ABSENT_CODE

    def pop(self, name, *default):
        if name in self:
            value = super().pop(name)
            self._table.col(name)[self._row] = _ABSENT_CODE
            return value
        if default:
            return default[0]
        raise KeyError(name)

    def popitem(self):
        name, value = super().popitem()
        self._table.col(name)[self._row] = _ABSENT_CODE
        return name, value

    def clear(self) -> None:
        row = self._row
        for name in self:
            self._table.col(name)[row] = _ABSENT_CODE
        super().clear()

    def update(self, *args, **kwargs) -> None:
        merged = dict(*args, **kwargs)
        encode = self._graph._encode
        row = self._row
        for name, value in merged.items():
            self._table.col(name)[row] = encode(value)
        super().update(merged)

    def setdefault(self, name, default=None):
        if name in self:
            return self[name]
        self[name] = default
        return default


class NodeView:
    """Lazy node facade over the columns; API-compatible with ``Node``.

    Equality and hashing follow the frozen dataclass convention of the
    object backend: identity is ``(id, label)``, properties excluded.
    """

    __slots__ = ("_graph", "_nid", "_props")

    def __init__(self, graph: "ColumnarPropertyGraph", nid: int):
        self._graph = graph
        self._nid = nid
        self._props: Optional[_PropsDict] = None

    @property
    def id(self) -> Any:
        return self._graph._node_oids[self._nid]

    @property
    def label(self) -> Optional[str]:
        code = self._graph._node_label[self._nid]
        return None if code == _NO_LABEL else self._graph._labels[code]

    @property
    def properties(self) -> Dict[str, Any]:
        props = self._props
        if props is None:
            props = self._props = self._graph._node_props(self._nid)
        return props

    def get(self, name: str, default: Any = None) -> Any:
        return self.properties.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.properties[name]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, NodeView):
            return self.id == other.id and self.label == other.label
        if hasattr(other, "id") and hasattr(other, "label"):
            return self.id == other.id and self.label == other.label
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.id, self.label))

    def __repr__(self) -> str:
        return f"NodeView(id={self.id!r}, label={self.label!r})"


class EdgeView:
    """Lazy edge facade over the columns; API-compatible with ``Edge``."""

    __slots__ = ("_graph", "_eid", "_props")

    def __init__(self, graph: "ColumnarPropertyGraph", eid: int):
        self._graph = graph
        self._eid = eid
        self._props: Optional[_PropsDict] = None

    @property
    def id(self) -> Any:
        return self._graph._edge_oids[self._eid]

    @property
    def source(self) -> Any:
        return self._graph._node_oids[self._graph._edge_src[self._eid]]

    @property
    def target(self) -> Any:
        return self._graph._node_oids[self._graph._edge_dst[self._eid]]

    @property
    def label(self) -> Optional[str]:
        code = self._graph._edge_label[self._eid]
        return None if code == _NO_LABEL else self._graph._labels[code]

    @property
    def properties(self) -> Dict[str, Any]:
        props = self._props
        if props is None:
            props = self._props = self._graph._edge_props(self._eid)
        return props

    def get(self, name: str, default: Any = None) -> Any:
        return self.properties.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.properties[name]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, EdgeView):
            return self.id == other.id and self.label == other.label
        if hasattr(other, "id") and hasattr(other, "label"):
            return self.id == other.id and self.label == other.label
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.id, self.label))

    def __repr__(self) -> str:
        return (
            f"EdgeView(id={self.id!r}, {self.source!r}->{self.target!r}, "
            f"label={self.label!r})"
        )


class ColumnarPropertyGraph:
    """Column-backed mutable property graph, API-parallel to
    :class:`~repro.graph.property_graph.PropertyGraph`."""

    def __init__(self, name: str = "graph",
                 interner: Optional[ValueInterner] = None):
        self.name = name
        self._interner = interner if interner is not None else ValueInterner()
        self._boxed: List[Any] = []  # unhashable values; code = -2 - index
        # Label dictionary (shared by nodes and edges).
        self._labels: List[str] = []
        self._label_index: Dict[str, int] = {}
        # Node store.
        self._node_oids: List[Any] = []
        self._node_index = _OidIndex(self._interner)
        self._node_label = array(_IDX)
        self._node_live = bytearray()
        self._node_dead = 0
        self._node_row = array(_IDX)
        self._node_tables: Dict[int, _Table] = {}
        self._node_label_count: Dict[int, int] = {}
        # Edge store (incidence function mu as two nid columns).
        self._edge_oids: List[Any] = []
        self._edge_index = _OidIndex(self._interner)
        self._edge_label = array(_IDX)
        self._edge_live = bytearray()
        self._edge_dead = 0
        self._edge_row = array(_IDX)
        self._edge_src = array(_IDX)
        self._edge_dst = array(_IDX)
        self._edge_tables: Dict[int, _Table] = {}
        self._edge_label_count: Dict[int, int] = {}
        # Adjacency: per-node head/tail into per-edge next/prev chains.
        self._out_head = array(_IDX)
        self._out_tail = array(_IDX)
        self._out_deg = array(_IDX)
        self._in_head = array(_IDX)
        self._in_tail = array(_IDX)
        self._in_deg = array(_IDX)
        self._out_next = array(_IDX)
        self._out_prev = array(_IDX)
        self._in_next = array(_IDX)
        self._in_prev = array(_IDX)
        self._auto_id = 1
        self._mutation_epoch = 0

    # ------------------------------------------------------------------
    # Value and label encoding
    # ------------------------------------------------------------------
    @property
    def interner(self) -> ValueInterner:
        """The graph's value dictionary.  Append-only, so it is safe to
        share with an extraction :class:`~repro.vadalog.database.Database`
        (values present on either side are then stored once)."""
        return self._interner

    def _encode(self, value: Any) -> int:
        try:
            return self._interner.encode(value)
        except TypeError:  # unhashable value: box it, no dedup
            self._boxed.append(value)
            return -2 - (len(self._boxed) - 1)

    def _decode(self, code: int) -> Any:
        if code >= 0:
            return self._interner.values[code]
        return self._boxed[-2 - code]

    def _label_code(self, label: Optional[str]) -> int:
        if label is None:
            return _NO_LABEL
        code = self._label_index.get(label)
        if code is None:
            code = len(self._labels)
            self._label_index[label] = code
            self._labels.append(label)
        return code

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: Any = None,
        label: Optional[str] = None,
        **properties: Any,
    ) -> NodeView:
        """Add a node and return its view (same contract as the oracle)."""
        if node_id is None:
            node_id = self._fresh_id("n")
        if node_id in self._node_index:
            raise GraphError(f"node {node_id!r} already exists in {self.name!r}")
        nid = self._append_node(node_id, self._label_code(label), properties)
        return NodeView(self, nid)

    def _append_node(self, node_id: Any, label_code: int,
                     properties: Dict[str, Any]) -> int:
        nid = len(self._node_oids)
        self._node_oids.append(node_id)
        self._node_index[node_id] = nid
        self._node_label.append(label_code)
        self._node_live.append(1)
        self._out_head.append(-1)
        self._out_tail.append(-1)
        self._out_deg.append(0)
        self._in_head.append(-1)
        self._in_tail.append(-1)
        self._in_deg.append(0)
        table = self._node_tables.get(label_code)
        if table is None:
            table = self._node_tables[label_code] = _Table()
        row = table.append_row(nid)
        self._node_row.append(row)
        self._node_label_count[label_code] = (
            self._node_label_count.get(label_code, 0) + 1
        )
        if properties:
            encode = self._encode
            for prop_name, value in properties.items():
                table.col(prop_name)[row] = encode(value)
        return nid

    def add_edge(
        self,
        source: Any,
        target: Any,
        label: Optional[str] = None,
        edge_id: Any = None,
        **properties: Any,
    ) -> EdgeView:
        """Add a directed edge ``source -> target`` and return its view."""
        src = self._node_index.get(source)
        if src is None:
            raise GraphError(f"unknown source node {source!r} in {self.name!r}")
        dst = self._node_index.get(target)
        if dst is None:
            raise GraphError(f"unknown target node {target!r} in {self.name!r}")
        if edge_id is None:
            edge_id = self._fresh_id("e")
        if edge_id in self._edge_index:
            raise GraphError(f"edge {edge_id!r} already exists in {self.name!r}")
        eid = self._append_edge(edge_id, src, dst, self._label_code(label),
                                properties)
        return EdgeView(self, eid)

    def _append_edge(self, edge_id: Any, src: int, dst: int,
                     label_code: int, properties: Dict[str, Any]) -> int:
        eid = len(self._edge_oids)
        self._edge_oids.append(edge_id)
        self._edge_index[edge_id] = eid
        self._edge_label.append(label_code)
        self._edge_live.append(1)
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        # Tail-append into both chains keeps insertion-order iteration.
        tail = self._out_tail[src]
        self._out_next.append(-1)
        self._out_prev.append(tail)
        if tail == -1:
            self._out_head[src] = eid
        else:
            self._out_next[tail] = eid
        self._out_tail[src] = eid
        self._out_deg[src] += 1
        tail = self._in_tail[dst]
        self._in_next.append(-1)
        self._in_prev.append(tail)
        if tail == -1:
            self._in_head[dst] = eid
        else:
            self._in_next[tail] = eid
        self._in_tail[dst] = eid
        self._in_deg[dst] += 1
        table = self._edge_tables.get(label_code)
        if table is None:
            table = self._edge_tables[label_code] = _Table()
        row = table.append_row(eid)
        self._edge_row.append(row)
        self._edge_label_count[label_code] = (
            self._edge_label_count.get(label_code, 0) + 1
        )
        if properties:
            encode = self._encode
            for prop_name, value in properties.items():
                table.col(prop_name)[row] = encode(value)
        return eid

    def _fresh_id(self, prefix: str) -> str:
        while True:
            candidate = f"{prefix}{self._auto_id}"
            self._auto_id += 1
            if (candidate not in self._node_index
                    and candidate not in self._edge_index):
                return candidate

    # ------------------------------------------------------------------
    # Insertion marks (structural savepoints)
    # ------------------------------------------------------------------
    def insertion_mark(self) -> Tuple[int, int, int]:
        """Capture an allocation watermark; same contract as the oracle.

        The mark is only valid while every mutation since it is an
        insertion; the embedded epoch makes that checked, not trusted
        (deletions bump :attr:`_mutation_epoch`).  Rollback truncates
        the append-only arrays back to the watermark, so it is O(undone)
        like the oracle's popitem loop.
        """
        return (len(self._node_oids), len(self._edge_oids),
                self._mutation_epoch)

    def rollback_to_mark(self, mark: Tuple[int, int, int]) -> int:
        node_mark, edge_mark, epoch = mark
        if epoch != self._mutation_epoch:
            raise DeploymentError(
                f"stale insertion mark for graph {self.name!r}: "
                f"{self._mutation_epoch - epoch} deletion(s) interleaved "
                f"since the mark was taken; a structural rollback would "
                f"remove the wrong elements (use an undo-log transaction "
                f"when deletions can occur)"
            )
        undone = 0
        while len(self._edge_oids) > edge_mark:
            eid = len(self._edge_oids) - 1
            self._unlink_edge(eid)
            label_code = self._edge_label[eid]
            self._edge_tables[label_code].pop_row(eid)
            self._edge_label_count[label_code] -= 1
            del self._edge_index[self._edge_oids[eid]]
            self._edge_oids.pop()
            self._edge_label.pop()
            self._edge_live.pop()
            self._edge_row.pop()
            self._edge_src.pop()
            self._edge_dst.pop()
            self._out_next.pop()
            self._out_prev.pop()
            self._in_next.pop()
            self._in_prev.pop()
            undone += 1
        while len(self._node_oids) > node_mark:
            nid = len(self._node_oids) - 1
            label_code = self._node_label[nid]
            self._node_tables[label_code].pop_row(nid)
            self._node_label_count[label_code] -= 1
            del self._node_index[self._node_oids[nid]]
            self._node_oids.pop()
            self._node_label.pop()
            self._node_live.pop()
            self._node_row.pop()
            self._out_head.pop()
            self._out_tail.pop()
            self._out_deg.pop()
            self._in_head.pop()
            self._in_tail.pop()
            self._in_deg.pop()
            undone += 1
        return undone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_node_property(self, node_id: Any, name: str, value: Any) -> None:
        nid = self._require_node(node_id)
        table = self._node_tables[self._node_label[nid]]
        table.col(name)[self._node_row[nid]] = self._encode(value)

    def set_edge_property(self, edge_id: Any, name: str, value: Any) -> None:
        eid = self._require_edge(edge_id)
        table = self._edge_tables[self._edge_label[eid]]
        table.col(name)[self._edge_row[eid]] = self._encode(value)

    def _unlink_edge(self, eid: int) -> None:
        src, dst = self._edge_src[eid], self._edge_dst[eid]
        prev_eid, next_eid = self._out_prev[eid], self._out_next[eid]
        if prev_eid == -1:
            self._out_head[src] = next_eid
        else:
            self._out_next[prev_eid] = next_eid
        if next_eid == -1:
            self._out_tail[src] = prev_eid
        else:
            self._out_prev[next_eid] = prev_eid
        self._out_deg[src] -= 1
        prev_eid, next_eid = self._in_prev[eid], self._in_next[eid]
        if prev_eid == -1:
            self._in_head[dst] = next_eid
        else:
            self._in_next[prev_eid] = next_eid
        if next_eid == -1:
            self._in_tail[dst] = prev_eid
        else:
            self._in_prev[next_eid] = prev_eid
        self._in_deg[dst] -= 1

    def remove_edge(self, edge_id: Any) -> None:
        eid = self._edge_index.pop(edge_id, None)
        if eid is None:
            raise GraphError(f"unknown edge {edge_id!r} in {self.name!r}")
        self._mutation_epoch += 1
        self._unlink_edge(eid)
        self._edge_live[eid] = 0
        self._edge_dead += 1
        self._edge_label_count[self._edge_label[eid]] -= 1

    def remove_node(self, node_id: Any) -> None:
        nid = self._node_index.get(node_id)
        if nid is None:
            raise GraphError(f"unknown node {node_id!r} in {self.name!r}")
        incident = []
        eid = self._out_head[nid]
        while eid != -1:
            incident.append(eid)
            eid = self._out_next[eid]
        eid = self._in_head[nid]
        while eid != -1:
            incident.append(eid)
            eid = self._in_next[eid]
        edge_oids = self._edge_oids
        for eid in incident:
            if self._edge_live[eid]:
                self.remove_edge(edge_oids[eid])
        self._mutation_epoch += 1
        del self._node_index[node_id]
        self._node_live[nid] = 0
        self._node_dead += 1
        self._node_label_count[self._node_label[nid]] -= 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _require_node(self, node_id: Any) -> int:
        nid = self._node_index.get(node_id)
        if nid is None:
            raise GraphError(f"unknown node {node_id!r} in {self.name!r}")
        return nid

    def _require_edge(self, edge_id: Any) -> int:
        eid = self._edge_index.get(edge_id)
        if eid is None:
            raise GraphError(f"unknown edge {edge_id!r} in {self.name!r}")
        return eid

    def _node_props(self, nid: int) -> _PropsDict:
        table = self._node_tables[self._node_label[nid]]
        row = self._node_row[nid]
        decode = self._decode
        contents = {
            name: decode(column[row])
            for name, column in zip(table.names, table.cols)
            if column[row] != _ABSENT_CODE
        }
        return _PropsDict(self, table, row, contents)

    def _edge_props(self, eid: int) -> _PropsDict:
        table = self._edge_tables[self._edge_label[eid]]
        row = self._edge_row[eid]
        decode = self._decode
        contents = {
            name: decode(column[row])
            for name, column in zip(table.names, table.cols)
            if column[row] != _ABSENT_CODE
        }
        return _PropsDict(self, table, row, contents)

    def node(self, node_id: Any) -> NodeView:
        return NodeView(self, self._require_node(node_id))

    def edge(self, edge_id: Any) -> EdgeView:
        return EdgeView(self, self._require_edge(edge_id))

    def has_node(self, node_id: Any) -> bool:
        return node_id in self._node_index

    def has_edge(self, edge_id: Any) -> bool:
        return edge_id in self._edge_index

    def nodes(self, label: Optional[str] = None) -> Iterator[NodeView]:
        if label is None:
            live = self._node_live
            for nid in range(len(self._node_oids)):
                if live[nid]:
                    yield NodeView(self, nid)
        else:
            code = self._label_index.get(label)
            table = self._node_tables.get(code) if code is not None else None
            if table is None:
                return
            live = self._node_live
            for nid in table.rows:
                if live[nid]:
                    yield NodeView(self, nid)

    def edges(self, label: Optional[str] = None) -> Iterator[EdgeView]:
        if label is None:
            live = self._edge_live
            for eid in range(len(self._edge_oids)):
                if live[eid]:
                    yield EdgeView(self, eid)
        else:
            code = self._label_index.get(label)
            table = self._edge_tables.get(code) if code is not None else None
            if table is None:
                return
            live = self._edge_live
            for eid in table.rows:
                if live[eid]:
                    yield EdgeView(self, eid)

    def out_edges(self, node_id: Any,
                  label: Optional[str] = None) -> Iterator[EdgeView]:
        nid = self._node_index.get(node_id)
        if nid is None:
            return
        code = None if label is None else self._label_index.get(label)
        if label is not None and code is None:
            return
        labels = self._edge_label
        eid = self._out_head[nid]
        while eid != -1:
            if label is None or labels[eid] == code:
                yield EdgeView(self, eid)
            eid = self._out_next[eid]

    def in_edges(self, node_id: Any,
                 label: Optional[str] = None) -> Iterator[EdgeView]:
        nid = self._node_index.get(node_id)
        if nid is None:
            return
        code = None if label is None else self._label_index.get(label)
        if label is not None and code is None:
            return
        labels = self._edge_label
        eid = self._in_head[nid]
        while eid != -1:
            if label is None or labels[eid] == code:
                yield EdgeView(self, eid)
            eid = self._in_next[eid]

    def successors(self, node_id: Any,
                   label: Optional[str] = None) -> Iterator[NodeView]:
        for edge in self.out_edges(node_id, label):
            yield NodeView(self, self._edge_dst[edge._eid])

    def predecessors(self, node_id: Any,
                     label: Optional[str] = None) -> Iterator[NodeView]:
        for edge in self.in_edges(node_id, label):
            yield NodeView(self, self._edge_src[edge._eid])

    def node_labels(self) -> Tuple[str, ...]:
        """Sorted tuple of node labels in use (deterministic iteration)."""
        return tuple(sorted(
            self._labels[code]
            for code, count in self._node_label_count.items()
            if count and code != _NO_LABEL
        ))

    def edge_labels(self) -> Tuple[str, ...]:
        """Sorted tuple of edge labels in use (deterministic iteration)."""
        return tuple(sorted(
            self._labels[code]
            for code, count in self._edge_label_count.items()
            if count and code != _NO_LABEL
        ))

    def out_degree(self, node_id: Any) -> int:
        nid = self._node_index.get(node_id)
        return 0 if nid is None else self._out_deg[nid]

    def in_degree(self, node_id: Any) -> int:
        nid = self._node_index.get(node_id)
        return 0 if nid is None else self._in_deg[nid]

    @property
    def node_count(self) -> int:
        return len(self._node_index)

    @property
    def edge_count(self) -> int:
        return len(self._edge_index)

    def __len__(self) -> int:
        return len(self._node_index)

    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._node_index

    def __repr__(self) -> str:
        return (
            f"ColumnarPropertyGraph({self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # Search (columnar exact-match probe; oracle scans the dicts)
    # ------------------------------------------------------------------
    def _probe_plan(self, table: _Table,
                    properties: Dict[str, Any]) -> Optional[Tuple[bool, List[Tuple[array, int, bool]]]]:
        """Compile property constraints to ``(column, eq_code, match_absent)``.

        Returns ``(feasible, plan)``, or None when the columnar probe
        cannot answer — a NaN or unhashable search value, where Python
        ``==`` and code equality diverge — and the caller must fall back
        to the per-object scan.
        """
        plan: List[Tuple[array, int, bool]] = []
        for name, value in properties.items():
            try:
                if value != value:  # NaN: == semantics unreachable by code
                    return None
                eq_code = self._interner.probe_eq(value)
            except TypeError:
                return None
            index = table.name_index.get(name)
            # ``properties.get(k) == None`` also matches an absent
            # property, exactly like the per-object oracle.
            match_absent = value is None
            if index is None:
                if match_absent:
                    continue  # column never written: every row matches
                return False, []  # no row can carry this name
            if eq_code is None and not match_absent:
                return False, []  # value never interned: nothing matches
            plan.append((table.cols[index],
                         -2 if eq_code is None else eq_code, match_absent))
        return True, plan

    def _probe_rows(self, table: _Table, live: bytearray,
                    plan: List[Tuple[array, int, bool]]) -> Iterator[int]:
        eq = self._interner.eq
        for position, element in enumerate(table.rows):
            if not live[element]:
                continue
            for column, eq_code, match_absent in plan:
                code = column[position]
                if code == _ABSENT_CODE:
                    if not match_absent:
                        break
                elif code < _ABSENT_CODE:  # boxed: unhashable, not ==-able here
                    break
                elif eq[code] != eq_code and not (
                    match_absent and self._interner.values[code] is None
                ):
                    break
            else:
                yield element

    def find_nodes(self, label: Optional[str] = None,
                   **properties: Any) -> Iterator[NodeView]:
        """Iterate nodes matching a label and exact property values.

        With a label, matching runs as an interned-code probe over that
        label's property matrix (no per-node dict is materialized); the
        label-less form and the NaN/unhashable corner cases fall back to
        the oracle's semantics via the views.
        """
        if label is not None:
            code = self._label_index.get(label)
            table = self._node_tables.get(code) if code is not None else None
            if table is None:
                return
            compiled = self._probe_plan(table, properties)
            if compiled is not None:
                feasible, plan = compiled
                if feasible:
                    for nid in self._probe_rows(table, self._node_live, plan):
                        yield NodeView(self, nid)
                return
        for node in self.nodes(label):
            if all(node.properties.get(k) == v for k, v in properties.items()):
                yield node

    def find_edges(
        self,
        label: Optional[str] = None,
        source: Any = None,
        target: Any = None,
        **properties: Any,
    ) -> Iterator[EdgeView]:
        """Iterate edges matching label, endpoints, and properties."""
        if source is None and target is None and label is not None:
            code = self._label_index.get(label)
            table = self._edge_tables.get(code) if code is not None else None
            if table is None:
                return
            compiled = self._probe_plan(table, properties)
            if compiled is not None:
                feasible, plan = compiled
                if feasible:
                    for eid in self._probe_rows(table, self._edge_live, plan):
                        yield EdgeView(self, eid)
                return
        if source is not None:
            candidates: Iterable[EdgeView] = self.out_edges(source, label)
        elif target is not None:
            candidates = self.in_edges(target, label)
        else:
            candidates = self.edges(label)
        for edge in candidates:
            if target is not None and edge.target != target:
                continue
            if source is not None and edge.source != source:
                continue
            if all(edge.properties.get(k) == v for k, v in properties.items()):
                yield edge

    # ------------------------------------------------------------------
    # Whole-graph accessors
    # ------------------------------------------------------------------
    def degrees(self) -> Dict[Any, Tuple[int, int]]:
        """Return ``{node_id: (in_degree, out_degree)}`` in one pass."""
        oids = self._node_oids
        live = self._node_live
        in_deg, out_deg = self._in_deg, self._out_deg
        return {
            oids[nid]: (in_deg[nid], out_deg[nid])
            for nid in range(len(oids))
            if live[nid]
        }

    def adjacency(self, label: Optional[str] = None) -> Dict[Any, List[Any]]:
        """Return ``{node_id: [successor ids]}`` in one edge pass."""
        oids = self._node_oids
        node_live = self._node_live
        adj: Dict[Any, List[Any]] = {
            oids[nid]: []
            for nid in range(len(oids))
            if node_live[nid]
        }
        src, dst = self._edge_src, self._edge_dst
        if label is None:
            live = self._edge_live
            for eid in range(len(self._edge_oids)):
                if live[eid]:
                    adj[oids[src[eid]]].append(oids[dst[eid]])
        else:
            code = self._label_index.get(label)
            table = self._edge_tables.get(code) if code is not None else None
            if table is not None:
                live = self._edge_live
                for eid in table.rows:
                    if live[eid]:
                        adj[oids[src[eid]]].append(oids[dst[eid]])
        return adj

    # ------------------------------------------------------------------
    # Bulk (columnar) accessors — columns in, columns out
    # ------------------------------------------------------------------
    def _live_table_rows(self, table: _Table, live: bytearray,
                         dead: int) -> Tuple[List[int], Optional[List[int]]]:
        """``(elements, positions)``; positions is None when all rows live."""
        rows = table.rows
        if not dead or all(live[element] for element in rows):
            return rows, None
        elements, positions = [], []
        for position, element in enumerate(rows):
            if live[element]:
                elements.append(element)
                positions.append(position)
        return elements, positions

    def _decode_column(self, column: array,
                       positions: Optional[List[int]], default: Any) -> List[Any]:
        values = self._interner.values
        boxed = self._boxed
        cells = column if positions is None else [column[p] for p in positions]
        return [
            values[code] if code >= 0
            else (default if code == _ABSENT_CODE else boxed[-2 - code])
            for code in cells
        ]

    def nodes_table(
        self,
        label: str,
        names: Iterable[str] = (),
        default: Any = None,
    ) -> Tuple[List[Any], List[List[Any]]]:
        """Return ``(ids, columns)`` for every node with ``label``.

        This is the zero-object read path: values decode column-wise
        straight from the property matrix, no view or dict per node.
        """
        names = list(names)
        code = self._label_index.get(label)
        table = self._node_tables.get(code) if code is not None else None
        if table is None or not table.rows:
            return [], [[] for _ in names]
        elements, positions = self._live_table_rows(
            table, self._node_live, self._node_dead
        )
        if not elements:
            return [], [[] for _ in names]
        oids = self._node_oids
        ids = [oids[nid] for nid in elements]
        columns = []
        for name in names:
            index = table.name_index.get(name)
            if index is None:
                columns.append([default] * len(ids))
            else:
                columns.append(
                    self._decode_column(table.cols[index], positions, default)
                )
        return ids, columns

    def edges_table(
        self,
        label: str,
        names: Iterable[str] = (),
        default: Any = None,
    ) -> Tuple[List[Any], List[Any], List[Any], List[List[Any]]]:
        """Return ``(ids, sources, targets, columns)`` for ``label`` edges."""
        names = list(names)
        code = self._label_index.get(label)
        table = self._edge_tables.get(code) if code is not None else None
        if table is None or not table.rows:
            return [], [], [], [[] for _ in names]
        elements, positions = self._live_table_rows(
            table, self._edge_live, self._edge_dead
        )
        if not elements:
            return [], [], [], [[] for _ in names]
        oids = self._node_oids
        edge_oids = self._edge_oids
        src, dst = self._edge_src, self._edge_dst
        ids = [edge_oids[eid] for eid in elements]
        sources = [oids[src[eid]] for eid in elements]
        targets = [oids[dst[eid]] for eid in elements]
        columns = []
        for name in names:
            index = table.name_index.get(name)
            if index is None:
                columns.append([default] * len(ids))
            else:
                columns.append(
                    self._decode_column(table.cols[index], positions, default)
                )
        return ids, sources, targets, columns

    def _encode_into(self, table: _Table, base_row: int, count: int,
                     names: Tuple[str, ...], columns: Iterable[List[Any]],
                     constants: Optional[Dict[str, Any]],
                     keep_none: bool) -> None:
        encode = self._encode
        for name, column_values in zip(names, columns):
            column = table.col(name)
            if keep_none:
                for offset, value in enumerate(column_values):
                    column[base_row + offset] = encode(value)
            else:
                for offset, value in enumerate(column_values):
                    if value is not None:
                        column[base_row + offset] = encode(value)
        if constants:
            for name, value in constants.items():
                column = table.col(name)
                code = encode(value)
                for offset in range(count):
                    column[base_row + offset] = code

    def add_nodes_bulk(
        self,
        label: Optional[str],
        ids: List[Any],
        names: Tuple[str, ...] = (),
        columns: Iterable[List[Any]] = (),
        constants: Optional[Dict[str, Any]] = None,
        keep_none: bool = False,
    ) -> None:
        """Add many nodes with one shared label in a single column pass."""
        if not ids:
            return
        index = self._node_index
        seen = set(ids)
        clash = index.intersection(seen)
        if clash:
            bad = sorted(clash, key=str)[0]
            raise GraphError(f"node {bad!r} already exists in {self.name!r}")
        if len(seen) != len(ids):
            dup = [i for i in ids if ids.count(i) > 1]
            raise GraphError(
                f"duplicate node OID {dup[0]!r} in bulk add to {self.name!r}"
            )
        count = len(ids)
        base_nid = len(self._node_oids)
        label_code = self._label_code(label)
        self._node_oids.extend(ids)
        for offset, node_id in enumerate(ids):
            index[node_id] = base_nid + offset
        self._node_label.extend([label_code] * count)
        self._node_live.extend(b"\x01" * count)
        minus_ones = array(_IDX, [-1]) * count
        zeros = array(_IDX, bytes(_IDX_BYTES * count))
        self._out_head.extend(minus_ones)
        self._out_tail.extend(minus_ones)
        self._out_deg.extend(zeros)
        self._in_head.extend(minus_ones)
        self._in_tail.extend(minus_ones)
        self._in_deg.extend(zeros)
        table = self._node_tables.get(label_code)
        if table is None:
            table = self._node_tables[label_code] = _Table()
        base_row = len(table.rows)
        table.rows.extend(range(base_nid, base_nid + count))
        absent = array(_IDX, [_ABSENT_CODE]) * count
        for column in table.cols:
            column.extend(absent)
        self._node_row.extend(range(base_row, base_row + count))
        self._node_label_count[label_code] = (
            self._node_label_count.get(label_code, 0) + count
        )
        self._encode_into(table, base_row, count, tuple(names), columns,
                          constants, keep_none)

    def add_edges_bulk(
        self,
        label: Optional[str],
        ids: List[Any],
        sources: List[Any],
        targets: List[Any],
        names: Tuple[str, ...] = (),
        columns: Iterable[List[Any]] = (),
        constants: Optional[Dict[str, Any]] = None,
        keep_none: bool = False,
    ) -> None:
        """Add many edges with one shared label in a single column pass."""
        if not ids:
            return
        index = self._edge_index
        node_index = self._node_index
        missing = {
            oid for oid in set(sources).union(targets)
            if oid not in node_index
        }
        if missing:
            bad = sorted(missing, key=str)[0]
            raise GraphError(f"unknown source node {bad!r} in {self.name!r}")
        seen = set(ids)
        clash = index.intersection(seen)
        if clash:
            bad = sorted(clash, key=str)[0]
            raise GraphError(f"edge {bad!r} already exists in {self.name!r}")
        if len(seen) != len(ids):
            dup = [i for i in ids if ids.count(i) > 1]
            raise GraphError(
                f"duplicate edge OID {dup[0]!r} in bulk add to {self.name!r}"
            )
        count = len(ids)
        base_eid = len(self._edge_oids)
        label_code = self._label_code(label)
        self._edge_oids.extend(ids)
        for offset, edge_id in enumerate(ids):
            index[edge_id] = base_eid + offset
        self._edge_label.extend([label_code] * count)
        self._edge_live.extend(b"\x01" * count)
        src_nids = array(_IDX, [node_index[source] for source in sources])
        dst_nids = array(_IDX, [node_index[target] for target in targets])
        self._edge_src.extend(src_nids)
        self._edge_dst.extend(dst_nids)
        out_next, out_prev = self._out_next, self._out_prev
        in_next, in_prev = self._in_next, self._in_prev
        out_head, out_tail = self._out_head, self._out_tail
        in_head, in_tail = self._in_head, self._in_tail
        out_deg, in_deg = self._out_deg, self._in_deg
        for offset in range(count):
            eid = base_eid + offset
            src = src_nids[offset]
            tail = out_tail[src]
            out_next.append(-1)
            out_prev.append(tail)
            if tail == -1:
                out_head[src] = eid
            else:
                out_next[tail] = eid
            out_tail[src] = eid
            out_deg[src] += 1
            dst = dst_nids[offset]
            tail = in_tail[dst]
            in_next.append(-1)
            in_prev.append(tail)
            if tail == -1:
                in_head[dst] = eid
            else:
                in_next[tail] = eid
            in_tail[dst] = eid
            in_deg[dst] += 1
        table = self._edge_tables.get(label_code)
        if table is None:
            table = self._edge_tables[label_code] = _Table()
        base_row = len(table.rows)
        table.rows.extend(range(base_eid, base_eid + count))
        absent = array(_IDX, [_ABSENT_CODE]) * count
        for column in table.cols:
            column.extend(absent)
        self._edge_row.extend(range(base_row, base_row + count))
        self._edge_label_count[label_code] = (
            self._edge_label_count.get(label_code, 0) + count
        )
        self._encode_into(table, base_row, count, tuple(names), columns,
                          constants, keep_none)

    def existing_node_ids(self, ids: Iterable[Any]) -> set:
        return self._node_index.intersection(ids)

    def existing_edge_ids(self, ids: Iterable[Any]) -> set:
        return self._edge_index.intersection(ids)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "ColumnarPropertyGraph":
        """Structural copy sharing the (append-only) interner."""
        clone = ColumnarPropertyGraph(name or self.name,
                                      interner=self._interner)
        clone._boxed = self._boxed  # append-only, codes stay valid
        clone._labels = list(self._labels)
        clone._label_index = dict(self._label_index)
        clone._node_oids = list(self._node_oids)
        clone._node_index = self._node_index.copy()
        clone._node_label = array(_IDX, self._node_label)
        clone._node_live = bytearray(self._node_live)
        clone._node_dead = self._node_dead
        clone._node_row = array(_IDX, self._node_row)
        clone._node_tables = {
            code: table.copy() for code, table in self._node_tables.items()
        }
        clone._node_label_count = dict(self._node_label_count)
        clone._edge_oids = list(self._edge_oids)
        clone._edge_index = self._edge_index.copy()
        clone._edge_label = array(_IDX, self._edge_label)
        clone._edge_live = bytearray(self._edge_live)
        clone._edge_dead = self._edge_dead
        clone._edge_row = array(_IDX, self._edge_row)
        clone._edge_src = array(_IDX, self._edge_src)
        clone._edge_dst = array(_IDX, self._edge_dst)
        clone._edge_tables = {
            code: table.copy() for code, table in self._edge_tables.items()
        }
        clone._edge_label_count = dict(self._edge_label_count)
        clone._out_head = array(_IDX, self._out_head)
        clone._out_tail = array(_IDX, self._out_tail)
        clone._out_deg = array(_IDX, self._out_deg)
        clone._in_head = array(_IDX, self._in_head)
        clone._in_tail = array(_IDX, self._in_tail)
        clone._in_deg = array(_IDX, self._in_deg)
        clone._out_next = array(_IDX, self._out_next)
        clone._out_prev = array(_IDX, self._out_prev)
        clone._in_next = array(_IDX, self._in_next)
        clone._in_prev = array(_IDX, self._in_prev)
        clone._auto_id = self._auto_id
        clone._mutation_epoch = self._mutation_epoch
        return clone

    def to_object_graph(self, name: Optional[str] = None) -> PropertyGraph:
        """Materialize an object-backed twin (differential harnesses)."""
        graph = PropertyGraph(name or self.name)
        for node in self.nodes():
            graph.add_node(node.id, node.label, **node.properties)
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target, edge.label,
                           edge_id=edge.id, **edge.properties)
        return graph

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` for analysis interop."""
        import networkx as nx

        nxg = nx.MultiDiGraph(name=self.name)
        for node in self.nodes():
            nxg.add_node(node.id, label=node.label, **node.properties)
        for edge in self.edges():
            nxg.add_edge(edge.source, edge.target, key=edge.id,
                         label=edge.label, **edge.properties)
        return nxg

    @classmethod
    def from_networkx(cls, nxg, name: Optional[str] = None) -> "ColumnarPropertyGraph":
        """Build a columnar property graph from a NetworkX digraph."""
        graph = cls(name or getattr(nxg, "name", "graph") or "graph")
        for node_id, data in nxg.nodes(data=True):
            attrs = dict(data)
            label = attrs.pop("label", None)
            graph.add_node(node_id, label, **attrs)
        for source, target, data in nxg.edges(data=True):
            attrs = dict(data)
            label = attrs.pop("label", None)
            attrs.pop("key", None)
            graph.add_edge(source, target, label, **attrs)
        return graph
