"""Discrete power-law fitting for degree distributions.

Section 2.1 of the paper reports that the shareholding graph "exhibits a
scale-free network structure ... the degree distribution follows a
power-law, with several nodes in the network acting as hubs".  To verify
the same property on the synthetic generator we fit a discrete power law
``P(k) = k^-alpha / zeta(alpha, k_min)`` for ``k >= k_min`` with the
exact maximum-likelihood estimator of Clauset-Shalizi-Newman (using the
Hurwitz zeta for normalization), select ``k_min`` by the
Kolmogorov-Smirnov criterion, and compare against an exponential
alternative via log-likelihood ratio as the scale-freeness check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from scipy.special import zeta as _hurwitz_zeta


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a maximum-likelihood discrete power-law fit."""

    alpha: float
    k_min: int
    n_tail: int
    log_likelihood: float
    # Positive values favour the power law over the exponential alternative.
    loglikelihood_ratio_vs_exponential: float

    @property
    def is_plausibly_scale_free(self) -> bool:
        """Heuristic: power law beats exponential on the tail."""
        return self.loglikelihood_ratio_vs_exponential > 0


def _power_law_loglik(tail: Sequence[int], alpha: float, k_min: int) -> float:
    """Exact log-likelihood under the discrete power law."""
    norm = float(_hurwitz_zeta(alpha, k_min))
    if not math.isfinite(norm) or norm <= 0:
        return -math.inf
    return -len(tail) * math.log(norm) - alpha * sum(math.log(k) for k in tail)


def _mle_alpha(tail: Sequence[int], k_min: int) -> float:
    """Exact discrete MLE via golden-section search on the likelihood."""
    log_sum = sum(math.log(k) for k in tail)
    n = len(tail)

    def negative_loglik(alpha: float) -> float:
        norm = float(_hurwitz_zeta(alpha, k_min))
        if not math.isfinite(norm) or norm <= 0:
            return math.inf
        return n * math.log(norm) + alpha * log_sum

    low, high = 1.000001, 8.0
    golden = (math.sqrt(5) - 1) / 2
    x1 = high - golden * (high - low)
    x2 = low + golden * (high - low)
    f1, f2 = negative_loglik(x1), negative_loglik(x2)
    for _ in range(80):
        if f1 < f2:
            high, x2, f2 = x2, x1, f1
            x1 = high - golden * (high - low)
            f1 = negative_loglik(x1)
        else:
            low, x1, f1 = x1, x2, f2
            x2 = low + golden * (high - low)
            f2 = negative_loglik(x2)
    return (low + high) / 2


def _exponential_loglik(tail: Sequence[int], k_min: int) -> float:
    """Log-likelihood of the tail under a shifted geometric/exponential."""
    mean_excess = sum(k - k_min for k in tail) / len(tail)
    if mean_excess <= 0:
        # Degenerate tail: all mass at k_min, exponential fits perfectly.
        return 0.0
    lam = math.log(1.0 + 1.0 / mean_excess)
    log_norm = math.log(1.0 - math.exp(-lam))
    return sum(log_norm - lam * (k - k_min) for k in tail)


def fit_power_law(degrees: Iterable[int], k_min: int = None) -> PowerLawFit:
    """Fit a discrete power law to a degree sequence.

    When ``k_min`` is not given, candidates up to the 90th percentile of
    positive degrees are scanned and the one minimizing the
    Kolmogorov-Smirnov distance between the empirical and fitted tail
    CDFs is chosen (the CSN procedure).
    """
    data: List[int] = sorted(k for k in degrees if k >= 1)
    if not data:
        raise ValueError("degree sequence has no positive entries")

    if k_min is not None:
        candidates = [k_min]
    else:
        cutoff = data[min(len(data) - 1, int(0.9 * len(data)))]
        candidates = sorted({k for k in data if k <= max(cutoff, 1)})

    best: PowerLawFit = None
    best_ks = math.inf
    for candidate in candidates:
        tail = [k for k in data if k >= candidate]
        if len(tail) < 10 and k_min is None:
            continue
        alpha = _mle_alpha(tail, candidate)
        if not math.isfinite(alpha) or alpha <= 1:
            continue
        ks = _ks_distance(tail, alpha, candidate)
        if ks < best_ks:
            best_ks = ks
            loglik = _power_law_loglik(tail, alpha, candidate)
            ratio = loglik - _exponential_loglik(tail, candidate)
            best = PowerLawFit(alpha, candidate, len(tail), loglik, ratio)
    if best is None:
        # Fall back to k_min = 1 with whatever tail we have.
        tail = data
        alpha = _mle_alpha(tail, 1)
        loglik = _power_law_loglik(tail, alpha, 1)
        ratio = loglik - _exponential_loglik(tail, 1)
        best = PowerLawFit(alpha, 1, len(tail), loglik, ratio)
    return best


def _ks_distance(tail: Sequence[int], alpha: float, k_min: int) -> float:
    """Kolmogorov-Smirnov distance between empirical and fitted tail CDFs."""
    n = len(tail)
    norm = float(_hurwitz_zeta(alpha, k_min))
    max_diff = 0.0
    previous = None
    for i, k in enumerate(tail):
        if k != previous:
            # Model CDF: P(K < k) = 1 - zeta(alpha, k) / zeta(alpha, k_min).
            model = 1.0 - float(_hurwitz_zeta(alpha, k)) / norm
            empirical = i / n
            max_diff = max(max_diff, abs(model - empirical))
            previous = k
    return max_diff
