"""The Section 2.1 graph-statistics table.

The paper characterizes the Bank of Italy shareholding graph with twelve
statistics (node/edge counts, SCC/WCC counts and extreme sizes, average
in/out-degree, maximum in/out-degree, average clustering coefficient, and
a scale-free degree distribution).  :func:`summarize` computes the same
statistics on any :class:`~repro.graph.property_graph.PropertyGraph` so
the benchmark harness can print the paper's table side by side with the
measured values on synthetic graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Optional

from repro.graph import algorithms
from repro.graph.powerlaw import PowerLawFit, fit_power_law
from repro.graph.property_graph import PropertyGraph

#: The values reported in Section 2.1 for the Bank of Italy shareholding
#: graph, used by the benchmark harness for the paper-vs-measured table.
PAPER_STATISTICS: Dict[str, float] = {
    "nodes": 11_970_000,
    "edges": 14_180_000,
    "scc_count": 11_960_000,
    "avg_scc_size": 1.0,
    "largest_scc": 1_900,
    "wcc_count": 1_300_000,
    "avg_wcc_size": 9.0,
    "largest_wcc": 6_000_000,
    "avg_in_degree": 3.12,
    "avg_out_degree": 1.78,
    "max_in_degree": 16_900,
    "max_out_degree": 5_100,
    "avg_clustering": 0.0086,
}


@dataclass(frozen=True)
class GraphStatistics:
    """The twelve Section 2.1 statistics plus the power-law fit."""

    nodes: int
    edges: int
    scc_count: int
    avg_scc_size: float
    largest_scc: int
    wcc_count: int
    avg_wcc_size: float
    largest_wcc: int
    avg_in_degree: float
    avg_out_degree: float
    max_in_degree: int
    max_out_degree: int
    avg_clustering: float
    power_law: Optional[PowerLawFit] = None

    def as_dict(self) -> Dict[str, float]:
        """Flat dict of the numeric statistics (power-law fit excluded)."""
        data = asdict(self)
        data.pop("power_law", None)
        return data

    def format_table(self, paper: Dict[str, float] = None) -> str:
        """Render a fixed-width paper-vs-measured table."""
        paper = paper if paper is not None else PAPER_STATISTICS
        lines = [f"{'statistic':<18}{'paper':>16}{'measured':>16}"]
        lines.append("-" * 50)
        for key, value in self.as_dict().items():
            reference = paper.get(key)
            ref_text = f"{reference:,.4g}" if reference is not None else "-"
            lines.append(f"{key:<18}{ref_text:>16}{value:>16,.4g}")
        if self.power_law is not None:
            lines.append(
                f"{'power-law alpha':<18}{'(scale-free)':>16}"
                f"{self.power_law.alpha:>16.3f}"
            )
        return "\n".join(lines)


def summarize(
    graph: PropertyGraph,
    with_clustering: bool = True,
    with_power_law: bool = True,
) -> GraphStatistics:
    """Compute the Section 2.1 statistics for ``graph``.

    ``with_clustering``/``with_power_law`` let benchmarks skip the two
    super-linear statistics when only counts are needed.
    """
    n = graph.node_count
    m = graph.edge_count

    sccs = algorithms.strongly_connected_components(graph)
    wccs = algorithms.weakly_connected_components(graph)

    degrees = graph.degrees()
    in_degrees = [in_deg for in_deg, _ in degrees.values()]
    out_degrees = [out_deg for _, out_deg in degrees.values()]

    # The paper reports degrees averaged over nodes with the corresponding
    # incident edges; we follow the plain all-nodes average, stating it in
    # EXPERIMENTS.md (the paper's avg in != avg out implies a filtered
    # denominator, which we mirror by averaging over active nodes only).
    active_in = [d for d in in_degrees if d > 0]
    active_out = [d for d in out_degrees if d > 0]
    avg_in = sum(active_in) / len(active_in) if active_in else 0.0
    avg_out = sum(active_out) / len(active_out) if active_out else 0.0

    clustering = (
        algorithms.clustering_coefficient(graph) if with_clustering and n else 0.0
    )
    power_law = None
    if with_power_law and any(d > 0 for d in in_degrees):
        totals = [i + o for i, o in zip(in_degrees, out_degrees)]
        power_law = fit_power_law(totals)

    return GraphStatistics(
        nodes=n,
        edges=m,
        scc_count=len(sccs),
        avg_scc_size=(n / len(sccs)) if sccs else 0.0,
        largest_scc=max((len(c) for c in sccs), default=0),
        wcc_count=len(wccs),
        avg_wcc_size=(n / len(wccs)) if wccs else 0.0,
        largest_wcc=max((len(c) for c in wccs), default=0),
        avg_in_degree=avg_in,
        avg_out_degree=avg_out,
        max_in_degree=max(in_degrees, default=0),
        max_out_degree=max(out_degrees, default=0),
        avg_clustering=clustering,
        power_law=power_law,
    )
