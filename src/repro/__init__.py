"""KGModel — model-independent design of knowledge graphs.

A from-scratch reproduction of *Model-Independent Design of Knowledge
Graphs — Lessons Learnt From Complex Financial Graphs* (EDBT 2022):
the meta-model / super-model stack and the GSL design language
(:mod:`repro.core`), the MetaLog language and the MTV compiler
(:mod:`repro.metalog`), a warded Datalog± engine standing in for the
Vadalog System (:mod:`repro.vadalog`), target models with their
Eliminate/Copy mappings (:mod:`repro.models`), the SSST translator and
the Algorithm 2 materializer (:mod:`repro.ssst`), in-memory deployment
targets (:mod:`repro.deploy`), the property-graph substrate
(:mod:`repro.graph`), and the financial Company KG with its synthetic
registry (:mod:`repro.finkg`).

Quickstart::

    from repro import SuperSchema, SSST, IntensionalMaterializer
    from repro.metalog import parse_metalog

    schema = SuperSchema("Mini", schema_oid=1)
    company = schema.node("Company")
    company.attribute("vat", is_id=True)
    schema.edge("OWNS", company, company).attribute("percentage", "float")

    result = SSST().translate(schema, "relational")
    print(result.target_schema.summary())
"""

from repro.core import (
    GraphDictionary,
    SuperInstance,
    SuperSchema,
    parse_gsl,
    render_super_schema,
    schema_to_dot,
    supermodel_table,
)
from repro.errors import KGModelError
from repro.graph import PropertyGraph, summarize
from repro.metalog import compile_metalog, parse_metalog, run_on_graph
from repro.ssst import SSST, IntensionalMaterializer
from repro.vadalog import Engine, parse_program

__version__ = "1.0.0"

__all__ = [
    "GraphDictionary",
    "SuperInstance",
    "SuperSchema",
    "parse_gsl",
    "render_super_schema",
    "schema_to_dot",
    "supermodel_table",
    "KGModelError",
    "PropertyGraph",
    "summarize",
    "compile_metalog",
    "parse_metalog",
    "run_on_graph",
    "SSST",
    "IntensionalMaterializer",
    "Engine",
    "parse_program",
    "__version__",
]
