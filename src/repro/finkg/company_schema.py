"""The Company KG super-schema of Figure 4.

This module rebuilds, with the GSL programmatic API, the design the paper
narrates in Section 3.3: persons specialized into physical and legal
persons, legal persons into businesses and non-businesses, businesses
into public listed companies, shares (and stock shares) decoupling
ownership, places, families, business events — plus the intensional
constructs (OWNS, CONTROLS, IS_RELATED_TO, BELONGS_TO_FAMILY,
FAMILY_OWNS, numberOfStakeholders) marked dashed in the diagram.
"""

from __future__ import annotations

from repro.core.schema import SuperSchema
from repro.core.supermodel import (
    SMEnumAttributeModifier,
    SMRangeAttributeModifier,
    SMUniqueAttributeModifier,
)

#: The schema OID the paper uses in its examples (Example 5.1: s = 123).
COMPANY_SCHEMA_OID = 123

#: The legal rights a share can be held with (Section 2.1: "ownership,
#: bare ownership and so on").
SHARE_RIGHTS = ("ownership", "bare ownership", "usufruct")


def company_super_schema(schema_oid=COMPANY_SCHEMA_OID) -> SuperSchema:
    """Build the Figure 4 Company KG super-schema."""
    schema = SuperSchema("CompanyKG", schema_oid)

    # --- Persons ------------------------------------------------------
    person = schema.node("Person")
    person.attribute(
        "fiscalCode", "string", is_id=True,
        modifiers=[SMUniqueAttributeModifier()],
    )

    physical = schema.node("PhysicalPerson")
    physical.attribute("name", "string")
    physical.attribute("surname", "string", is_optional=True)
    physical.attribute(
        "gender", "string",
        modifiers=[SMEnumAttributeModifier(["female", "male"])],
    )
    physical.attribute("birthDate", "date", is_optional=True)

    legal = schema.node("LegalPerson")
    legal.attribute("businessName", "string")
    legal.attribute("legalNature", "string")
    legal.attribute("website", "string", is_optional=True)

    schema.generalization(person, [physical, legal], total=True, disjoint=True)

    # --- Businesses ----------------------------------------------------
    business = schema.node("Business")
    business.attribute(
        "shareholdingCapital", "float",
        modifiers=[SMRangeAttributeModifier(0.0, None)],
    )
    business.attribute("numberOfStakeholders", "int", is_intensional=True)

    non_business = schema.node("NonBusiness")
    non_business.attribute("isGovernmental", "bool")

    schema.generalization(legal, [business, non_business], total=True, disjoint=True)

    listed = schema.node("PublicListedCompany")
    listed.attribute("stockExchange", "string")
    listed.attribute("tickerSymbol", "string", is_optional=True)

    schema.generalization(business, [listed], total=False, disjoint=True)

    # --- Shares ----------------------------------------------------------
    share = schema.node("Share")
    share.attribute("shareId", "string", is_id=True)
    share.attribute(
        "percentage", "float",
        modifiers=[SMRangeAttributeModifier(0.0, 1.0)],
    )

    stock_share = schema.node("StockShare")
    stock_share.attribute("numberOfStocks", "int")

    schema.generalization(share, [stock_share], total=False, disjoint=True)

    # --- Places, families, events ---------------------------------------
    place = schema.node("Place")
    place.attribute("placeId", "string", is_id=True)
    place.attribute("street", "string")
    place.attribute("streetNumber", "string", is_optional=True)
    place.attribute("city", "string")
    place.attribute("postalCode", "string")

    family = schema.node("Family", is_intensional=True)
    family.attribute("familyId", "string", is_id=True, is_intensional=True)
    family.attribute("familyName", "string", is_intensional=True)

    event = schema.node("BusinessEvent")
    event.attribute("eventId", "string", is_id=True)
    event.attribute(
        "type", "string",
        modifiers=[SMEnumAttributeModifier(["merger", "acquisition", "split"])],
    )
    event.attribute("date", "date")

    # --- Extensional edges ----------------------------------------------
    holds = schema.edge(
        "HOLDS", person, share, source_card="1..N", target_card="0..N"
    )
    holds.attribute(
        "right", "string",
        modifiers=[SMEnumAttributeModifier(list(SHARE_RIGHTS))],
    )

    schema.edge(
        "BELONGS_TO", share, business, source_card="0..N", target_card="1..1"
    )
    has_role = schema.edge(
        "HAS_ROLE", person, legal, source_card="0..N", target_card="0..N"
    )
    has_role.attribute("role", "string")

    schema.edge(
        "RESIDES", person, place, source_card="0..N", target_card="0..1"
    )
    schema.edge(
        "REPRESENTS", physical, business, source_card="0..N", target_card="0..N"
    )
    participates = schema.edge(
        "PARTICIPATES", business, event, source_card="0..N", target_card="0..N"
    )
    participates.attribute("role", "string")

    # --- Intensional edges (Section 3.3, dashed in Figure 4) -------------
    owns = schema.edge(
        "OWNS", person, business, is_intensional=True,
        source_card="0..N", target_card="0..N",
    )
    owns.attribute("percentage", "float", is_intensional=True)

    schema.edge(
        "CONTROLS", person, business, is_intensional=True,
        source_card="0..N", target_card="0..N",
    )
    schema.edge(
        "IS_RELATED_TO", physical, physical, is_intensional=True,
        source_card="0..N", target_card="0..N",
    )
    schema.edge(
        "BELONGS_TO_FAMILY", physical, family, is_intensional=True,
        source_card="0..N", target_card="0..1",
    )
    schema.edge(
        "FAMILY_OWNS", family, business, is_intensional=True,
        source_card="0..N", target_card="0..N",
    )

    schema.validate()
    return schema
