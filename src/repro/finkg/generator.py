"""Synthetic shareholding-graph generator.

The proprietary source of the paper's extensional component (the Italian
Chambers of Commerce registry, Section 2.1) is replaced by a
configurable generator reproducing the same topology:

- a **scale-free** degree structure: the number of companies a
  shareholder invests in follows a truncated Zipf law, and investors are
  chosen by preferential attachment, so "several nodes in the network
  act as hubs";
- **tiny strongly connected components** (cross-shareholding cycles are
  rare: the paper reports 11.96M SCCs over 11.97M nodes, largest 1.9k)
  — controlled by ``cycle_probability``;
- **one giant weakly connected component** plus a sea of small ones
  (largest WCC > 6M of 11.97M; 1.3M WCCs of average size 9) —
  controlled by ``giant_fraction``: companies outside the giant pool
  form small isolated clusters;
- share percentages per company sum to at most 1, with a small float
  left unassigned (dispersed retail ownership), which also keeps the
  integrated-ownership series convergent in the presence of cycles.

Two outputs are offered: :func:`generate_shareholding_graph` builds the
flat "shareholding graph" of Section 2.1 (nodes are shareholders, edges
are OWNS with a ``percentage``) used for the statistics table, while
:func:`generate_company_kg` builds the fully typed Company KG instance
(PhysicalPerson / Business / Share nodes, HOLDS / BELONGS_TO edges)
conforming to the Figure 4 schema, used by the reasoning pipelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph import make_graph

#: Plausible Italian surnames for the family-detection programs.
_SURNAMES = (
    "Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo",
    "Ricci", "Marino", "Greco", "Bruno", "Gallo", "Conti", "DeLuca",
    "Mancini", "Costa", "Giordano", "Rizzo", "Lombardi", "Moretti",
)
_FIRST_NAMES = (
    "Alessandro", "Giulia", "Francesco", "Sofia", "Lorenzo", "Aurora",
    "Matteo", "Ginevra", "Leonardo", "Alice", "Gabriele", "Emma",
)


@dataclass(frozen=True)
class ShareholdingConfig:
    """Knobs of the generator; defaults mirror the Section 2.1 ratios."""

    companies: int = 1000
    #: persons per company (the registry has both physical and legal
    #: shareholders; the flat graph just needs shareholders).
    person_ratio: float = 1.7
    #: Zipf exponent of the investments-per-shareholder distribution.
    zipf_exponent: float = 2.1
    #: Cap on investments per shareholder (keeps tails finite at small n).
    max_investments: int = 200
    #: Mean number of shareholders per company.
    mean_shareholders: float = 2.8
    #: Probability that a company participates in a cross-ownership cycle.
    cycle_probability: float = 0.002
    #: Fraction of companies wired into the giant component.
    giant_fraction: float = 0.55
    #: Size range of the isolated clusters outside the giant pool.
    cluster_size: Tuple[int, int] = (3, 12)
    #: Fraction of capital left unassigned (dispersed ownership).
    dispersed: float = 0.05
    seed: int = 42


@dataclass
class Shareholding:
    """One ownership stake: ``owner`` holds ``percentage`` of ``company``."""

    owner: str
    company: str
    percentage: float


@dataclass
class ShareholdingData:
    """Raw generator output before graph materialization."""

    persons: List[str]
    companies: List[str]
    stakes: List[Shareholding]

    @property
    def nodes(self) -> int:
        return len(self.persons) + len(self.companies)

    @property
    def edges(self) -> int:
        return len(self.stakes)


def generate_shareholding_data(config: ShareholdingConfig) -> ShareholdingData:
    """Generate the raw shareholders/companies/stakes lists."""
    rng = random.Random(config.seed)
    n_companies = config.companies
    n_persons = max(1, int(n_companies * config.person_ratio))
    companies = [f"C{i}" for i in range(n_companies)]
    persons = [f"P{i}" for i in range(n_persons)]

    # Partition companies: the giant pool vs small isolated clusters.
    shuffled = companies[:]
    rng.shuffle(shuffled)
    giant_count = int(len(shuffled) * config.giant_fraction)
    giant_pool = shuffled[:giant_count]
    remainder = shuffled[giant_count:]
    clusters: List[List[str]] = []
    index = 0
    while index < len(remainder):
        size = rng.randint(*config.cluster_size)
        clusters.append(remainder[index:index + size])
        index += size

    person_cursor = 0

    def take_persons(count: int) -> List[str]:
        nonlocal person_cursor
        taken = []
        for _ in range(count):
            taken.append(persons[person_cursor % len(persons)])
            person_cursor += 1
        return taken

    stakes: List[Shareholding] = []

    def wire(pool_companies: Sequence[str], pool_persons: Sequence[str]) -> None:
        """Preferential-attachment wiring inside one pool."""
        if not pool_companies or not pool_persons:
            return
        # Investor multiset for preferential attachment: each stake adds
        # its owner once, so P(pick) grows with current out-degree.
        attachment: List[str] = list(pool_persons)
        # Also let companies themselves invest (legal-person shareholders).
        attachment.extend(
            rng.choice(pool_companies)
            for _ in range(max(1, len(pool_companies) // 4))
        )
        for company in pool_companies:
            k = _poisson_like(rng, config.mean_shareholders)
            if k == 0:
                continue
            owners: List[str] = []
            seen = set()
            for _ in range(k):
                owner = rng.choice(attachment)
                if owner == company or owner in seen:
                    continue
                seen.add(owner)
                owners.append(owner)
            if not owners:
                continue
            percentages = _split_capital(rng, len(owners), config.dispersed)
            for owner, percentage in zip(owners, percentages):
                stakes.append(Shareholding(owner, company, percentage))
                attachment.append(owner)  # preferential attachment
        # Occasional cross-ownership cycles.
        for company in pool_companies:
            if rng.random() < config.cycle_probability and len(pool_companies) > 2:
                other = rng.choice(pool_companies)
                if other != company:
                    stakes.append(
                        Shareholding(company, other, round(rng.uniform(0.01, 0.15), 4))
                    )
                    stakes.append(
                        Shareholding(other, company, round(rng.uniform(0.01, 0.15), 4))
                    )

    # Zipf-limited investor activity is induced by preferential
    # attachment; clusters take a few persons each, the giant pool takes
    # every remaining person so no shareholder stays isolated.
    for cluster in clusters:
        wire(cluster, take_persons(max(1, len(cluster) // 2)))
    wire(giant_pool, persons[person_cursor % len(persons):] or persons)

    # Deduplicate (owner, company) pairs by aggregation, like the registry.
    merged: Dict[Tuple[str, str], float] = {}
    for stake in stakes:
        key = (stake.owner, stake.company)
        merged[key] = merged.get(key, 0.0) + stake.percentage
    # Normalize: no company's capital may be over-assigned (cycle
    # injection can push the inbound sum past 1); cap at (1 - dispersed)
    # so the integrated-ownership series always converges.
    inbound: Dict[str, float] = {}
    for (owner, company), percentage in merged.items():
        inbound[company] = inbound.get(company, 0.0) + percentage
    cap = 1.0 - config.dispersed
    for key in list(merged):
        company = key[1]
        total = inbound[company]
        if total > cap:
            merged[key] = merged[key] * cap / total
        merged[key] = round(min(1.0, merged[key]), 6)
    data = ShareholdingData(
        persons=persons,
        companies=companies,
        stakes=[Shareholding(o, c, p) for (o, c), p in sorted(merged.items())],
    )
    return data


def _poisson_like(rng: random.Random, mean: float) -> int:
    """A cheap integer distribution with the requested mean and a heavy
    enough tail (mixture of geometric and occasional bursts)."""
    if rng.random() < 0.04:
        return int(mean * rng.uniform(3, 12))  # hub company
    # 1 + geometric: every company has at least one shareholder, as in
    # the registry; the mean still matches the configuration.
    p = 1.0 / mean
    count = 1
    while rng.random() > p and count < 64:
        count += 1
    return count


def _split_capital(rng: random.Random, parts: int, dispersed: float) -> List[float]:
    """Split (1 - dispersed) of the capital into ``parts`` random stakes."""
    cuts = sorted(rng.random() for _ in range(parts - 1))
    bounds = [0.0] + cuts + [1.0]
    total = 1.0 - dispersed
    return [
        round((bounds[i + 1] - bounds[i]) * total, 6) for i in range(parts)
    ]


def generate_shareholding_graph(
    config: Optional[ShareholdingConfig] = None,
    columnar: Optional[bool] = None,
):
    """The flat Section 2.1 shareholding graph: OWNS edges with
    percentages between shareholder nodes."""
    config = config or ShareholdingConfig()
    data = generate_shareholding_data(config)
    graph = make_graph("shareholding", columnar=columnar)
    for person in data.persons:
        graph.add_node(person, "Person")
    for company in data.companies:
        graph.add_node(company, "Company")
    for stake in data.stakes:
        graph.add_edge(stake.owner, stake.company, "OWNS", percentage=stake.percentage)
    return graph


def generate_company_kg(
    config: Optional[ShareholdingConfig] = None,
    columnar: Optional[bool] = None,
):
    """A typed Company KG instance conforming to the Figure 4 schema.

    Persons become PhysicalPerson nodes (with surnames for the family
    programs), companies become Business nodes, and every stake is
    reified through a Share node (HOLDS / BELONGS_TO), mirroring the
    schema's decoupled ownership design.
    """
    config = config or ShareholdingConfig()
    rng = random.Random(config.seed + 1)
    data = generate_shareholding_data(config)
    graph = make_graph("company-kg", columnar=columnar)
    for person in data.persons:
        surname = rng.choice(_SURNAMES)
        first = rng.choice(_FIRST_NAMES)
        graph.add_node(
            person,
            "PhysicalPerson",
            fiscalCode=f"FC{person}",
            name=f"{first} {surname}",
            surname=surname,
            gender=rng.choice(["female", "male"]),
        )
    for company in data.companies:
        graph.add_node(
            company,
            "Business",
            fiscalCode=f"FC{company}",
            businessName=f"{company} S.p.A.",
            legalNature="spa",
            shareholdingCapital=round(rng.uniform(1e4, 1e7), 2),
        )
    for i, stake in enumerate(data.stakes):
        share_id = f"S{i}"
        graph.add_node(
            share_id, "Share", shareId=share_id, percentage=stake.percentage
        )
        graph.add_edge(stake.owner, share_id, "HOLDS", right="ownership")
        graph.add_edge(share_id, stake.company, "BELONGS_TO")
    return graph


def stakes_as_tuples(data: ShareholdingData) -> List[Tuple[str, str, float]]:
    """(owner, company, percentage) triples, the baselines' input."""
    return [(s.owner, s.company, s.percentage) for s in data.stakes]
