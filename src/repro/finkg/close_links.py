"""ECB close links [42]: baseline and MetaLog pipeline.

Section 2.1: "close links, where the European Central Bank specifies
peculiar forms of financial conflict of interest between graph entities
involved in the issuance and use as collateral of asset-backed
securities."  Following the Guideline (EU) 2018/876 definition, two
entities are *closely linked* when

- one owns, directly or indirectly, at least 20% of the other's capital
  (either direction), or
- a third party owns at least 20% of both.

The baseline computes the symmetric relation from the exact integrated
ownership matrix; the MetaLog pipeline derives CLOSE_LINK edges from the
materialized IOWN edges (:func:`repro.finkg.programs.close_links_program`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

from repro.finkg.ownership import Stake, integrated_ownership


def close_links(
    stakes: Iterable[Stake],
    threshold: float = 0.2,
    io: Dict[Tuple[str, str], float] = None,
) -> Set[Tuple[str, str]]:
    """Compute the close-links relation (as a symmetric set of pairs).

    ``io`` may carry a precomputed integrated-ownership dict; otherwise
    the exact one is computed from the stakes.
    """
    if io is None:
        io = integrated_ownership(list(stakes))
    links: Set[Tuple[str, str]] = set()
    strong_holdings: Dict[str, Set[str]] = defaultdict(set)
    for (owner, company), fraction in io.items():
        if fraction >= threshold:
            links.add((owner, company))
            links.add((company, owner))
            strong_holdings[owner].add(company)
    for owner, companies in strong_holdings.items():
        held = sorted(companies)
        for i, first in enumerate(held):
            for second in held[i + 1:]:
                links.add((first, second))
                links.add((second, first))
    return links


def close_link_pairs_from_graph(graph) -> Set[Tuple[str, str]]:
    """Extract materialized CLOSE_LINK edges as a symmetric pair set."""
    links: Set[Tuple[str, str]] = set()
    for edge in graph.edges("CLOSE_LINK"):
        links.add((edge.source, edge.target))
        links.add((edge.target, edge.source))
    return links
