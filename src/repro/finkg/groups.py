"""Company groups, families, and partnerships: baselines.

Section 2.1: intensional components "capture relevant phenomena for
analysis purposes, such as company groups, virtual concepts denoting a
center of interest [families], shared among many firms, or partnerships
between shareholders sharing the assets of some firm."

The MetaLog programs live in :mod:`repro.finkg.programs`
(:data:`FAMILY_PROGRAM`, :data:`GROUP_PROGRAM`); the functions here are
the direct Python baselines the tests cross-check against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from repro.finkg.control import Stake, control_closure
from repro.graph.property_graph import PropertyGraph


def company_groups(
    stakes: Iterable[Stake], threshold: float = 0.5
) -> Dict[str, Set[str]]:
    """Groups keyed by ultimate controller.

    A company belongs to the group of a controller that is itself not
    controlled by anyone (the group leader); companies controlled by
    several independent leaders appear in each group, mirroring the
    non-disjoint semantics of the Skolem-minted Group nodes.
    """
    closure = control_closure(list(stakes), threshold)
    controlled_by: Dict[str, Set[str]] = defaultdict(set)
    for controller, controlled in closure.items():
        for company in controlled:
            controlled_by[company].add(controller)
    groups: Dict[str, Set[str]] = {}
    for controller, controlled in closure.items():
        if controlled_by.get(controller):
            continue  # not an ultimate controller
        if controlled:
            groups[controller] = set(controlled)
    return groups


def families_by_surname(graph: PropertyGraph) -> Dict[str, Set[str]]:
    """Families of PhysicalPersons sharing a surname (baseline for the
    Skolem-linker FAMILY_PROGRAM: one family per surname)."""
    families: Dict[str, Set[str]] = defaultdict(set)
    for node in graph.nodes("PhysicalPerson"):
        surname = node.get("surname")
        if surname:
            families[surname].add(node.id)
    return dict(families)


def related_pairs(graph: PropertyGraph) -> Set[Tuple[str, str]]:
    """IS_RELATED_TO baseline: ordered pairs of distinct same-surname
    physical persons."""
    pairs: Set[Tuple[str, str]] = set()
    for members in families_by_surname(graph).values():
        ordered = sorted(members)
        for first in ordered:
            for second in ordered:
                if first != second:
                    pairs.add((first, second))
    return pairs


def partnerships(graph: PropertyGraph) -> Set[Tuple[str, str]]:
    """Shareholders sharing the assets of some firm: unordered pairs of
    distinct persons holding shares of the same business."""
    holders_by_business: Dict[str, Set[str]] = defaultdict(set)
    share_to_business: Dict[str, str] = {}
    for edge in graph.edges("BELONGS_TO"):
        share_to_business[edge.source] = edge.target
    for edge in graph.edges("HOLDS"):
        business = share_to_business.get(edge.target)
        if business is not None:
            holders_by_business[business].add(edge.source)
    pairs: Set[Tuple[str, str]] = set()
    for holders in holders_by_business.values():
        ordered = sorted(holders)
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                pairs.add((first, second))
    return pairs
