"""The MetaLog programs of the Company KG intensional component.

Section 2.1: "In the Central Bank of Italy KG, an interesting case is
the control link between companies ...; another one is integrated
ownership ...; finally close links ....  Intensional components are also
used to capture relevant phenomena for analysis purposes, such as
company groups, virtual concepts denoting a center of interest
[families], or partnerships between shareholders sharing the assets of
some firm."

Each constant below is MetaLog source text (parse with
:func:`repro.metalog.parse_metalog`); builders are provided where the
program is parameterized (thresholds, unrolling depth).
"""

from __future__ import annotations

#: Derive the intensional OWNS edge from the reified shareholding
#: structure (Section 3.3: "I will introduce an intensional OWNS SM_Edge
#: that compactly represents only property rights").  Stakes are summed
#: per owner over the distinct shares held with right "ownership".
OWNS_PROGRAM = """
(p: Person)[: HOLDS; right: "ownership"](s: Share; percentage: w)
    [: BELONGS_TO](b: Business),
v = msum(w, <s>)
  -> exists o : (p)[o: OWNS; percentage: v](b).
"""

def control_program(
    node_label: str = "Business",
    owns_label: str = "OWNS",
    threshold: float = 0.5,
) -> str:
    """Build the Example 4.1 company-control program for any labeling.

    The default matches the typed Company KG; pass
    ``node_label="Company"`` for the flat Section 2.1 shareholding graph.
    """
    return f"""
(x: {node_label}) -> exists c : (x)[c: CONTROLS](x).
(x: {node_label})[:CONTROLS](z: {node_label})
    [:{owns_label}; percentage: w](y: {node_label}),
    v = msum(w, <z>), v > {threshold}
  -> exists c : (x)[c: CONTROLS](y).
"""


#: Example 4.1 — company control.  "A business x controls a business y,
#: if: (i) x directly owns more than 50% of y; or, (ii) x controls a set
#: of companies that jointly (i.e., summing the share amounts), and
#: possibly together with x, own more than 50% of y."
CONTROL_PROGRAM = control_program()

#: Control exercised by any person (physical or legal) over businesses:
#: the self-control seed ranges over Persons, the step is identical.
PERSON_CONTROL_PROGRAM = """
(x: Person) -> exists c : (x)[c: CONTROLS](x).
(x: Person)[:CONTROLS](z)[:OWNS; percentage: w](y: Business),
    v = msum(w, <z>), v > 0.5
  -> exists c : (x)[c: CONTROLS](y).
"""

#: The intensional numberOfStakeholders property of Business
#: (Section 3.3): how many distinct persons own a piece of the company.
STAKEHOLDERS_PROGRAM = """
(p: Person)[: OWNS](b: Business), c = mcount(p, <p>)
  -> (b: Business; numberOfStakeholders: c).
"""

#: Families (Section 3.3): physical persons sharing a surname are
#: related; each surname spawns one Family node through a linker Skolem
#: functor (one family per surname, deterministic), persons belong to it,
#: and a family owns the businesses its members own.
FAMILY_PROGRAM = """
(p: PhysicalPerson; surname: s), (q: PhysicalPerson; surname: s),
    p != q
  -> exists r : (p)[r: IS_RELATED_TO](q).

(p: PhysicalPerson; surname: s)
  -> exists f = skFamily(s), b : (p)[b: BELONGS_TO_FAMILY]
     (f: Family; familyId: s, familyName: s).

(p: PhysicalPerson)[: BELONGS_TO_FAMILY](f: Family),
(p)[: OWNS](b: Business)
  -> exists o : (f)[o: FAMILY_OWNS](b).
"""


def integrated_ownership_program(depth: int = 6, edge_label: str = "IOWN") -> str:
    """Build the k-level unrolled integrated-ownership program.

    Integrated ownership [43] is the total fraction of ``y`` that ``x``
    holds directly and indirectly through every ownership path.  The
    exact value solves ``Y = W + W·Y``; in MetaLog we unroll the series
    ``W + W^2 + ... + W^depth`` (the tail decays geometrically because
    company capital is never 100% assigned in the synthetic registry —
    see EXPERIMENTS.md for the truncation-error check).  Level
    ``k`` facts are ``iownK`` edges; the final rule sums the levels.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rules = ["""
(x: Person)[: OWNS; percentage: w](y: Business)
  -> exists e : (x)[e: iown1; percentage: w](y).
"""]
    for level in range(1, depth):
        rules.append(f"""
(x: Person)[: iown{level}; percentage: u](z: Business)
    [: OWNS; percentage: w](y: Business),
p = u * w, v = msum(p, <z>)
  -> exists e : (x)[e: iown{level + 1}; percentage: v](y).
""")
    sum_rules = []
    for level in range(1, depth + 1):
        sum_rules.append(f"""
(x: Person)[: iown{level}; percentage: w](y: Business)
  -> exists e : (x)[e: iownLevel; level: {level}, percentage: w](y).
""")
    final = f"""
(x: Person)[: iownLevel; level: l, percentage: w](y: Business),
v = msum(w, <l>)
  -> exists e : (x)[e: {edge_label}; percentage: v](y).
"""
    return "".join(rules + sum_rules + [final])


def close_links_program(threshold: float = 0.2, io_label: str = "IOWN") -> str:
    """Build the ECB close-links program [42] over integrated ownership.

    Two entities are closely linked when one owns (directly or
    indirectly) at least 20% of the other, or a third party owns at
    least 20% of both.
    """
    return f"""
(x)[: {io_label}; percentage: w](y), w >= {threshold}, x != y
  -> exists c : (x)[c: CLOSE_LINK](y).

(x)[: {io_label}; percentage: w](y), w >= {threshold}, x != y
  -> exists c : (y)[c: CLOSE_LINK](x).

(z)[: {io_label}; percentage: u](x), u >= {threshold},
(z)[: {io_label}; percentage: w](y), w >= {threshold},
x != y
  -> exists c : (x)[c: CLOSE_LINK](y).
"""


#: Company groups: two businesses controlled by the same ultimate
#: controller belong to one group, minted per controller by a linker
#: Skolem functor.
GROUP_PROGRAM = """
(x: Person)[: CONTROLS](y: Business), x != y
  -> exists g = skGroup(x), b : (y)[b: IN_GROUP](g: Group; leader: x).
"""
