"""Company control: reference baseline and MetaLog pipeline.

The paper's headline intensional component (Example 4.1/4.2).  Besides
the MetaLog program (:data:`repro.finkg.programs.CONTROL_PROGRAM`,
executed by MTV + the chase), this module provides a direct worklist
algorithm used both as the comparison baseline in the benchmarks and as
the correctness oracle in tests: the two computations must agree on
every input.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.finkg.programs import control_program
from repro.graph.property_graph import PropertyGraph
from repro.metalog.mtv import MaterializationOutcome, run_on_graph
from repro.metalog.parser import parse_metalog
from repro.vadalog.engine import Engine

Stake = Tuple[str, str, float]


def control_closure(
    stakes: Iterable[Stake],
    threshold: float = 0.5,
    include_self: bool = False,
) -> Dict[str, Set[str]]:
    """Worklist baseline for company control.

    ``stakes`` are (owner, company, fraction) triples, already aggregated
    per (owner, company).  Returns, for every entity that controls at
    least one other entity, the set of controlled entities.

    The algorithm follows the Example 4.1 semantics exactly: starting
    from {x}, repeatedly add any y whose shares held by the controlled
    set sum above the threshold.
    """
    out_edges: Dict[str, List[Tuple[str, float]]] = defaultdict(list)
    entities: Set[str] = set()
    for owner, company, fraction in stakes:
        out_edges[owner].append((company, fraction))
        entities.add(owner)
        entities.add(company)

    result: Dict[str, Set[str]] = {}
    for root in entities:
        if not out_edges.get(root):
            if include_self:
                result[root] = {root}
            continue
        controlled: Set[str] = {root}
        sums: Dict[str, float] = defaultdict(float)
        queue: List[str] = [root]
        while queue:
            current = queue.pop()
            for company, fraction in out_edges.get(current, ()):
                if company in controlled:
                    continue
                sums[company] += fraction
                if sums[company] > threshold:
                    controlled.add(company)
                    queue.append(company)
        if not include_self:
            controlled.discard(root)
        if controlled:
            result[root] = controlled
    return result


def control_pairs(
    stakes: Iterable[Stake], threshold: float = 0.5
) -> Set[Tuple[str, str]]:
    """The (controller, controlled) pairs of the baseline (no self-loops)."""
    closure = control_closure(stakes, threshold)
    return {
        (controller, controlled)
        for controller, group in closure.items()
        for controlled in group
    }


def stakes_from_graph(
    graph: PropertyGraph, owns_label: str = "OWNS"
) -> List[Stake]:
    """Extract aggregated (owner, company, fraction) triples from OWNS
    edges of a property graph."""
    merged: Dict[Tuple[str, str], float] = defaultdict(float)
    for edge in graph.edges(owns_label):
        merged[(edge.source, edge.target)] += float(edge.get("percentage", 0.0))
    return [(o, c, p) for (o, c), p in sorted(merged.items())]


def run_control_metalog(
    graph: PropertyGraph,
    node_label: str = "Business",
    owns_label: str = "OWNS",
    threshold: float = 0.5,
    engine: Optional[Engine] = None,
) -> MaterializationOutcome:
    """Run the Example 4.1 MetaLog program end-to-end over a graph.

    Returns the MTV outcome: ``outcome.graph`` holds the CONTROLS edges.
    """
    program = parse_metalog(control_program(node_label, owns_label, threshold))
    return run_on_graph(program, graph, engine=engine)


def controls_pairs_from_graph(graph: PropertyGraph) -> Set[Tuple[str, str]]:
    """(controller, controlled) pairs from materialized CONTROLS edges,
    self-loops excluded (the program seeds CONTROLS(x, x))."""
    return {
        (edge.source, edge.target)
        for edge in graph.edges("CONTROLS")
        if edge.source != edge.target
    }
