"""Integrated ownership [43]: exact baseline and MetaLog pipeline.

Integrated ownership "measures the total shares owned by a shareholder,
directly and indirectly throughout the whole graph" (Section 2.1).  With
``W`` the direct-ownership matrix (``W[i, j]`` = fraction of ``j`` held
by ``i``), the integrated ownership matrix is the series

    Y = W + W^2 + W^3 + ...  =  W (I - W)^{-1}

which converges whenever every cycle leaks capital (spectral radius of
``W`` below 1 — guaranteed by the generator's dispersed-ownership
float).  :func:`integrated_ownership` computes it exactly with a sparse
linear solve (falling back to dense numpy for small inputs);
:func:`integrated_ownership_series` is the truncated power-series used
to bound the MetaLog unrolling error.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

Stake = Tuple[str, str, float]


def _index_entities(stakes: List[Stake]) -> Tuple[List[str], Dict[str, int]]:
    entities: List[str] = sorted(
        {owner for owner, _, _ in stakes} | {company for _, company, _ in stakes}
    )
    return entities, {entity: i for i, entity in enumerate(entities)}


def ownership_matrix(stakes: Iterable[Stake]):
    """(entities, W) with ``W[i, j]`` the fraction of ``j`` owned by ``i``."""
    stakes = list(stakes)
    entities, index = _index_entities(stakes)
    n = len(entities)
    matrix = np.zeros((n, n))
    for owner, company, fraction in stakes:
        matrix[index[owner], index[company]] += fraction
    return entities, matrix


def integrated_ownership(
    stakes: Iterable[Stake],
    min_value: float = 1e-9,
) -> Dict[Tuple[str, str], float]:
    """Exact integrated ownership with the absorbing-root correction.

    For root ``x``, the integrated ownership of ``y`` sums the products
    of stakes along every ownership path from ``x`` to ``y`` **that does
    not pass through ``x`` again** — the cycle-correct definition of the
    layered-ownership literature [43] (a naive path sum double-counts
    through cross-shareholding loops and can exceed 1).

    Formally, with ``W'_x`` equal to ``W`` with row ``x`` zeroed:
    ``y_x = w_x (I - W'_x)^{-1}``.  Each root differs from ``(I - W)``
    by a rank-1 update, so all roots are computed from a single matrix
    inverse via the Sherman-Morrison formula — O(n^2) per root after
    one O(n^3) factorization.

    Returns a sparse dict {(owner, company): fraction}, entries below
    ``min_value`` dropped; the diagonal is excluded.
    """
    stakes = list(stakes)
    if not stakes:
        return {}
    entities, matrix = ownership_matrix(stakes)
    n = len(entities)
    identity = np.eye(n)
    base_inverse = np.linalg.solve(identity - matrix, identity)

    result: Dict[Tuple[str, str], float] = {}
    for i in range(n):
        row = matrix[i]
        if not row.any():
            continue
        # A' = (I - W + e_i w_i)^{-1} = A - (A e_i)(w_i A) / (1 + w_i A e_i)
        a_col = base_inverse[:, i]
        wa = row @ base_inverse
        denominator = 1.0 + wa[i]
        # y_i = w_i A' = wa - (wa[i] / denom) * wa  = wa / denom
        y = wa / denominator
        for j in np.nonzero(y > min_value)[0]:
            if j == i:
                continue
            result[(entities[i], entities[int(j)])] = float(y[int(j)])
    return result


def integrated_ownership_series(
    stakes: Iterable[Stake],
    depth: int = 6,
    min_value: float = 1e-9,
) -> Dict[Tuple[str, str], float]:
    """Truncated power series ``W + ... + W^depth``.

    This mirrors the MetaLog unrolling of
    :func:`repro.finkg.programs.integrated_ownership_program`, and is
    used to measure the truncation error against the exact solution.
    """
    stakes = list(stakes)
    if not stakes:
        return {}
    entities, matrix = ownership_matrix(stakes)
    power = matrix.copy()
    total = matrix.copy()
    for _ in range(depth - 1):
        power = power @ matrix
        total += power
    result: Dict[Tuple[str, str], float] = {}
    rows, cols = np.nonzero(total > min_value)
    for i, j in zip(rows, cols):
        if i == j:
            continue
        result[(entities[i], entities[j])] = float(total[i, j])
    return result


def iown_pairs_from_graph(graph, label: str = "IOWN") -> Dict[Tuple[str, str], float]:
    """Extract the materialized integrated-ownership edges of a graph."""
    result: Dict[Tuple[str, str], float] = {}
    for edge in graph.edges(label):
        result[(edge.source, edge.target)] = float(edge.get("percentage", 0.0))
    return result
