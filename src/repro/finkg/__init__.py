"""The financial Company KG: schema, generator, programs, baselines."""

from repro.finkg.close_links import close_link_pairs_from_graph, close_links
from repro.finkg.company_schema import (
    COMPANY_SCHEMA_OID,
    SHARE_RIGHTS,
    company_super_schema,
)
from repro.finkg.control import (
    control_closure,
    control_pairs,
    controls_pairs_from_graph,
    run_control_metalog,
    stakes_from_graph,
)
from repro.finkg.generator import (
    ShareholdingConfig,
    ShareholdingData,
    generate_company_kg,
    generate_shareholding_data,
    generate_shareholding_graph,
    stakes_as_tuples,
)
from repro.finkg.groups import (
    company_groups,
    families_by_surname,
    partnerships,
    related_pairs,
)
from repro.finkg.ownership import (
    integrated_ownership,
    integrated_ownership_series,
    iown_pairs_from_graph,
    ownership_matrix,
)
from repro.finkg import programs

__all__ = [
    "close_link_pairs_from_graph",
    "close_links",
    "COMPANY_SCHEMA_OID",
    "SHARE_RIGHTS",
    "company_super_schema",
    "control_closure",
    "control_pairs",
    "controls_pairs_from_graph",
    "run_control_metalog",
    "stakes_from_graph",
    "ShareholdingConfig",
    "ShareholdingData",
    "generate_company_kg",
    "generate_shareholding_data",
    "generate_shareholding_graph",
    "stakes_as_tuples",
    "company_groups",
    "families_by_surname",
    "partnerships",
    "related_pairs",
    "integrated_ownership",
    "integrated_ownership_series",
    "iown_pairs_from_graph",
    "ownership_matrix",
    "programs",
]
