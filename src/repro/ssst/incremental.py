"""Registry-level incremental updates over a retained materialization.

The paper's deployment regime (Section 6) re-runs Algorithm 2 from
scratch whenever the source registry changes.  This module provides the
model-level half of the alternative: a registry delta (companies,
persons, stakes added or removed from the plain data graph) is encoded
into the exact ``I_SM_*`` instance-construct facts the load phase would
have produced for those elements — mirroring
:meth:`repro.core.instances.SuperInstance.to_dictionary`, whose OIDs are
deterministic functions of the element ids — and then pushed through the
three retained chase states (load, reason, flush views) with
:meth:`repro.vadalog.engine.Engine.apply_delta` instead of re-running
any of them.

Only :class:`RegistryDelta` / :class:`UpdateReport` and the fact
encoding live here; the orchestration is
:meth:`repro.ssst.materializer.IntensionalMaterializer.update`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.oid import construct_oid
from repro.core.schema import SuperSchema
from repro.deploy.delta import FlushDelta
from repro.errors import SchemaError
from repro.vadalog.incremental import DeltaResult

Fact = Tuple[Any, ...]

#: ``(node_id, type_name, properties)``
NodeSpec = Tuple[Any, str, Dict[str, Any]]
#: ``(edge_id, source, target, type_name, properties)``
EdgeSpec = Tuple[Any, Any, Any, str, Dict[str, Any]]


@dataclass
class RegistryDelta:
    """A batch of changes to the source registry (the plain data graph)."""

    add_nodes: List[NodeSpec] = field(default_factory=list)
    add_edges: List[EdgeSpec] = field(default_factory=list)
    remove_nodes: List[Any] = field(default_factory=list)
    remove_edges: List[Any] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.add_nodes or self.add_edges
            or self.remove_nodes or self.remove_edges
        )

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RegistryDelta":
        """Parse the ``kgmodel update --from`` changes format.

        .. code-block:: json

            {"add_nodes":  [{"id": "c9", "type": "Business",
                             "properties": {"name": "NewCo"}}],
             "add_edges":  [{"id": "o9", "source": "c1", "target": "c9",
                             "type": "OWNS",
                             "properties": {"percentage": 0.6}}],
             "remove_nodes": ["c3"],
             "remove_edges": ["o7"]}
        """
        known = {"add_nodes", "add_edges", "remove_nodes", "remove_edges"}
        unknown = set(payload) - known
        if unknown:
            raise SchemaError(
                f"unknown change keys {sorted(unknown)} (expected {sorted(known)})"
            )
        delta = cls()
        for entry in payload.get("add_nodes", []):
            try:
                delta.add_nodes.append(
                    (entry["id"], entry["type"], dict(entry.get("properties", {})))
                )
            except (KeyError, TypeError) as exc:
                raise SchemaError(f"bad add_nodes entry {entry!r}: {exc}") from exc
        for entry in payload.get("add_edges", []):
            try:
                delta.add_edges.append(
                    (
                        entry["id"], entry["source"], entry["target"],
                        entry["type"], dict(entry.get("properties", {})),
                    )
                )
            except (KeyError, TypeError) as exc:
                raise SchemaError(f"bad add_edges entry {entry!r}: {exc}") from exc
        delta.remove_nodes.extend(payload.get("remove_nodes", []))
        delta.remove_edges.extend(payload.get("remove_edges", []))
        return delta


@dataclass
class UpdateReport:
    """Outcome of one :meth:`IntensionalMaterializer.update` call."""

    instance: Any  # the refreshed enriched SuperInstance
    #: Net engine changes per retained chase state, in order.
    delta_load: Optional[DeltaResult] = None
    delta_reason: Optional[DeltaResult] = None
    delta_flush: Optional[DeltaResult] = None
    #: Plain-graph difference of the enriched instance — what a deployed
    #: store needs to catch up (``store.apply_flush_delta``).
    flush_delta: Optional[FlushDelta] = None
    #: Dictionary-graph elements added/removed by the delta flush.
    flushed: int = 0
    flush_dropped_edges: int = 0
    #: Chase-maintenance time only (the paper's "reasoning" phase).
    engine_seconds: float = 0.0
    #: Total wall time of the update, decode/diff included.
    update_seconds: float = 0.0

    @property
    def strata_recomputed(self) -> int:
        return sum(
            d.strata_recomputed
            for d in (self.delta_load, self.delta_reason, self.delta_flush)
            if d is not None
        )

    def phase_breakdown(self) -> Dict[str, float]:
        return {
            "load": self.delta_load.elapsed_seconds if self.delta_load else 0.0,
            "reason": self.delta_reason.elapsed_seconds if self.delta_reason else 0.0,
            "flush": self.delta_flush.elapsed_seconds if self.delta_flush else 0.0,
        }


# ---------------------------------------------------------------------------
# I_SM_* fact encoding (mirrors SuperInstance.to_dictionary)
# ---------------------------------------------------------------------------


@dataclass
class EncodedConstructs:
    """The staging facts and dictionary-graph elements of some registry
    elements — the same encoding ``to_dictionary`` + ``graph_to_database``
    produce, computed directly for a delta."""

    facts: Dict[str, Set[Fact]] = field(default_factory=dict)
    #: ``(oid, label, properties)`` dictionary-graph nodes.
    graph_nodes: List[Tuple[str, str, Dict[str, Any]]] = field(default_factory=list)
    #: ``(edge_id, source, target, label, properties)`` graph edges.
    graph_edges: List[Tuple[str, str, str, str, Dict[str, Any]]] = field(
        default_factory=list
    )

    def _fact(self, label: str, fact: Fact) -> None:
        self.facts.setdefault(label, set()).add(fact)

    def node(self, oid: str, label: str, **properties: Any) -> None:
        self.graph_nodes.append((oid, label, properties))
        if label == "I_SM_Attribute":
            third = properties.get("value")
        else:
            third = properties.get("sourceOID")
        self._fact(label, (oid, properties.get("instanceOID"), third))

    def edge(
        self, edge_id: str, source: str, target: str, label: str, ioid: Any
    ) -> None:
        self.graph_edges.append(
            (edge_id, source, target, label, {"instanceOID": ioid})
        )
        self._fact(label, (edge_id, source, target, ioid))

    def merge(self, other: "EncodedConstructs") -> None:
        for label, facts in other.facts.items():
            self.facts.setdefault(label, set()).update(facts)
        self.graph_nodes.extend(other.graph_nodes)
        self.graph_edges.extend(other.graph_edges)


def instance_iid(instance_oid: Any, kind: str, *parts: Any) -> str:
    """The deterministic OID ``to_dictionary`` mints for an instance
    construct — recomputable from the element id alone."""
    return construct_oid(instance_oid, f"i-{kind}", *parts)


def encode_node(
    schema: SuperSchema,
    instance_oid: Any,
    node_id: Any,
    type_name: str,
    properties: Dict[str, Any],
) -> EncodedConstructs:
    """Encode one plain node as its ``I_SM_*`` constructs.

    Raises :class:`~repro.errors.SchemaError` for an unknown type.
    Properties the schema does not model are skipped, exactly as the
    full load path does.
    """
    sm_node = schema.get_node(type_name)
    out = EncodedConstructs()
    node_iid = instance_iid(instance_oid, "node", node_id)
    out.node(
        node_iid, "I_SM_Node", instanceOID=instance_oid, sourceOID=node_id
    )
    out.edge(
        f"{node_iid}-[SM_REFERENCES]->{sm_node.oid}",
        node_iid, sm_node.oid, "SM_REFERENCES", instance_oid,
    )
    attributes = {a.name: a for a in schema.inherited_attributes(sm_node)}
    for name, value in properties.items():
        attribute = attributes.get(name)
        if attribute is None:
            continue
        attr_iid = instance_iid(instance_oid, "nattr", node_id, name)
        out.node(
            attr_iid, "I_SM_Attribute", instanceOID=instance_oid, value=value
        )
        out.edge(
            f"{attr_iid}-[SM_REFERENCES]->{attribute.oid}",
            attr_iid, attribute.oid, "SM_REFERENCES", instance_oid,
        )
        out.edge(
            f"{node_iid}-[I_SM_HAS_NODE_PROPERTY]->{attr_iid}",
            node_iid, attr_iid, "I_SM_HAS_NODE_PROPERTY", instance_oid,
        )
    return out


def encode_edge(
    schema: SuperSchema,
    instance_oid: Any,
    edge_id: Any,
    source: Any,
    target: Any,
    type_name: str,
    properties: Dict[str, Any],
) -> EncodedConstructs:
    """Encode one plain edge as its ``I_SM_*`` constructs.

    The endpoint ``I_SM_Node`` OIDs are recomputed from the endpoint
    ids (they are deterministic), so the endpoints need not be part of
    the same delta.
    """
    sm_edge = schema.get_edge(type_name)
    out = EncodedConstructs()
    edge_iid = instance_iid(instance_oid, "edge", edge_id)
    source_iid = instance_iid(instance_oid, "node", source)
    target_iid = instance_iid(instance_oid, "node", target)
    out.node(
        edge_iid, "I_SM_Edge", instanceOID=instance_oid, sourceOID=edge_id
    )
    out.edge(
        f"{edge_iid}-[SM_REFERENCES]->{sm_edge.oid}",
        edge_iid, sm_edge.oid, "SM_REFERENCES", instance_oid,
    )
    out.edge(
        f"{edge_iid}-[I_SM_FROM]", edge_iid, source_iid, "I_SM_FROM",
        instance_oid,
    )
    out.edge(
        f"{edge_iid}-[I_SM_TO]", edge_iid, target_iid, "I_SM_TO",
        instance_oid,
    )
    attributes = {a.name: a for a in sm_edge.attributes}
    for name, value in properties.items():
        attribute = attributes.get(name)
        if attribute is None:
            continue
        attr_iid = instance_iid(instance_oid, "eattr", edge_id, name)
        out.node(
            attr_iid, "I_SM_Attribute", instanceOID=instance_oid, value=value
        )
        out.edge(
            f"{attr_iid}-[SM_REFERENCES]->{attribute.oid}",
            attr_iid, attribute.oid, "SM_REFERENCES", instance_oid,
        )
        out.edge(
            f"{edge_iid}-[I_SM_HAS_EDGE_PROPERTY]->{attr_iid}",
            edge_iid, attr_iid, "I_SM_HAS_EDGE_PROPERTY", instance_oid,
        )
    return out
