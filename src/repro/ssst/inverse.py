"""Quasi-inverse instance mappings (Algorithm 2, line 4 / Section 6).

"Given a translation mapping from super-schema instances to schema
instances M(M), we translate it into Vadalog and compute its inverse
V(M)^-1, which reads the data into the super-model.  ...  information
loss can take place only in the elimination phase of the translation.
Conversely, the copy phase is invertible by construction.  Thus, we
simplify V(M)^-1 into (V(M).copy)^-1."

For the relational model the copy phase laid entities out as one row per
generalization member (keyed by the inherited identifier, with
``isA_<Child>`` foreign keys) and many-to-many edges as bridge tables;
:func:`relational_instance_to_graph` inverts exactly that layout back
into a plain typed property graph.  The deliberate information loss of
Eliminate (e.g. which of several non-disjoint children a row "really"
came from) is resolved by the most-specific-member rule, which is the
quasi-inverse choice.

:func:`graph_instance_to_relational` is the forward instance mapping
(M(M).instance): it deploys a plain typed graph into the in-memory
relational engine, so round-trip tests and the end-to-end benchmarks can
drive the full Algorithm 2 loop through a real target system.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.schema import SuperSchema
from repro.core.supermodel import SMEdge, SMNode
from repro.deploy.relational_engine import RelationalEngine
from repro.errors import DeploymentError
from repro.graph.property_graph import PropertyGraph
from repro.models.relational import RelationalSchema


def _hierarchy_chain(schema: SuperSchema, node: SMNode) -> List[SMNode]:
    """The node and its ancestors, most specific first."""
    return [node] + schema.ancestors_of(node)


def _entity_key(schema: SuperSchema, node: SMNode, properties: Dict[str, Any]):
    identifier = schema.identifier_of(node)
    if not identifier:
        raise DeploymentError(
            f"type {node.type_name!r} has no identifier; cannot deploy "
            "relationally"
        )
    return tuple(properties.get(a.name) for a in identifier)


def _edge_fk_owner(schema: SuperSchema, edge: SMEdge) -> Optional[Tuple[SMNode, SMNode]]:
    """(fk-holder declared type, referenced declared type) for non-M:N
    edges, following the normalization of the relational mapping."""
    if edge.is_many_to_many:
        return None
    if edge.is_fun1:  # many-to-one (or 1:1): FK on the source
        return edge.source, edge.target
    return edge.target, edge.source  # one-to-many: flipped


def collect_relational_rows(
    schema: SuperSchema,
    data: PropertyGraph,
) -> Dict[str, List[Dict[str, Any]]]:
    """The complete relational row image of a plain typed instance graph.

    This is the pure half of :func:`graph_instance_to_relational`: the
    same one-row-per-hierarchy-member layout, FK patches, and bridge
    tables, computed without touching an engine.  Edge FK patches mutate
    entity rows in place, so the edge pass must complete before the rows
    are read — which is why this returns only once everything is merged.
    The streaming sinks diff two of these images (as per-table row
    multisets) to maintain a deployed engine incrementally.
    """
    # Collect per-entity rows first: one row per hierarchy member.
    rows: Dict[str, List[Dict[str, Any]]] = {}
    fk_patches: Dict[Tuple[str, Any], Dict[str, Any]] = {}
    key_of_node: Dict[Any, Tuple[Any, ...]] = {}
    type_of_node: Dict[Any, SMNode] = {}

    for node in data.nodes():
        if node.label is None or not schema.has_node(node.label):
            continue
        sm_node = schema.get_node(node.label)
        key = _entity_key(schema, sm_node, node.properties)
        key_of_node[node.id] = key
        type_of_node[node.id] = sm_node
        chain = _hierarchy_chain(schema, sm_node)
        id_names = [a.name for a in schema.identifier_of(sm_node)]
        for member in chain:
            row: Dict[str, Any] = {}
            for attribute in member.attributes:
                if attribute.name in node.properties:
                    row[attribute.name] = node.properties[attribute.name]
            if schema.parents_of(member):
                for name, value in zip(id_names, key):
                    row[f"isA_{member.type_name}_{name}"] = value
            else:
                for name, value in zip(id_names, key):
                    row.setdefault(name, value)
            rows.setdefault(member.type_name, []).append(row)
            fk_patches[(member.type_name, key)] = row

    # Edges: FK columns on entity rows, or bridge-table rows.
    bridge_rows: Dict[str, List[Dict[str, Any]]] = {}
    for edge in data.edges():
        if edge.label is None or not schema.has_edge(edge.label):
            continue
        sm_edge = schema.get_edge(edge.label)
        source_key = key_of_node.get(edge.source)
        target_key = key_of_node.get(edge.target)
        if source_key is None or target_key is None:
            continue
        owner = _edge_fk_owner(schema, sm_edge)
        if owner is not None:
            holder_type, referenced_type = owner
            holder_key = source_key if holder_type is sm_edge.source else target_key
            referenced_key = target_key if holder_type is sm_edge.source else source_key
            row = fk_patches.get((holder_type.type_name, holder_key))
            if row is None:
                continue
            id_names = [a.name for a in schema.identifier_of(referenced_type)]
            for name, value in zip(id_names, referenced_key):
                row[f"{sm_edge.type_name}_{name}"] = value
            for attribute in sm_edge.attributes:
                if attribute.name in edge.properties:
                    row[attribute.name] = edge.properties[attribute.name]
        else:
            source_ids = [a.name for a in schema.identifier_of(sm_edge.source)]
            target_ids = [a.name for a in schema.identifier_of(sm_edge.target)]
            row = {}
            for name, value in zip(source_ids, source_key):
                row[f"{sm_edge.type_name}_src_{name}"] = value
            for name, value in zip(target_ids, target_key):
                row[f"{sm_edge.type_name}_tgt_{name}"] = value
            for attribute in sm_edge.attributes:
                if attribute.name in edge.properties:
                    row[attribute.name] = edge.properties[attribute.name]
            bridge_rows.setdefault(sm_edge.type_name, []).append(row)

    for table_name, table_rows in bridge_rows.items():
        rows.setdefault(table_name, []).extend(table_rows)
    return rows


def graph_instance_to_relational(
    schema: SuperSchema,
    data: PropertyGraph,
    engine: RelationalEngine,
) -> int:
    """Deploy a plain typed instance graph into the relational engine.

    Returns the number of rows inserted.  The engine must already have
    the translated schema deployed (tables + foreign keys).
    """
    rows = collect_relational_rows(schema, data)
    inserted = 0
    with engine.deferred():
        for table_name, table_rows in rows.items():
            inserted += engine.insert_many(table_name, table_rows)
    return inserted


def relational_instance_to_graph(
    schema: SuperSchema,
    engine: RelationalEngine,
    name: str = "instance",
) -> PropertyGraph:
    """The quasi-inverse: rebuild a plain typed graph from the engine.

    Entities are identified by their key values (node ids become the
    joined identifier), labeled with the most specific member table that
    contains them, and merged across the hierarchy.
    """
    graph = PropertyGraph(name)

    # Depth of each type (root = 0), to pick the most specific member.
    def depth(node: SMNode) -> int:
        return len(schema.ancestors_of(node))

    entity_type: Dict[Tuple[str, Tuple[Any, ...]], SMNode] = {}
    entity_props: Dict[Tuple[str, Tuple[Any, ...]], Dict[str, Any]] = {}

    def root_of(node: SMNode) -> SMNode:
        chain = _hierarchy_chain(schema, node)
        return chain[-1]

    for node in sorted(schema.nodes, key=depth):
        if node.type_name not in engine.tables():
            continue
        id_names = [a.name for a in schema.identifier_of(node)]
        if not id_names:
            continue
        is_child = bool(schema.parents_of(node))
        key_columns = (
            [f"isA_{node.type_name}_{n}" for n in id_names] if is_child else id_names
        )
        root_name = root_of(node).type_name
        for row in engine.rows(node.type_name):
            key = tuple(row.get(c) for c in key_columns)
            if any(v is None for v in key):
                continue
            entity = (root_name, key)
            current = entity_type.get(entity)
            if current is None or depth(node) > depth(current):
                entity_type[entity] = node
            properties = entity_props.setdefault(entity, {})
            for attribute in node.attributes:
                value = row.get(attribute.name)
                if value is not None:
                    properties[attribute.name] = value
            if not is_child:
                for n, v in zip(id_names, key):
                    properties.setdefault(n, v)

    node_id_of: Dict[Tuple[str, Tuple[Any, ...]], Any] = {}
    for entity, node in sorted(entity_type.items(), key=lambda kv: str(kv[0])):
        node_id = "|".join(str(v) for v in entity[1])
        node_id_of[entity] = node_id
        graph.add_node(node_id, node.type_name, **entity_props[entity])

    def entity_id(declared: SMNode, key: Tuple[Any, ...]) -> Optional[Any]:
        return node_id_of.get((root_of(declared).type_name, key))

    for edge in schema.edges:
        owner = _edge_fk_owner(schema, edge)
        if owner is not None:
            holder_type, referenced_type = owner
            if holder_type.type_name not in engine.tables():
                continue
            holder_ids = [a.name for a in schema.identifier_of(holder_type)]
            referenced_ids = [a.name for a in schema.identifier_of(referenced_type)]
            fk_columns = [f"{edge.type_name}_{n}" for n in referenced_ids]
            is_child = bool(schema.parents_of(holder_type))
            key_columns = (
                [f"isA_{holder_type.type_name}_{n}" for n in holder_ids]
                if is_child else holder_ids
            )
            for row in engine.rows(holder_type.type_name):
                reference = tuple(row.get(c) for c in fk_columns)
                if any(v is None for v in reference):
                    continue
                holder_key = tuple(row.get(c) for c in key_columns)
                source_id = entity_id(holder_type, holder_key)
                target_id = entity_id(referenced_type, reference)
                if source_id is None or target_id is None:
                    continue
                if holder_type is edge.source:
                    endpoints = (source_id, target_id)
                else:
                    endpoints = (target_id, source_id)
                properties = {
                    a.name: row[a.name]
                    for a in edge.attributes
                    if row.get(a.name) is not None
                }
                graph.add_edge(*endpoints, edge.type_name, **properties)
        else:
            if edge.type_name not in engine.tables():
                continue
            source_ids = [a.name for a in schema.identifier_of(edge.source)]
            target_ids = [a.name for a in schema.identifier_of(edge.target)]
            for row in engine.rows(edge.type_name):
                source_key = tuple(
                    row.get(f"{edge.type_name}_src_{n}") for n in source_ids
                )
                target_key = tuple(
                    row.get(f"{edge.type_name}_tgt_{n}") for n in target_ids
                )
                source_id = entity_id(edge.source, source_key)
                target_id = entity_id(edge.target, target_key)
                if source_id is None or target_id is None:
                    continue
                properties = {
                    a.name: row[a.name]
                    for a in edge.attributes
                    if row.get(a.name) is not None
                }
                graph.add_edge(source_id, target_id, edge.type_name, **properties)
    return graph
