"""SSST: schema translation (Algorithm 1) and intensional materialization
(Algorithm 2)."""

from repro.ssst.checkpoint import MaterializationCheckpoint, run_fingerprint
from repro.ssst.incremental import RegistryDelta, UpdateReport
from repro.ssst.inverse import (
    graph_instance_to_relational,
    relational_instance_to_graph,
)
from repro.ssst.materializer import (
    IntensionalMaterializer,
    MaterializationReport,
    RetainedMaterialization,
)
from repro.ssst.sigma_relational import (
    CompiledRelationalSigma,
    reason_over_relational,
    translate_sigma_for_relational,
)
from repro.ssst.translator import SSST, TranslationResult
from repro.ssst.views import catalog_from_super_schema, input_views, output_views

__all__ = [
    "graph_instance_to_relational",
    "relational_instance_to_graph",
    "IntensionalMaterializer",
    "MaterializationCheckpoint",
    "MaterializationReport",
    "RegistryDelta",
    "RetainedMaterialization",
    "UpdateReport",
    "run_fingerprint",
    "CompiledRelationalSigma",
    "reason_over_relational",
    "translate_sigma_for_relational",
    "SSST",
    "TranslationResult",
    "catalog_from_super_schema",
    "input_views",
    "output_views",
]
