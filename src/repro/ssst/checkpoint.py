"""Checkpointed materialization: persist completed chase phases.

Algorithm 2 runs as three chase invocations (load / reason / flush).
The reasoning phase dominates wall-clock time — the paper reports ~160
minutes of reasoning against ~15 minutes of load+flush for the Bank of
Italy KG — so an interruption (budget trip, crash fault, operator kill)
late in a run wastes almost the entire investment.

:class:`MaterializationCheckpoint` is a directory-backed store that the
:class:`~repro.ssst.materializer.IntensionalMaterializer` writes after
each phase that reached fixpoint, and reads back on the next run to skip
every phase already completed.  Each phase snapshot captures the two
mutable artifacts of the pipeline at that point — the staging
:class:`~repro.vadalog.database.Database` and the dictionary
:class:`~repro.graph.property_graph.PropertyGraph` — encoded as JSON via
a value codec that round-trips labeled nulls and Skolem values.

A checkpoint is bound to its inputs by a fingerprint (schema, data,
program, instance OID): resuming against different inputs silently
starts fresh instead of splicing incompatible state.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.graph.property_graph import PropertyGraph
from repro.obs.tracer import NullTracer, Tracer
from repro.vadalog.database import Database
from repro.vadalog.terms import Null, SkolemValue

#: Phases eligible for checkpointing, in pipeline order.  Flush is never
#: checkpointed: it is cheap and idempotent (existing OIDs are skipped),
#: so re-running it is the simplest way to guarantee a complete store.
PHASES: Tuple[str, ...] = ("load", "reason")

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Value codec: JSON round-tripping for chase term universes
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode a chase value (constant, null, Skolem, tuple) as JSON."""
    if isinstance(value, Null):
        return {"__kind__": "null", "label": value.label, "ordinal": value.ordinal}
    if isinstance(value, SkolemValue):
        return {
            "__kind__": "skolem",
            "functor": value.functor,
            "arguments": [encode_value(a) for a in value.arguments],
        }
    if isinstance(value, tuple):
        return {"__kind__": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise CheckpointError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(payload, dict):
        kind = payload.get("__kind__")
        if kind == "null":
            return Null(payload["label"], payload["ordinal"])
        if kind == "skolem":
            return SkolemValue(
                payload["functor"],
                tuple(decode_value(a) for a in payload["arguments"]),
            )
        if kind == "tuple":
            return tuple(decode_value(v) for v in payload["items"])
        raise CheckpointError(f"unknown encoded value kind {kind!r}")
    if isinstance(payload, list):
        return [decode_value(v) for v in payload]
    return payload


def _canonical(value: Any) -> str:
    """Deterministic JSON rendering of an encoded value (sort key)."""
    return json.dumps(value, sort_keys=True)


# ----------------------------------------------------------------------
# Artifact (de)serialization
# ----------------------------------------------------------------------
def database_payload(database: Database) -> Dict[str, Any]:
    """Serialize every relation of a database, deterministically ordered."""
    payload: Dict[str, Any] = {}
    for predicate in sorted(database.predicates()):
        relation = database.relation(predicate)
        facts = sorted(
            ([encode_value(term) for term in fact] for fact in relation),
            key=_canonical,
        )
        payload[predicate] = {"arity": relation.arity, "facts": facts}
    return payload


def restore_database(payload: Dict[str, Any]) -> Database:
    database = Database()
    for predicate, entry in payload.items():
        relation = database.relation(predicate)
        relation.arity = entry["arity"]
        relation.add_many(
            tuple(decode_value(term) for term in fact) for fact in entry["facts"]
        )
    return database


def graph_payload(graph: PropertyGraph) -> Dict[str, Any]:
    """Serialize a property graph, deterministically ordered."""
    nodes = sorted(
        (
            {
                "id": encode_value(node.id),
                "label": node.label,
                "properties": {
                    k: encode_value(v) for k, v in node.properties.items()
                },
            }
            for node in graph.nodes()
        ),
        key=lambda n: _canonical(n["id"]),
    )
    edges = sorted(
        (
            {
                "id": encode_value(edge.id),
                "source": encode_value(edge.source),
                "target": encode_value(edge.target),
                "label": edge.label,
                "properties": {
                    k: encode_value(v) for k, v in edge.properties.items()
                },
            }
            for edge in graph.edges()
        ),
        key=lambda e: _canonical(e["id"]),
    )
    return {"name": graph.name, "nodes": nodes, "edges": edges}


def restore_graph(payload: Dict[str, Any]) -> PropertyGraph:
    graph = PropertyGraph(payload.get("name", "graph"))
    for node in payload["nodes"]:
        graph.add_node(
            decode_value(node["id"]),
            node["label"],
            **{k: decode_value(v) for k, v in node["properties"].items()},
        )
    for edge in payload["edges"]:
        graph.add_edge(
            decode_value(edge["source"]),
            decode_value(edge["target"]),
            edge["label"],
            edge_id=decode_value(edge["id"]),
            **{k: decode_value(v) for k, v in edge["properties"].items()},
        )
    return graph


def run_fingerprint(schema, data: PropertyGraph, sigma, instance_oid: Any) -> str:
    """Bind a checkpoint to its inputs.

    The schema contributes through its dictionary serialization (its
    canonical graph form), the data through the same graph codec the
    checkpoints use, and the MetaLog program through its AST repr (frozen
    dataclasses render deterministically).
    """
    schema_graph = schema.to_dictionary(PropertyGraph("fingerprint"))
    material = json.dumps(
        {
            "schema": graph_payload(schema_graph),
            "data": graph_payload(data),
            "sigma": repr(sigma),
            "instance_oid": repr(instance_oid),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The checkpoint store
# ----------------------------------------------------------------------
class MaterializationCheckpoint:
    """Directory-backed phase snapshots for one materialization run.

    Usage (the materializer does this internally)::

        checkpoint = MaterializationCheckpoint("out/ckpt")
        checkpoint.begin(run_fingerprint(schema, data, sigma, oid))
        phase = checkpoint.resume_phase()       # None, "load", or "reason"
        ...
        checkpoint.save_phase("load", database=db, graph=dictionary.graph)

    Phase files are written to a temporary name and atomically renamed;
    the manifest is updated last, so a crash mid-save leaves the previous
    consistent state intact.
    """

    def __init__(self, directory: str, tracer: Optional[Tracer] = None):
        self.directory = str(directory)
        self.tracer = tracer or NullTracer()
        self._fingerprint: Optional[str] = None
        self._manifest: Dict[str, Any] = {}

    # -- lifecycle -----------------------------------------------------
    def begin(self, fingerprint: str) -> None:
        """Bind to a run; a stale checkpoint (other inputs) is discarded."""
        os.makedirs(self.directory, exist_ok=True)
        self._fingerprint = fingerprint
        manifest = self._read_manifest()
        if manifest.get("fingerprint") == fingerprint and (
            manifest.get("version") == _FORMAT_VERSION
        ):
            self._manifest = manifest
            return
        if manifest:
            self.tracer.count("deploy.checkpoint_stale", 1)
        self.clear()

    def clear(self) -> None:
        """Drop every phase snapshot (keeps the directory)."""
        if self._fingerprint is None and not os.path.isdir(self.directory):
            return
        for phase in PHASES:
            path = self._phase_path(phase)
            if os.path.exists(path):
                os.remove(path)
        self._manifest = {
            "version": _FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "phases": {},
        }
        if self._fingerprint is not None:
            self._write_manifest()

    # -- queries -------------------------------------------------------
    def completed_phases(self) -> List[str]:
        phases = self._manifest.get("phases", {})
        return [p for p in PHASES if p in phases]

    def has_phase(self, phase: str) -> bool:
        return phase in self._manifest.get("phases", {})

    def resume_phase(self) -> Optional[str]:
        """The latest completed phase to restart from, if any."""
        completed = self.completed_phases()
        return completed[-1] if completed else None

    # -- persistence ---------------------------------------------------
    def save_phase(
        self,
        phase: str,
        database: Database,
        graph: PropertyGraph,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if phase not in PHASES:
            raise CheckpointError(f"unknown checkpoint phase {phase!r}")
        if self._fingerprint is None:
            raise CheckpointError("checkpoint not bound: call begin() first")
        payload = {
            "phase": phase,
            "database": database_payload(database),
            "graph": graph_payload(graph),
            "meta": meta or {},
        }
        path = self._phase_path(phase)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        self._manifest.setdefault("phases", {})[phase] = {
            "file": os.path.basename(path)
        }
        self._write_manifest()
        self.tracer.count("deploy.checkpoint_saved", 1)

    def load_phase(self, phase: str) -> Tuple[Database, PropertyGraph, Dict[str, Any]]:
        if not self.has_phase(phase):
            raise CheckpointError(f"no checkpoint for phase {phase!r}")
        try:
            with open(self._phase_path(phase), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint for phase {phase!r}: {exc}"
            ) from exc
        database = restore_database(payload["database"])
        graph = restore_graph(payload["graph"])
        self.tracer.count("deploy.checkpoint_restored", 1)
        return database, graph, payload.get("meta", {})

    # -- internals -----------------------------------------------------
    def _phase_path(self, phase: str) -> str:
        return os.path.join(self.directory, f"phase-{phase}.json")

    def _write_manifest(self) -> None:
        path = os.path.join(self.directory, _MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)

    def _read_manifest(self) -> Dict[str, Any]:
        path = os.path.join(self.directory, _MANIFEST)
        if not os.path.exists(path):
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {}

    def __repr__(self) -> str:
        return (
            f"MaterializationCheckpoint({self.directory!r}, "
            f"phases={self.completed_phases()})"
        )
