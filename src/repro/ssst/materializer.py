"""Intensional-component materialization — Algorithm 2 of the paper.

.. code-block:: none

    Input: instance D of schema S of a model M, an intensional
    component Sigma;  Output: materializes the intensional component.
    1: M      <- select candidate mappings to M from REPO
    2: M(M)   <- prompt for implementation strategy
    3: V(M)   <- MTV.translateToVadalog(M(M).instance)
    4: I      <- Reason(D, V(M)^-1)          (import D into the super-model)
    5: V_I    <- build high-level input views
    6: V_O    <- build high-level output views
    7: V(Sig) <- MTV.translateToVadalog(Sigma u V_I u V_O)
    8: I'     <- Reason(I, V(Sigma))
    9: D      <- Reason(I', V(M))            (materialize into D)

Following the performance note of Section 6 ("we can build the instance
I' incrementally, in a stratified way, by first applying V_I, and
materializing the temporary result as a database instance in a staging
area; then, the standard reasoning process can take place; finally, I'
is stored back"), the three phases run as separate chase invocations and
are timed individually — the load / reason / flush breakdown the paper
reports (~160 min reasoning vs ~15 min load+flush for the Bank of Italy
KG) is reproduced by the E-PERF benchmark on synthetic data.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.core.instances import SuperInstance
from repro.core.schema import SuperSchema
from repro.deploy.delta import FlushDelta
from repro.errors import EvaluationError, SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.metalog.ast import MetaProgram
from repro.metalog.mtv import compile_metalog, graph_to_database
from repro.obs.governor import STATUS_FIXPOINT, BudgetExceeded
from repro.obs.tracer import NullTracer, Tracer
from repro.ssst.incremental import (
    EncodedConstructs,
    RegistryDelta,
    UpdateReport,
    encode_edge,
    encode_node,
)
from repro.ssst.views import catalog_from_super_schema, input_views, output_views
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine, EvaluationResult, EvaluationStats
from repro.vadalog.terms import fact_sort_key

#: Instance-construct labels extracted from the dictionary for phase 1.
_INSTANCE_NODE_LABELS = ("I_SM_Node", "I_SM_Edge", "I_SM_Attribute")
_INSTANCE_EDGE_LABELS = (
    "SM_REFERENCES", "I_SM_FROM", "I_SM_TO",
    "I_SM_HAS_NODE_PROPERTY", "I_SM_HAS_EDGE_PROPERTY",
)


@dataclass
class MaterializationReport:
    """Outcome of one Algorithm 2 run.

    The per-phase timings come from the materializer's tracer spans
    (``materialize.load`` / ``materialize.reason`` / ``materialize.flush``)
    — the report keeps its flat ``*_seconds`` fields for callers, but the
    spans are the source of truth and land in any exported trace.
    ``status``/``violation`` carry the first budget trip from any of the
    three chase invocations, so a governed run can be recognized as
    truncated no matter which phase hit the limit.
    """

    instance: SuperInstance  # the enriched instance (derived parts included)
    derived_counts: Dict[str, int] = field(default_factory=dict)
    load_seconds: float = 0.0
    reason_seconds: float = 0.0
    flush_seconds: float = 0.0
    reason_stats: Optional[EvaluationStats] = None
    status: str = STATUS_FIXPOINT
    violation: Optional[BudgetExceeded] = None
    #: Derived I_SM_* edges dropped at flush because an endpoint never
    #: made it into the dictionary graph (a lossy program, not a bug in
    #: the flush) — surfaced instead of silently discarded.
    flush_dropped_edges: int = 0
    #: Name of the checkpointed phase this run resumed from, if any.
    resumed_from: Optional[str] = None

    @property
    def truncated(self) -> bool:
        return self.status != STATUS_FIXPOINT

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.reason_seconds + self.flush_seconds

    def phase_breakdown(self) -> Dict[str, float]:
        return {
            "load": self.load_seconds,
            "reason": self.reason_seconds,
            "flush": self.flush_seconds,
        }


@dataclass
class _CompiledViews:
    """One MTV compilation: the translated program plus both view sets.

    Cached per (program text, schema identity, instance OID) — repeated
    ``materialize()``/``update()`` calls over the same inputs skip the
    MetaLog-to-Vadalog translation and the view synthesis entirely.  The
    entry keeps a strong reference to the schema so the identity key can
    never alias a collected object.
    """

    schema: SuperSchema
    sigma_catalog: Any
    compiled: Any
    v_in: Any
    v_out: Any


@dataclass
class RetainedMaterialization:
    """Everything ``update()`` needs to maintain a materialization.

    Built by ``materialize(..., retain=True)``: the three chase results
    (each carrying a retained
    :class:`~repro.vadalog.incremental.MaterializedState`), the source
    and dictionary graphs they were loaded from, and the current
    enriched plain graph (for computing deploy-level flush deltas).
    """

    schema: SuperSchema
    sigma: MetaProgram
    instance_oid: Any
    data: PropertyGraph
    dictionary: GraphDictionary
    result_load: EvaluationResult
    result_reason: EvaluationResult
    result_flush: EvaluationResult
    enriched: PropertyGraph
    updates_applied: int = 0


#: Compile-cache entries kept per materializer (oldest evicted first).
_COMPILE_CACHE_LIMIT = 8


@contextmanager
def _deferred_full_gc():
    """Defer full (gen-2) garbage collections for a registry-scale run.

    A from-scratch materialization allocates millions of long-lived
    containers (the dictionary graph, the chase extension); with the
    default thresholds CPython re-scans that whole heap every few
    thousand surviving allocations, which measures as multiple seconds
    of pause time per 50k-company run.  Almost everything the chase
    frees is acyclic and dies by refcount, so full cycles are deferred
    — not disabled — while young-generation collection keeps running.
    One full collection on exit picks up whatever cyclic garbage the
    run produced; thresholds are always restored.
    """
    if not gc.isenabled():  # caller manages GC — stay out of the way
        yield
        return
    gen0, gen1, gen2 = gc.get_threshold()
    gc.set_threshold(gen0, gen1, max(gen2, 1) * 50)
    try:
        yield
    finally:
        gc.set_threshold(gen0, gen1, gen2)
        gc.collect()


class IntensionalMaterializer:
    """Runs Algorithm 2 over a super-schema instance."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        tracer: Optional[Tracer] = None,
        workers: Optional[int] = None,
    ):
        # A caller-supplied engine keeps its own tracer (and its own
        # worker default); an implicit one joins the materializer's trace
        # so engine spans nest under the phase spans.
        self.tracer = tracer or NullTracer()
        self.engine = engine or Engine(tracer=tracer, workers=workers)
        self._compile_cache: Dict[Tuple[str, int, Any], _CompiledViews] = {}
        self._retained: Optional[RetainedMaterialization] = None

    @property
    def retained(self) -> Optional[RetainedMaterialization]:
        """The state kept by the last ``materialize(..., retain=True)``."""
        return self._retained

    def _compiled_views(
        self, schema: SuperSchema, sigma: MetaProgram, instance_oid: Any
    ) -> _CompiledViews:
        """MTV compilation + view synthesis, memoized.

        The key uses the program's text and the schema's object identity:
        re-parsing either yields a fresh object and a clean miss, while
        repeated calls with the same objects (the update loop, benchmark
        reruns) hit.  A mutated-in-place schema under the same identity
        is the caller's responsibility, as everywhere else in the SSST.
        """
        key = (str(sigma), id(schema), instance_oid)
        entry = self._compile_cache.get(key)
        if entry is not None and entry.schema is schema:
            return entry
        schema.ensure_attribute_oids()
        sigma_catalog = catalog_from_super_schema(schema)
        compiled = compile_metalog(sigma, sigma_catalog)
        v_in = input_views(
            schema,
            compiled.input_node_labels,
            compiled.input_edge_labels,
            instance_oid,
            sigma_catalog,
        )
        v_out = output_views(
            schema,
            compiled.derived_node_labels,
            compiled.derived_edge_labels,
            instance_oid,
            sigma_catalog,
        )
        entry = _CompiledViews(schema, sigma_catalog, compiled, v_in, v_out)
        while len(self._compile_cache) >= _COMPILE_CACHE_LIMIT:
            self._compile_cache.pop(next(iter(self._compile_cache)))
        self._compile_cache[key] = entry
        return entry

    @_deferred_full_gc()
    def materialize(
        self,
        schema: SuperSchema,
        data: PropertyGraph,
        sigma: MetaProgram,
        instance_oid: Any = 1,
        dictionary: Optional[GraphDictionary] = None,
        strict: bool = False,
        checkpoint=None,
        retain: bool = False,
        track_support: bool = False,
    ) -> MaterializationReport:
        """Materialize the intensional component ``sigma`` over ``data``.

        ``data`` is a plain typed property graph conforming to
        ``schema`` (node labels are type names).  The result's
        ``instance`` holds the enriched plain graph, including the
        derived nodes and edges.

        ``checkpoint`` (a
        :class:`~repro.ssst.checkpoint.MaterializationCheckpoint`)
        persists each phase that reaches fixpoint; passing the same
        checkpoint again resumes from the last completed phase instead
        of repeating it.  A checkpoint written for different inputs is
        discarded, not resumed.

        ``retain=True`` keeps the three chase states alive so later
        registry changes can be applied with :meth:`update` instead of
        re-running from scratch; ``track_support=True`` additionally
        records bounded support sets during the reason phase, making
        deletions cheaper at ~2x fact memory (both off by default — the
        from-scratch path pays nothing).
        """
        report = MaterializationReport(instance=None)  # filled below
        tracer = self.tracer
        retain = retain or track_support

        resume_from: Optional[str] = None
        if checkpoint is not None:
            from repro.ssst.checkpoint import run_fingerprint

            checkpoint.begin(run_fingerprint(schema, data, sigma, instance_oid))
            resume_from = checkpoint.resume_phase()

        # ---------------- Phase 1: LOAD (lines 1-4) ----------------
        with tracer.span("materialize.load") as load_span:
            if dictionary is None:
                dictionary = GraphDictionary()

            # Lines 3, 5-6: MTV compilation and the views, memoized per
            # (program text, schema, instance OID) — the update loop and
            # repeated runs skip the translation entirely.
            views = self._compiled_views(schema, sigma, instance_oid)
            compiled, v_in, v_out = views.compiled, views.v_in, views.v_out

            if resume_from is not None:
                if retain:
                    raise EvaluationError(
                        "retain=True cannot resume from a checkpoint: the "
                        "skipped phases leave no state to maintain — rerun "
                        "without --resume or without retain"
                    )
                staged_db, dictionary.graph, phase_meta = checkpoint.load_phase(
                    resume_from
                )
                dictionary.register(schema)
                report.resumed_from = resume_from
                load_span.set(resumed=True, phase=resume_from)
                tracer.count("deploy.replay_skipped", 1)
            else:
                if schema.schema_oid not in dictionary.schema_oids():
                    dictionary.store(schema)
                instance = SuperInstance.from_plain_graph(
                    schema, data, instance_oid, strict=strict
                )
                instance.to_dictionary(dictionary.graph)
                staging = graph_to_database(
                    dictionary.graph,
                    dictionary_catalog(),
                    node_labels=_INSTANCE_NODE_LABELS,
                    edge_labels=_INSTANCE_EDGE_LABELS,
                    columnar=self.engine.columnar,
                )
                # Materialize V_I into the staging area (Section 6
                # optimization).
                # The staging database is materializer-owned: let
                # every phase evaluate in place instead of copying the
                # full extension per run.  With ``retain=True`` the
                # three phase results must stay distinct snapshots (the
                # delta-chase baselines), so copies are kept.
                result_in = self.engine.run(
                    v_in, database=staging, retain_state=retain,
                    copy_database=retain,
                )
                self._merge_status(report, result_in)
                staged_db = result_in.database
                if checkpoint is not None and not report.truncated:
                    checkpoint.save_phase(
                        "load", database=staged_db, graph=dictionary.graph
                    )
        report.load_seconds = load_span.duration

        # ---------------- Phase 2: REASON (lines 7-8) ----------------
        with tracer.span("materialize.reason") as reason_span:
            if resume_from == "reason":
                report.derived_counts = dict(phase_meta.get("derived_counts", {}))
                result_db = staged_db
                reason_span.set(resumed=True)
                tracer.count("deploy.replay_skipped", 1)
            else:
                before = {
                    label: staged_db.count(label)
                    for label in sorted(
                        compiled.derived_node_labels | compiled.derived_edge_labels
                    )
                }
                result_sigma = self.engine.run(
                    compiled.program, database=staged_db,
                    retain_state=retain, track_support=track_support,
                    copy_database=retain,
                )
                report.reason_stats = result_sigma.stats
                self._merge_status(report, result_sigma)
                report.derived_counts = {
                    label: result_sigma.database.count(label) - before.get(label, 0)
                    for label in before
                }
                reason_span.set(
                    status=result_sigma.status,
                    facts_derived=result_sigma.stats.facts_derived,
                )
                result_db = result_sigma.database
                if checkpoint is not None and not report.truncated:
                    checkpoint.save_phase(
                        "reason",
                        database=result_db,
                        graph=dictionary.graph,
                        meta={"derived_counts": report.derived_counts},
                    )
        report.reason_seconds = reason_span.duration

        # ---------------- Phase 3: FLUSH (line 9) ----------------
        # Never checkpointed: flushing is idempotent (existing OIDs are
        # skipped), so re-running it always yields a complete store.
        with tracer.span("materialize.flush") as flush_span:
            result_out = self.engine.run(
                v_out, database=result_db, retain_state=retain,
                copy_database=retain,
            )
            self._merge_status(report, result_out)
            added, dropped = _flush_instance_facts(
                result_out.database, dictionary.graph
            )
            report.flush_dropped_edges = dropped
            flush_span.set(added=added, dropped_edges=dropped)
            report.instance = SuperInstance.from_dictionary(
                dictionary.graph, schema, instance_oid, name=f"{data.name}+derived"
            )
        report.flush_seconds = flush_span.duration
        if retain:
            # A budget-tripped run discards its engine state; there is
            # nothing consistent to maintain, so retention is dropped.
            self._retained = None
            if not report.truncated:
                self._retained = RetainedMaterialization(
                    schema=schema,
                    sigma=sigma,
                    instance_oid=instance_oid,
                    data=data,
                    dictionary=dictionary,
                    result_load=result_in,
                    result_reason=result_sigma,
                    result_flush=result_out,
                    enriched=report.instance.data,
                )
        return report

    # ------------------------------------------------------------------
    # Incremental maintenance (delta-chase instead of re-running Alg. 2)
    # ------------------------------------------------------------------
    def update(self, delta: RegistryDelta) -> UpdateReport:
        """Apply a registry delta to a retained materialization.

        Requires a prior ``materialize(..., retain=True)``.  The plain
        data graph and the dictionary graph are mutated in place; the
        three retained chase states are maintained with
        :meth:`~repro.vadalog.engine.Engine.apply_delta` (each state's
        net changes feed the next, exactly as the full phases chain);
        finally only the *changed* ``I_SM_*`` facts are flushed into the
        dictionary graph.  The returned report carries the refreshed
        enriched instance plus a
        :class:`~repro.deploy.delta.FlushDelta` for bringing deployed
        stores up to date without a reload.

        The result is fact-set-identical (up to labeled-null renaming)
        to re-running :meth:`materialize` from scratch on the mutated
        registry — the differential tests pin this down; strata the
        safety analysis cannot maintain incrementally are recomputed
        from their boundary, never approximated.
        """
        retained = self._retained
        if retained is None:
            raise EvaluationError(
                "update() needs a prior materialize(..., retain=True)"
            )
        start = perf_counter()
        tracer = self.tracer
        with tracer.span(
            "materialize.update",
            added=len(delta.add_nodes) + len(delta.add_edges),
            removed=len(delta.remove_nodes) + len(delta.remove_edges),
        ) as span:
            schema = retained.schema
            data = retained.data
            ioid = retained.instance_oid
            graph = retained.dictionary.graph

            removed_nodes, removed_edges = self._resolve_removals(data, delta)
            self._validate_additions(
                data,
                delta,
                {r[0] for r in removed_nodes},
                {r[0] for r in removed_edges},
            )

            # Encode both sides as the I_SM_* facts the load phase would
            # have produced (the OIDs are deterministic functions of the
            # element ids, so no chase run is needed to compute them).
            removal = EncodedConstructs()
            for record in removed_edges:
                removal.merge(encode_edge(schema, ioid, *record))
            for record in removed_nodes:
                removal.merge(encode_node(schema, ioid, *record))
            addition = EncodedConstructs()
            for record in delta.add_nodes:
                addition.merge(encode_node(schema, ioid, *record))
            for record in delta.add_edges:
                addition.merge(encode_edge(schema, ioid, *record))

            # Mutate the registry graph (edges first: node removal would
            # cascade them) and the dictionary's base constructs.
            for edge_id, *_rest in removed_edges:
                data.remove_edge(edge_id)
            for node_id, *_rest in removed_nodes:
                data.remove_node(node_id)
            for node_id, type_name, properties in delta.add_nodes:
                data.add_node(node_id, type_name, **properties)
            for edge_id, source, target, type_name, properties in delta.add_edges:
                data.add_edge(
                    source, target, type_name, edge_id=edge_id, **properties
                )
            for edge_id, *_rest in removal.graph_edges:
                if graph.has_edge(edge_id):
                    graph.remove_edge(edge_id)
            for oid, *_rest in removal.graph_nodes:
                if graph.has_node(oid):
                    graph.remove_node(oid)
            for oid, label, properties in addition.graph_nodes:
                if not graph.has_node(oid):
                    graph.add_node(oid, label, **properties)
            for edge_id, source, target, label, properties in addition.graph_edges:
                if not graph.has_edge(edge_id):
                    graph.add_edge(
                        source, target, label, edge_id=edge_id, **properties
                    )

            # Chase maintenance: each state's net changes are the next
            # state's extensional delta (load -> reason -> flush views).
            engine = self.engine
            delta_load = engine.apply_delta(
                retained.result_load,
                added=addition.facts, removed=removal.facts,
            )
            delta_reason = engine.apply_delta(
                retained.result_reason,
                added=delta_load.added, removed=delta_load.removed,
            )
            delta_flush = engine.apply_delta(
                retained.result_flush,
                added=delta_reason.added, removed=delta_reason.removed,
            )

            flushed, dropped = self._flush_delta_facts(delta_flush, graph)
            tracer.count("incr.flushed_delta", flushed)

            instance = SuperInstance.from_dictionary(
                graph, schema, ioid, name=f"{data.name}+derived"
            )
            flush_delta = FlushDelta.diff(retained.enriched, instance.data)
            retained.enriched = instance.data
            retained.updates_applied += 1
            engine_seconds = (
                delta_load.elapsed_seconds
                + delta_reason.elapsed_seconds
                + delta_flush.elapsed_seconds
            )
            span.set(
                flushed=flushed,
                dropped_edges=dropped,
                strata_recomputed=(
                    delta_load.strata_recomputed
                    + delta_reason.strata_recomputed
                    + delta_flush.strata_recomputed
                ),
            )
        return UpdateReport(
            instance=instance,
            delta_load=delta_load,
            delta_reason=delta_reason,
            delta_flush=delta_flush,
            flush_delta=flush_delta,
            flushed=flushed,
            flush_dropped_edges=dropped,
            engine_seconds=engine_seconds,
            update_seconds=perf_counter() - start,
        )

    @staticmethod
    def _resolve_removals(
        data: PropertyGraph, delta: RegistryDelta
    ) -> "Tuple[List[Tuple[Any, ...]], List[Tuple[Any, ...]]]":
        """Full records of every element the delta removes.

        Removing a node implies removing its incident edges (the
        registry cannot hold dangling stakes), so those are folded in.
        Records capture the *current* labels and properties — the same
        values the load phase encoded — before anything is mutated.
        """
        edge_ids: List[Any] = []
        seen: set = set()
        for edge_id in delta.remove_edges:
            if not data.has_edge(edge_id):
                raise SchemaError(f"cannot remove unknown edge {edge_id!r}")
            if edge_id not in seen:
                seen.add(edge_id)
                edge_ids.append(edge_id)
        node_ids: List[Any] = []
        for node_id in delta.remove_nodes:
            if not data.has_node(node_id):
                raise SchemaError(f"cannot remove unknown node {node_id!r}")
            if node_id in set(node_ids):
                continue
            node_ids.append(node_id)
            for edge in list(data.out_edges(node_id)) + list(data.in_edges(node_id)):
                if edge.id not in seen:
                    seen.add(edge.id)
                    edge_ids.append(edge.id)
        removed_edges = []
        for edge_id in edge_ids:
            edge = data.edge(edge_id)
            removed_edges.append(
                (edge.id, edge.source, edge.target, edge.label,
                 dict(edge.properties))
            )
        removed_nodes = []
        for node_id in node_ids:
            node = data.node(node_id)
            removed_nodes.append((node.id, node.label, dict(node.properties)))
        return removed_nodes, removed_edges

    @staticmethod
    def _validate_additions(
        data: PropertyGraph,
        delta: RegistryDelta,
        removed_node_ids: set,
        removed_edge_ids: Optional[set] = None,
    ) -> None:
        added_node_ids = {record[0] for record in delta.add_nodes}
        removed_edge_ids = removed_edge_ids or set()
        for node_id, _type_name, _properties in delta.add_nodes:
            if data.has_node(node_id) and node_id not in removed_node_ids:
                raise SchemaError(
                    f"cannot add node {node_id!r}: it already exists "
                    "(remove it in the same delta to replace it)"
                )
        for edge_id, source, target, _type_name, _properties in delta.add_edges:
            if data.has_edge(edge_id) and edge_id not in removed_edge_ids:
                raise SchemaError(
                    f"cannot add edge {edge_id!r}: it already exists "
                    "(remove it in the same delta to replace it)"
                )
            for endpoint in (source, target):
                present = (
                    data.has_node(endpoint) and endpoint not in removed_node_ids
                ) or endpoint in added_node_ids
                if not present:
                    raise SchemaError(
                        f"edge {edge_id!r} references missing node "
                        f"{endpoint!r}"
                    )

    @staticmethod
    def _flush_delta_facts(delta_flush, graph: PropertyGraph) -> "Tuple[int, int]":
        """Apply the flush-state's net I_SM_* changes to the dictionary
        graph — the incremental counterpart of ``_flush_instance_facts``,
        touching only what changed.  Returns ``(flushed, dropped)``."""
        flushed = 0
        dropped = 0
        for label in _INSTANCE_EDGE_LABELS:
            for fact in delta_flush.removed.get(label, ()):
                if graph.has_edge(fact[0]):
                    graph.remove_edge(fact[0])
                    flushed += 1
        for label in _INSTANCE_NODE_LABELS:
            for fact in delta_flush.removed.get(label, ()):
                if graph.has_node(fact[0]):
                    graph.remove_node(fact[0])
                    flushed += 1
        for label in _INSTANCE_NODE_LABELS:
            for fact in sorted(
                delta_flush.added.get(label, ()), key=fact_sort_key
            ):
                oid, inst, third = fact
                if graph.has_node(oid):
                    continue
                properties: Dict[str, Any] = {"instanceOID": inst}
                if label == "I_SM_Attribute":
                    properties["value"] = third
                elif third is not None:
                    properties["sourceOID"] = third
                graph.add_node(oid, label, **properties)
                flushed += 1
        for label in _INSTANCE_EDGE_LABELS:
            for fact in sorted(
                delta_flush.added.get(label, ()), key=fact_sort_key
            ):
                oid, source, target, inst = fact
                if graph.has_edge(oid):
                    continue
                if not graph.has_node(source) or not graph.has_node(target):
                    dropped += 1
                    continue
                graph.add_edge(
                    source, target, label, edge_id=oid, instanceOID=inst
                )
                flushed += 1
        return flushed, dropped

    @staticmethod
    def _merge_status(report: MaterializationReport, result) -> None:
        """Fold one phase's engine status into the report (first trip wins)."""
        if result.status != STATUS_FIXPOINT and not report.truncated:
            report.status = result.status
            report.violation = result.violation


def _flush_instance_facts(
    database: Database, graph: PropertyGraph, bulk: bool = True
) -> "tuple[int, int]":
    """Write new I_SM_* facts back into the dictionary graph.

    Facts whose OID already exists in the graph are the ones loaded in
    phase 1 and are skipped; only derived instance constructs are added,
    in :func:`~repro.vadalog.terms.fact_sort_key` order so the flush is
    deterministic across processes.  ``bulk=True`` (the default) writes
    each label's fresh constructs through the column-wise
    ``add_nodes_bulk`` / ``add_edges_bulk`` graph accessors; the
    per-object path is kept as a differential oracle.

    Returns ``(added, dropped)``: the number of new graph elements and
    the number of derived edges dropped because an endpoint OID is
    absent from the graph (output views referencing constructs the
    program never materialized) — callers surface the latter instead of
    losing facts silently.
    """
    added = 0
    dropped = 0
    if not bulk:
        for label in _INSTANCE_NODE_LABELS:
            for fact in sorted(database.facts(label), key=fact_sort_key):
                oid, inst, third = fact
                if graph.has_node(oid):
                    continue
                properties: Dict[str, Any] = {"instanceOID": inst}
                if label == "I_SM_Attribute":
                    properties["value"] = third
                elif third is not None:
                    properties["sourceOID"] = third
                graph.add_node(oid, label, **properties)
                added += 1
        for label in _INSTANCE_EDGE_LABELS:
            for fact in sorted(database.facts(label), key=fact_sort_key):
                oid, source, target, inst = fact
                if graph.has_edge(oid):
                    continue
                if not graph.has_node(source) or not graph.has_node(target):
                    dropped += 1
                    continue
                graph.add_edge(
                    source, target, label, edge_id=oid, instanceOID=inst
                )
                added += 1
        return added, dropped

    # Most facts were loaded in phase 1 and already exist in the graph:
    # drop them *before* sorting so the deterministic order is paid only
    # for the fresh tail, not the full extension.  Reading decoded
    # *columns* instead of fact tuples keeps the existing-OID filter on
    # one column; per-fact tuples are built for the fresh tail only.
    for label in _INSTANCE_NODE_LABELS:
        cols = database.columns(label)
        if cols is None:
            continue
        ids, insts, thirds = cols
        existing = graph.existing_node_ids(ids)
        by_oid: Dict[Any, Any] = {}
        for row, oid in enumerate(ids):
            if oid in existing:
                continue
            fact = (oid, insts[row], thirds[row])
            prev = by_oid.get(oid)
            if prev is None or fact_sort_key(fact) < fact_sort_key(prev):
                # Duplicate OIDs are rare; the sort-first fact wins,
                # exactly as in the sequential sorted loop.
                by_oid[oid] = fact
        if not by_oid:
            continue
        fresh = sorted(by_oid.values(), key=fact_sort_key)
        columns = list(zip(*fresh))
        if label == "I_SM_Attribute":
            graph.add_nodes_bulk(
                label,
                list(columns[0]),
                ("instanceOID", "value"),
                [list(columns[1]), list(columns[2])],
                keep_none=True,
            )
        else:
            graph.add_nodes_bulk(
                label,
                list(columns[0]),
                ("instanceOID", "sourceOID"),
                [list(columns[1]), list(columns[2])],
            )
        added += len(fresh)
    for label in _INSTANCE_EDGE_LABELS:
        cols = database.columns(label)
        if cols is None:
            continue
        ids, sources_col, targets_col, insts = cols
        existing = graph.existing_edge_ids(ids)
        candidates: Dict[Any, List[Any]] = {}
        for row, oid in enumerate(ids):
            if oid in existing:
                continue
            fact = (oid, sources_col[row], targets_col[row], insts[row])
            candidates.setdefault(oid, []).append(fact)
        fresh = []
        leftovers = []
        for cands in candidates.values():
            if len(cands) > 1:
                # Same OID more than once: the sort-first fact wins; the
                # rest are only addable if the winner is dropped as
                # dangling — retried below, in order.
                cands.sort(key=fact_sort_key)
                leftovers.extend(cands[1:])
            fresh.append(cands[0])
        fresh.sort(key=fact_sort_key)
        leftovers.sort(key=fact_sort_key)
        endpoints = {fact[1] for fact in fresh}
        endpoints.update(fact[2] for fact in fresh)
        present = graph.existing_node_ids(endpoints)
        if len(present) != len(endpoints):
            kept = [
                fact for fact in fresh
                if fact[1] in present and fact[2] in present
            ]
            dropped += len(fresh) - len(kept)
            fresh = kept
        if fresh:
            columns = list(zip(*fresh))
            graph.add_edges_bulk(
                label,
                list(columns[0]),
                list(columns[1]),
                list(columns[2]),
                ("instanceOID",),
                [list(columns[3])],
            )
            added += len(fresh)
        for fact in leftovers:
            oid, source, target, inst = fact
            if graph.has_edge(oid):
                continue
            if not graph.has_node(source) or not graph.has_node(target):
                dropped += 1
                continue
            graph.add_edge(source, target, label, edge_id=oid, instanceOID=inst)
            added += 1
    return added, dropped
