"""Intensional-component materialization — Algorithm 2 of the paper.

.. code-block:: none

    Input: instance D of schema S of a model M, an intensional
    component Sigma;  Output: materializes the intensional component.
    1: M      <- select candidate mappings to M from REPO
    2: M(M)   <- prompt for implementation strategy
    3: V(M)   <- MTV.translateToVadalog(M(M).instance)
    4: I      <- Reason(D, V(M)^-1)          (import D into the super-model)
    5: V_I    <- build high-level input views
    6: V_O    <- build high-level output views
    7: V(Sig) <- MTV.translateToVadalog(Sigma u V_I u V_O)
    8: I'     <- Reason(I, V(Sigma))
    9: D      <- Reason(I', V(M))            (materialize into D)

Following the performance note of Section 6 ("we can build the instance
I' incrementally, in a stratified way, by first applying V_I, and
materializing the temporary result as a database instance in a staging
area; then, the standard reasoning process can take place; finally, I'
is stored back"), the three phases run as separate chase invocations and
are timed individually — the load / reason / flush breakdown the paper
reports (~160 min reasoning vs ~15 min load+flush for the Bank of Italy
KG) is reproduced by the E-PERF benchmark on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.core.instances import SuperInstance
from repro.core.schema import SuperSchema
from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.metalog.ast import MetaProgram
from repro.metalog.mtv import compile_metalog, graph_to_database
from repro.obs.governor import STATUS_FIXPOINT, BudgetExceeded
from repro.obs.tracer import NullTracer, Tracer
from repro.ssst.views import catalog_from_super_schema, input_views, output_views
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine, EvaluationStats

#: Instance-construct labels extracted from the dictionary for phase 1.
_INSTANCE_NODE_LABELS = ("I_SM_Node", "I_SM_Edge", "I_SM_Attribute")
_INSTANCE_EDGE_LABELS = (
    "SM_REFERENCES", "I_SM_FROM", "I_SM_TO",
    "I_SM_HAS_NODE_PROPERTY", "I_SM_HAS_EDGE_PROPERTY",
)


@dataclass
class MaterializationReport:
    """Outcome of one Algorithm 2 run.

    The per-phase timings come from the materializer's tracer spans
    (``materialize.load`` / ``materialize.reason`` / ``materialize.flush``)
    — the report keeps its flat ``*_seconds`` fields for callers, but the
    spans are the source of truth and land in any exported trace.
    ``status``/``violation`` carry the first budget trip from any of the
    three chase invocations, so a governed run can be recognized as
    truncated no matter which phase hit the limit.
    """

    instance: SuperInstance  # the enriched instance (derived parts included)
    derived_counts: Dict[str, int] = field(default_factory=dict)
    load_seconds: float = 0.0
    reason_seconds: float = 0.0
    flush_seconds: float = 0.0
    reason_stats: Optional[EvaluationStats] = None
    status: str = STATUS_FIXPOINT
    violation: Optional[BudgetExceeded] = None
    #: Derived I_SM_* edges dropped at flush because an endpoint never
    #: made it into the dictionary graph (a lossy program, not a bug in
    #: the flush) — surfaced instead of silently discarded.
    flush_dropped_edges: int = 0
    #: Name of the checkpointed phase this run resumed from, if any.
    resumed_from: Optional[str] = None

    @property
    def truncated(self) -> bool:
        return self.status != STATUS_FIXPOINT

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.reason_seconds + self.flush_seconds

    def phase_breakdown(self) -> Dict[str, float]:
        return {
            "load": self.load_seconds,
            "reason": self.reason_seconds,
            "flush": self.flush_seconds,
        }


class IntensionalMaterializer:
    """Runs Algorithm 2 over a super-schema instance."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        tracer: Optional[Tracer] = None,
        workers: Optional[int] = None,
    ):
        # A caller-supplied engine keeps its own tracer (and its own
        # worker default); an implicit one joins the materializer's trace
        # so engine spans nest under the phase spans.
        self.tracer = tracer or NullTracer()
        self.engine = engine or Engine(tracer=tracer, workers=workers)

    def materialize(
        self,
        schema: SuperSchema,
        data: PropertyGraph,
        sigma: MetaProgram,
        instance_oid: Any = 1,
        dictionary: Optional[GraphDictionary] = None,
        strict: bool = False,
        checkpoint=None,
    ) -> MaterializationReport:
        """Materialize the intensional component ``sigma`` over ``data``.

        ``data`` is a plain typed property graph conforming to
        ``schema`` (node labels are type names).  The result's
        ``instance`` holds the enriched plain graph, including the
        derived nodes and edges.

        ``checkpoint`` (a
        :class:`~repro.ssst.checkpoint.MaterializationCheckpoint`)
        persists each phase that reaches fixpoint; passing the same
        checkpoint again resumes from the last completed phase instead
        of repeating it.  A checkpoint written for different inputs is
        discarded, not resumed.
        """
        report = MaterializationReport(instance=None)  # filled below
        tracer = self.tracer

        resume_from: Optional[str] = None
        if checkpoint is not None:
            from repro.ssst.checkpoint import run_fingerprint

            checkpoint.begin(run_fingerprint(schema, data, sigma, instance_oid))
            resume_from = checkpoint.resume_phase()

        # ---------------- Phase 1: LOAD (lines 1-4) ----------------
        with tracer.span("materialize.load") as load_span:
            if dictionary is None:
                dictionary = GraphDictionary()

            # The views below reference attribute OIDs; mint them before
            # anything else so the resumed and fresh paths agree.
            schema.ensure_attribute_oids()
            sigma_catalog = catalog_from_super_schema(schema)
            compiled = compile_metalog(sigma, sigma_catalog)
            # Lines 5-6: the views, from the static analysis of Sigma.
            # Recomputed even on resume: compilation is deterministic and
            # cheap relative to the chase invocations it feeds.
            v_in = input_views(
                schema,
                compiled.input_node_labels,
                compiled.input_edge_labels,
                instance_oid,
                sigma_catalog,
            )
            v_out = output_views(
                schema,
                compiled.derived_node_labels,
                compiled.derived_edge_labels,
                instance_oid,
                sigma_catalog,
            )

            if resume_from is not None:
                staged_db, dictionary.graph, phase_meta = checkpoint.load_phase(
                    resume_from
                )
                dictionary.register(schema)
                report.resumed_from = resume_from
                load_span.set(resumed=True, phase=resume_from)
                tracer.count("deploy.replay_skipped", 1)
            else:
                if schema.schema_oid not in dictionary.schema_oids():
                    dictionary.store(schema)
                instance = SuperInstance.from_plain_graph(
                    schema, data, instance_oid, strict=strict
                )
                instance.to_dictionary(dictionary.graph)
                staging = graph_to_database(
                    dictionary.graph,
                    dictionary_catalog(),
                    node_labels=_INSTANCE_NODE_LABELS,
                    edge_labels=_INSTANCE_EDGE_LABELS,
                )
                # Materialize V_I into the staging area (Section 6
                # optimization).
                result_in = self.engine.run(v_in, database=staging)
                self._merge_status(report, result_in)
                staged_db = result_in.database
                if checkpoint is not None and not report.truncated:
                    checkpoint.save_phase(
                        "load", database=staged_db, graph=dictionary.graph
                    )
        report.load_seconds = load_span.duration

        # ---------------- Phase 2: REASON (lines 7-8) ----------------
        with tracer.span("materialize.reason") as reason_span:
            if resume_from == "reason":
                report.derived_counts = dict(phase_meta.get("derived_counts", {}))
                result_db = staged_db
                reason_span.set(resumed=True)
                tracer.count("deploy.replay_skipped", 1)
            else:
                before = {
                    label: staged_db.count(label)
                    for label in sorted(
                        compiled.derived_node_labels | compiled.derived_edge_labels
                    )
                }
                result_sigma = self.engine.run(compiled.program, database=staged_db)
                report.reason_stats = result_sigma.stats
                self._merge_status(report, result_sigma)
                report.derived_counts = {
                    label: result_sigma.database.count(label) - before.get(label, 0)
                    for label in before
                }
                reason_span.set(
                    status=result_sigma.status,
                    facts_derived=result_sigma.stats.facts_derived,
                )
                result_db = result_sigma.database
                if checkpoint is not None and not report.truncated:
                    checkpoint.save_phase(
                        "reason",
                        database=result_db,
                        graph=dictionary.graph,
                        meta={"derived_counts": report.derived_counts},
                    )
        report.reason_seconds = reason_span.duration

        # ---------------- Phase 3: FLUSH (line 9) ----------------
        # Never checkpointed: flushing is idempotent (existing OIDs are
        # skipped), so re-running it always yields a complete store.
        with tracer.span("materialize.flush") as flush_span:
            result_out = self.engine.run(v_out, database=result_db)
            self._merge_status(report, result_out)
            added, dropped = _flush_instance_facts(
                result_out.database, dictionary.graph
            )
            report.flush_dropped_edges = dropped
            flush_span.set(added=added, dropped_edges=dropped)
            report.instance = SuperInstance.from_dictionary(
                dictionary.graph, schema, instance_oid, name=f"{data.name}+derived"
            )
        report.flush_seconds = flush_span.duration
        return report

    @staticmethod
    def _merge_status(report: MaterializationReport, result) -> None:
        """Fold one phase's engine status into the report (first trip wins)."""
        if result.status != STATUS_FIXPOINT and not report.truncated:
            report.status = result.status
            report.violation = result.violation


def _flush_instance_facts(
    database: Database, graph: PropertyGraph
) -> "tuple[int, int]":
    """Write new I_SM_* facts back into the dictionary graph.

    Facts whose OID already exists in the graph are the ones loaded in
    phase 1 and are skipped; only derived instance constructs are added.
    Returns ``(added, dropped)``: the number of new graph elements and
    the number of derived edges dropped because an endpoint OID is
    absent from the graph (output views referencing constructs the
    program never materialized) — callers surface the latter instead of
    losing facts silently.
    """
    added = 0
    dropped = 0
    for label in _INSTANCE_NODE_LABELS:
        for fact in sorted(database.facts(label), key=repr):
            oid, inst, third = fact
            if graph.has_node(oid):
                continue
            properties: Dict[str, Any] = {"instanceOID": inst}
            if label == "I_SM_Attribute":
                properties["value"] = third
            elif third is not None:
                properties["sourceOID"] = third
            graph.add_node(oid, label, **properties)
            added += 1
    for label in _INSTANCE_EDGE_LABELS:
        for fact in sorted(database.facts(label), key=repr):
            oid, source, target, inst = fact
            if graph.has_edge(oid):
                continue
            if not graph.has_node(source) or not graph.has_node(target):
                dropped += 1
                continue
            graph.add_edge(source, target, label, edge_id=oid, instanceOID=inst)
            added += 1
    return added, dropped
