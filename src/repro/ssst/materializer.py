"""Intensional-component materialization — Algorithm 2 of the paper.

.. code-block:: none

    Input: instance D of schema S of a model M, an intensional
    component Sigma;  Output: materializes the intensional component.
    1: M      <- select candidate mappings to M from REPO
    2: M(M)   <- prompt for implementation strategy
    3: V(M)   <- MTV.translateToVadalog(M(M).instance)
    4: I      <- Reason(D, V(M)^-1)          (import D into the super-model)
    5: V_I    <- build high-level input views
    6: V_O    <- build high-level output views
    7: V(Sig) <- MTV.translateToVadalog(Sigma u V_I u V_O)
    8: I'     <- Reason(I, V(Sigma))
    9: D      <- Reason(I', V(M))            (materialize into D)

Following the performance note of Section 6 ("we can build the instance
I' incrementally, in a stratified way, by first applying V_I, and
materializing the temporary result as a database instance in a staging
area; then, the standard reasoning process can take place; finally, I'
is stored back"), the three phases run as separate chase invocations and
are timed individually — the load / reason / flush breakdown the paper
reports (~160 min reasoning vs ~15 min load+flush for the Bank of Italy
KG) is reproduced by the E-PERF benchmark on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.core.instances import SuperInstance
from repro.core.schema import SuperSchema
from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.metalog.ast import MetaProgram
from repro.metalog.mtv import compile_metalog, graph_to_database
from repro.obs.governor import STATUS_FIXPOINT, BudgetExceeded
from repro.obs.tracer import NullTracer, Tracer
from repro.ssst.views import catalog_from_super_schema, input_views, output_views
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine, EvaluationStats

#: Instance-construct labels extracted from the dictionary for phase 1.
_INSTANCE_NODE_LABELS = ("I_SM_Node", "I_SM_Edge", "I_SM_Attribute")
_INSTANCE_EDGE_LABELS = (
    "SM_REFERENCES", "I_SM_FROM", "I_SM_TO",
    "I_SM_HAS_NODE_PROPERTY", "I_SM_HAS_EDGE_PROPERTY",
)


@dataclass
class MaterializationReport:
    """Outcome of one Algorithm 2 run.

    The per-phase timings come from the materializer's tracer spans
    (``materialize.load`` / ``materialize.reason`` / ``materialize.flush``)
    — the report keeps its flat ``*_seconds`` fields for callers, but the
    spans are the source of truth and land in any exported trace.
    ``status``/``violation`` carry the first budget trip from any of the
    three chase invocations, so a governed run can be recognized as
    truncated no matter which phase hit the limit.
    """

    instance: SuperInstance  # the enriched instance (derived parts included)
    derived_counts: Dict[str, int] = field(default_factory=dict)
    load_seconds: float = 0.0
    reason_seconds: float = 0.0
    flush_seconds: float = 0.0
    reason_stats: Optional[EvaluationStats] = None
    status: str = STATUS_FIXPOINT
    violation: Optional[BudgetExceeded] = None

    @property
    def truncated(self) -> bool:
        return self.status != STATUS_FIXPOINT

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.reason_seconds + self.flush_seconds

    def phase_breakdown(self) -> Dict[str, float]:
        return {
            "load": self.load_seconds,
            "reason": self.reason_seconds,
            "flush": self.flush_seconds,
        }


class IntensionalMaterializer:
    """Runs Algorithm 2 over a super-schema instance."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        tracer: Optional[Tracer] = None,
    ):
        # A caller-supplied engine keeps its own tracer; an implicit one
        # joins the materializer's trace so engine spans nest under the
        # phase spans.
        self.tracer = tracer or NullTracer()
        self.engine = engine or Engine(tracer=tracer)

    def materialize(
        self,
        schema: SuperSchema,
        data: PropertyGraph,
        sigma: MetaProgram,
        instance_oid: Any = 1,
        dictionary: Optional[GraphDictionary] = None,
        strict: bool = False,
    ) -> MaterializationReport:
        """Materialize the intensional component ``sigma`` over ``data``.

        ``data`` is a plain typed property graph conforming to
        ``schema`` (node labels are type names).  The result's
        ``instance`` holds the enriched plain graph, including the
        derived nodes and edges.
        """
        report = MaterializationReport(instance=None)  # filled below
        tracer = self.tracer

        # ---------------- Phase 1: LOAD (lines 1-4) ----------------
        with tracer.span("materialize.load") as load_span:
            if dictionary is None:
                dictionary = GraphDictionary()
            if schema.schema_oid not in dictionary.schema_oids():
                dictionary.store(schema)
            instance = SuperInstance.from_plain_graph(
                schema, data, instance_oid, strict=strict
            )
            instance.to_dictionary(dictionary.graph)

            sigma_catalog = catalog_from_super_schema(schema)
            compiled = compile_metalog(sigma, sigma_catalog)

            staging = graph_to_database(
                dictionary.graph,
                dictionary_catalog(),
                node_labels=_INSTANCE_NODE_LABELS,
                edge_labels=_INSTANCE_EDGE_LABELS,
            )
            # Lines 5-6: the views, from the static analysis of Sigma.
            v_in = input_views(
                schema,
                compiled.input_node_labels,
                compiled.input_edge_labels,
                instance_oid,
                sigma_catalog,
            )
            v_out = output_views(
                schema,
                compiled.derived_node_labels,
                compiled.derived_edge_labels,
                instance_oid,
                sigma_catalog,
            )
            # Materialize V_I into the staging area (Section 6 optimization).
            result_in = self.engine.run(v_in, database=staging)
            self._merge_status(report, result_in)
        report.load_seconds = load_span.duration

        # ---------------- Phase 2: REASON (lines 7-8) ----------------
        with tracer.span("materialize.reason") as reason_span:
            before = {
                label: result_in.database.count(label)
                for label in sorted(
                    compiled.derived_node_labels | compiled.derived_edge_labels
                )
            }
            result_sigma = self.engine.run(
                compiled.program, database=result_in.database
            )
            report.reason_stats = result_sigma.stats
            self._merge_status(report, result_sigma)
            report.derived_counts = {
                label: result_sigma.database.count(label) - before.get(label, 0)
                for label in before
            }
            reason_span.set(
                status=result_sigma.status,
                facts_derived=result_sigma.stats.facts_derived,
            )
        report.reason_seconds = reason_span.duration

        # ---------------- Phase 3: FLUSH (line 9) ----------------
        with tracer.span("materialize.flush") as flush_span:
            result_out = self.engine.run(v_out, database=result_sigma.database)
            self._merge_status(report, result_out)
            _flush_instance_facts(result_out.database, dictionary.graph)
            report.instance = SuperInstance.from_dictionary(
                dictionary.graph, schema, instance_oid, name=f"{data.name}+derived"
            )
        report.flush_seconds = flush_span.duration
        return report

    @staticmethod
    def _merge_status(report: MaterializationReport, result) -> None:
        """Fold one phase's engine status into the report (first trip wins)."""
        if result.status != STATUS_FIXPOINT and not report.truncated:
            report.status = result.status
            report.violation = result.violation


def _flush_instance_facts(database: Database, graph: PropertyGraph) -> int:
    """Write new I_SM_* facts back into the dictionary graph.

    Facts whose OID already exists in the graph are the ones loaded in
    phase 1 and are skipped; only derived instance constructs are added.
    Returns the number of new graph elements.
    """
    added = 0
    for label in _INSTANCE_NODE_LABELS:
        for fact in sorted(database.facts(label), key=repr):
            oid, inst, third = fact
            if graph.has_node(oid):
                continue
            properties: Dict[str, Any] = {"instanceOID": inst}
            if label == "I_SM_Attribute":
                properties["value"] = third
            elif third is not None:
                properties["sourceOID"] = third
            graph.add_node(oid, label, **properties)
            added += 1
    for label in _INSTANCE_EDGE_LABELS:
        for fact in sorted(database.facts(label), key=repr):
            oid, source, target, inst = fact
            if graph.has_edge(oid):
                continue
            if not graph.has_node(source) or not graph.has_node(target):
                continue
            graph.add_edge(source, target, label, edge_id=oid, instanceOID=inst)
            added += 1
    return added
